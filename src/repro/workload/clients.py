"""Client workload drivers.

Experiments keep needing the same traffic shapes: periodic multicasts,
read/write streams against the replicated file, lock churn, query
streams.  These drivers attach to any :class:`~repro.ports.ClusterPort`
— simulated or real-network — through its timer surface, respect modes
(they only submit what the current mode admits), and keep score, so
benchmarks and tests can reuse them instead of hand-rolling loops.

Intervals are *scenario units* (the unit fault schedules are written
in): each driver multiplies by the cluster's
:attr:`~repro.ports.ClusterPort.time_scale` when arming its tick, so
``MulticastClient(cluster, interval=10.0)`` paces identically relative
to the protocol timers on both backends — every 10 virtual units on the
simulator, every ~0.1 wall seconds on loopback TCP.  On the real
network, ticks run on the cluster's event-loop thread, where touching
stacks and applications is safe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.modes import Mode
from repro.ports import ClusterPort


@dataclass
class ClientStats:
    """What a driver managed to do."""

    attempted: int = 0
    succeeded: int = 0
    rejected: int = 0

    @property
    def success_rate(self) -> float:
        return self.succeeded / self.attempted if self.attempted else 0.0


class _Driver:
    """Base: a periodic callback over the cluster port's timer surface."""

    def __init__(self, cluster: ClusterPort, interval: float) -> None:
        self.cluster = cluster
        self.interval = interval
        self.stats = ClientStats()
        self._running = False

    def start(self) -> "_Driver":
        if not self._running:
            self._running = True
            self._arm()
        return self

    def stop(self) -> None:
        self._running = False

    def _arm(self) -> None:
        self.cluster.after(self.interval * self.cluster.time_scale, self._fire)

    def _fire(self) -> None:
        if not self._running:
            return
        self.tick()
        self._arm()

    def _live(self) -> list[tuple[int, Any]]:
        """(site, stack) for every live member, in site order."""
        return sorted(
            (stack.pid.site, stack) for stack in self.cluster.live_stacks()
        )

    def tick(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class MulticastClient(_Driver):
    """Every ``interval``, each live non-flushing member multicasts."""

    def __init__(self, cluster: ClusterPort, interval: float = 10.0) -> None:
        super().__init__(cluster, interval)
        self._counter = 0

    def tick(self) -> None:
        self._counter += 1
        for site, stack in self._live():
            self.stats.attempted += 1
            if stack.is_flushing:
                self.stats.rejected += 1
                continue
            stack.multicast(("client", site, self._counter))
            self.stats.succeeded += 1


class FileClient(_Driver):
    """Rotating writes + reads against :class:`ReplicatedFile` apps."""

    def __init__(
        self,
        cluster: ClusterPort,
        interval: float = 15.0,
        names: tuple[str, ...] = ("a", "b", "c"),
    ) -> None:
        super().__init__(cluster, interval)
        self.names = names
        self._counter = 0
        self.commits: list[Any] = []

    def tick(self) -> None:
        self._counter += 1
        for site, _stack in self._live():
            app = self.cluster.app_at(site)
            name = self.names[(site + self._counter) % len(self.names)]
            self.stats.attempted += 1
            handle = app.write(name, f"{site}:{self._counter}")
            if handle.msg_id is None:
                self.stats.rejected += 1
            else:
                self.stats.succeeded += 1
                self.commits.append(handle)

    def committed_handles(self) -> list[Any]:
        return [h for h in self.commits if h.status == "committed"]


class LockClient(_Driver):
    """Each member alternately acquires and releases the lock."""

    def tick(self) -> None:
        for site, _stack in self._live():
            app = self.cluster.app_at(site)
            if getattr(app, "mode", None) is not Mode.NORMAL:
                continue
            self.stats.attempted += 1
            if app.i_hold_lock():
                app.release()
                self.stats.succeeded += 1
            else:
                handle = app.acquire()
                if handle.status == "aborted":
                    self.stats.rejected += 1
                else:
                    self.stats.succeeded += 1


class StoreClient(_Driver):
    """Closed-loop puts/gets through the client service tier.

    Each live site gets one in-process client identity
    (:class:`~repro.client.sim.SimStoreClient`, which works on any
    co-located runtime); every tick each identity alternates a put and
    a read-your-writes get.  Unlike the open-loop generator this paces
    off completion of the *tick*, which is what fuzz schedules want: a
    steady trickle of acknowledged writes whose provenance the trace
    checkers can audit.
    """

    def __init__(
        self,
        cluster: ClusterPort,
        interval: float = 15.0,
        n_keys: int = 16,
    ) -> None:
        super().__init__(cluster, interval)
        self.n_keys = n_keys
        self._counter = 0
        self._clients: dict[int, Any] = {}
        self.pending: list[Any] = []

    def _client(self, site: int) -> Any:
        client = self._clients.get(site)
        if client is None:
            from repro.client.sim import SimStoreClient

            client = self._clients[site] = SimStoreClient(
                self.cluster, site=site, client_id=f"store{site}"
            )
        return client

    def tick(self) -> None:
        self._counter += 1
        for site, _stack in self._live():
            client = self._client(site)
            key = f"k{(site + self._counter) % self.n_keys}"
            self.stats.attempted += 1

            def done(p: Any) -> None:
                if p.ok:
                    self.stats.succeeded += 1
                else:
                    self.stats.rejected += 1

            if self._counter % 2:
                op = client.submit("put", key, f"{site}:{self._counter}", on_done=done)
            else:
                op = client.submit("get", key, ryw=client.last_token, on_done=done)
            self.pending.append(op)

    def acked_puts(self) -> list[Any]:
        return [
            p for p in self.pending if p.request.op == "put" and p.ok
        ]


class QueryClient(_Driver):
    """Inserts and parallel look-ups against the replicated database."""

    def __init__(
        self,
        cluster: ClusterPort,
        interval: float = 15.0,
        predicate_name: str = "all",
    ) -> None:
        super().__init__(cluster, interval)
        self.predicate_name = predicate_name
        self._counter = 0
        self.completed_lookups = 0

    def tick(self) -> None:
        self._counter += 1
        live = [site for site, _stack in self._live()]
        if not live:
            return
        writer = live[self._counter % len(live)]
        app = self.cluster.app_at(writer)
        self.stats.attempted += 1
        if app.can_submit(("insert", None, None)):
            app.insert(f"k{self._counter}", writer)
            self.stats.succeeded += 1
        else:
            self.stats.rejected += 1
        reader = live[(self._counter + 1) % len(live)]
        handle = self.cluster.app_at(reader).lookup(self.predicate_name)
        if handle.status != "aborted":
            def finish(h=handle):
                if h.status == "complete":
                    self.completed_lookups += 1
            self.cluster.after(
                self.interval * 0.9 * self.cluster.time_scale, finish
            )
