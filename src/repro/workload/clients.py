"""Client workload drivers.

Experiments keep needing the same traffic shapes: periodic multicasts,
read/write streams against the replicated file, lock churn, query
streams.  These drivers attach to a cluster's scheduler, respect modes
(they only submit what the current mode admits), and keep score, so
benchmarks and tests can reuse them instead of hand-rolling loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.modes import Mode
from repro.runtime.cluster import Cluster


@dataclass
class ClientStats:
    """What a driver managed to do."""

    attempted: int = 0
    succeeded: int = 0
    rejected: int = 0

    @property
    def success_rate(self) -> float:
        return self.succeeded / self.attempted if self.attempted else 0.0


class _Driver:
    """Base: a periodic callback over the cluster's scheduler."""

    def __init__(self, cluster: Cluster, interval: float) -> None:
        self.cluster = cluster
        self.interval = interval
        self.stats = ClientStats()
        self._running = False

    def start(self) -> "_Driver":
        if not self._running:
            self._running = True
            self._arm()
        return self

    def stop(self) -> None:
        self._running = False

    def _arm(self) -> None:
        self.cluster.scheduler.after(self.interval, self._fire)

    def _fire(self) -> None:
        if not self._running:
            return
        self.tick()
        self._arm()

    def tick(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class MulticastClient(_Driver):
    """Every ``interval``, each live non-flushing member multicasts."""

    def __init__(self, cluster: Cluster, interval: float = 10.0) -> None:
        super().__init__(cluster, interval)
        self._counter = 0

    def tick(self) -> None:
        self._counter += 1
        for site, stack in self.cluster.stacks.items():
            if not stack.alive:
                continue
            self.stats.attempted += 1
            if stack.is_flushing:
                self.stats.rejected += 1
                continue
            stack.multicast(("client", site, self._counter))
            self.stats.succeeded += 1


class FileClient(_Driver):
    """Rotating writes + reads against :class:`ReplicatedFile` apps."""

    def __init__(
        self,
        cluster: Cluster,
        interval: float = 15.0,
        names: tuple[str, ...] = ("a", "b", "c"),
    ) -> None:
        super().__init__(cluster, interval)
        self.names = names
        self._counter = 0
        self.commits: list[Any] = []

    def tick(self) -> None:
        self._counter += 1
        for site, stack in self.cluster.stacks.items():
            if not stack.alive:
                continue
            app = self.cluster.apps[site]
            name = self.names[(site + self._counter) % len(self.names)]
            self.stats.attempted += 1
            handle = app.write(name, f"{site}:{self._counter}")
            if handle.msg_id is None:
                self.stats.rejected += 1
            else:
                self.stats.succeeded += 1
                self.commits.append(handle)

    def committed_handles(self) -> list[Any]:
        return [h for h in self.commits if h.status == "committed"]


class LockClient(_Driver):
    """Each member alternately acquires and releases the lock."""

    def tick(self) -> None:
        for site, stack in self.cluster.stacks.items():
            if not stack.alive:
                continue
            app = self.cluster.apps[site]
            if getattr(app, "mode", None) is not Mode.NORMAL:
                continue
            self.stats.attempted += 1
            if app.i_hold_lock():
                app.release()
                self.stats.succeeded += 1
            else:
                handle = app.acquire()
                if handle.status == "aborted":
                    self.stats.rejected += 1
                else:
                    self.stats.succeeded += 1


class QueryClient(_Driver):
    """Inserts and parallel look-ups against the replicated database."""

    def __init__(
        self,
        cluster: Cluster,
        interval: float = 15.0,
        predicate_name: str = "all",
    ) -> None:
        super().__init__(cluster, interval)
        self.predicate_name = predicate_name
        self._counter = 0
        self.completed_lookups = 0

    def tick(self) -> None:
        self._counter += 1
        live = [
            site for site, stack in self.cluster.stacks.items() if stack.alive
        ]
        if not live:
            return
        writer = live[self._counter % len(live)]
        app = self.cluster.apps[writer]
        self.stats.attempted += 1
        if app.can_submit(("insert", None, None)):
            app.insert(f"k{self._counter}", writer)
            self.stats.succeeded += 1
        else:
            self.stats.rejected += 1
        reader = live[(self._counter + 1) % len(live)]
        handle = self.cluster.apps[reader].lookup(self.predicate_name)
        if handle.status != "aborted":
            def finish(h=handle):
                if h.status == "complete":
                    self.completed_lookups += 1
            self.cluster.scheduler.after(self.interval * 0.9, finish)
