"""Workloads: canned scenarios, random schedules, clients, checked runs.

Everything here is written against :class:`~repro.ports.ClusterPort`, so
the same scenario + client mix drives the simulator and the real-socket
runtime unchanged (see :func:`run_checked_workload`).
"""

from repro.workload.scenarios import (
    cascade_scenario,
    clean_scenario,
    figure2_scenario,
    join_wave_scenario,
    partition_heal_scenario,
    total_failure_scenario,
)
from repro.workload.generator import RandomFaultGenerator
from repro.workload.clients import (
    ClientStats,
    FileClient,
    LockClient,
    MulticastClient,
    QueryClient,
)
from repro.workload.runner import WorkloadReport, run_checked_workload

__all__ = [
    "clean_scenario",
    "partition_heal_scenario",
    "cascade_scenario",
    "total_failure_scenario",
    "join_wave_scenario",
    "figure2_scenario",
    "RandomFaultGenerator",
    "ClientStats",
    "MulticastClient",
    "FileClient",
    "LockClient",
    "QueryClient",
    "WorkloadReport",
    "run_checked_workload",
]
