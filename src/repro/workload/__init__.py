"""Workloads: canned fault scenarios and randomized schedule generation."""

from repro.workload.scenarios import (
    cascade_scenario,
    clean_scenario,
    figure2_scenario,
    join_wave_scenario,
    partition_heal_scenario,
    total_failure_scenario,
)
from repro.workload.generator import RandomFaultGenerator
from repro.workload.clients import (
    ClientStats,
    FileClient,
    LockClient,
    MulticastClient,
    QueryClient,
)

__all__ = [
    "clean_scenario",
    "partition_heal_scenario",
    "cascade_scenario",
    "total_failure_scenario",
    "join_wave_scenario",
    "figure2_scenario",
    "RandomFaultGenerator",
    "ClientStats",
    "MulticastClient",
    "FileClient",
    "LockClient",
    "QueryClient",
]
