"""Open-loop load generation against the client service tier.

Unlike the closed-loop drivers in :mod:`repro.workload.clients` (which
issue the next operation only after the previous tick), an open-loop
generator *offers* load on a fixed schedule — operation ``k`` is due at
``t0 + k/rate`` whether or not earlier operations completed — which is
the only honest way to measure latency under load: a slow server
cannot slow the arrival process down and flatter its own tail.

The generator drives the store exclusively through the client tier:

* **realnet** — a pool of real TCP connections
  (:class:`~repro.client.client.AsyncStoreClient`), all pipelining on
  the driver's event loop, so thousands of concurrent in-flight
  operations cost one task each, not one thread each;
* **sim** — the in-process port (:class:`~repro.client.sim.
  SimStoreClient`) with the whole send grid pre-armed on the virtual
  scheduler.

Key choice comes from a pluggable distribution sized for million-user
keyspaces: :class:`UniformKeys` or the YCSB-style :class:`ZipfianKeys`
(constant-time sampling after a one-off zeta precomputation, hot keys
scattered over the keyspace by a multiplicative scramble).

Every completion lands in the cluster's metrics registry —
``client_ops_total{op,status}`` and the ``client_op_latency{op}``
histogram — and :func:`slo_verdict` turns those histograms into
per-operation p50/p99 and a pass/fail against a latency target, the
same numbers ``repro.bench.client_perf`` records into BENCH_PERF.json.

Rates and durations are in **backend time** (wall seconds on realnet,
virtual units on the simulator), like every other duration handed to
:meth:`~repro.ports.ClusterPort.run_for`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from repro.obs.report import quantile

__all__ = [
    "UniformKeys",
    "ZipfianKeys",
    "make_key_dist",
    "LoadSpec",
    "LoadReport",
    "LoadTarget",
    "SloVerdict",
    "OpenLoopLoad",
    "slo_verdict",
]


# -- key distributions -----------------------------------------------------

#: zeta(n, theta) is an O(n) sum; memoised so a fleet of generators over
#: the same keyspace pays for it once.
_ZETA_CACHE: dict[tuple[int, float], float] = {}


def _zeta(n: int, theta: float) -> float:
    key = (n, theta)
    cached = _ZETA_CACHE.get(key)
    if cached is None:
        cached = _ZETA_CACHE[key] = sum(1.0 / i**theta for i in range(1, n + 1))
    return cached


class UniformKeys:
    """Keys drawn uniformly from ``user0 .. user{n_keys-1}``."""

    def __init__(self, n_keys: int, seed: int = 0, prefix: str = "user") -> None:
        if n_keys < 1:
            raise ValueError("need at least one key")
        self.n_keys = n_keys
        self.prefix = prefix
        self._rng = random.Random(seed)

    def sample(self) -> str:
        return f"{self.prefix}{self._rng.randrange(self.n_keys)}"


class ZipfianKeys:
    """YCSB-style zipfian keys: few hot keys, a long cold tail.

    Sampling is O(1) per draw (Gray et al.'s quick zipf); rank ``r`` is
    scrambled across the keyspace with a multiplicative hash so the hot
    set is not the lexicographically-first keys.
    """

    def __init__(
        self,
        n_keys: int,
        theta: float = 0.99,
        seed: int = 0,
        prefix: str = "user",
    ) -> None:
        if n_keys < 1:
            raise ValueError("need at least one key")
        if not 0.0 < theta < 1.0:
            raise ValueError("theta must be in (0, 1)")
        self.n_keys = n_keys
        self.theta = theta
        self.prefix = prefix
        self._rng = random.Random(seed)
        self._zetan = _zeta(n_keys, theta)
        self._alpha = 1.0 / (1.0 - theta)
        self._eta = (1.0 - (2.0 / n_keys) ** (1.0 - theta)) / (
            1.0 - _zeta(2, theta) / self._zetan
        )

    def _rank(self) -> int:
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5**self.theta:
            return 1
        return int(self.n_keys * (self._eta * u - self._eta + 1.0) ** self._alpha)

    def sample(self) -> str:
        rank = min(self._rank(), self.n_keys - 1)
        return f"{self.prefix}{(rank * 2654435761) % self.n_keys}"


def make_key_dist(name: str, n_keys: int, seed: int = 0) -> Any:
    """Resolve a distribution by CLI name: ``uniform`` or ``zipfian``."""
    if name == "uniform":
        return UniformKeys(n_keys, seed=seed)
    if name == "zipfian":
        return ZipfianKeys(n_keys, seed=seed)
    raise ValueError(f"unknown key distribution {name!r}")


# -- load specification ----------------------------------------------------


@dataclass
class LoadSpec:
    """One open-loop load shape.

    ``rate``/``duration`` are backend time (ops per wall second and
    wall seconds on realnet; per virtual unit and virtual units on the
    simulator).  ``read_fraction`` of operations are gets,
    ``history_fraction`` history reads, the rest puts.
    """

    rate: float = 200.0
    duration: float = 10.0
    clients: int = 8
    n_keys: int = 1_000_000
    key_dist: str = "zipfian"
    read_fraction: float = 0.9
    history_fraction: float = 0.0
    read_mode: str = "any"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rate <= 0 or self.duration <= 0 or self.clients < 1:
            raise ValueError("rate, duration and clients must be positive")
        if self.read_fraction + self.history_fraction > 1.0:
            raise ValueError("read + history fractions exceed 1")

    @property
    def total_ops(self) -> int:
        return max(1, int(self.rate * self.duration))


@dataclass
class SloVerdict:
    """Did the run meet its latency target?"""

    target_p99: float
    p50: float
    p99: float
    count: int
    met: bool
    per_op: dict[str, dict[str, float]] = field(default_factory=dict)


@dataclass
class LoadReport:
    """What an open-loop run offered, finished and measured."""

    offered: int
    completed: int
    ok: int
    late: int
    by_status: dict[str, int]
    duration: float
    achieved_rate: float

    @property
    def ok_fraction(self) -> float:
        return self.ok / self.offered if self.offered else 0.0


# -- standalone targets ----------------------------------------------------


class LoadTarget:
    """An *external* realnet cluster as a load-generation target.

    ``repro load`` points the open-loop generator at servers it did not
    boot — ``repro serve`` in another terminal, or one ``repro realnet
    node`` per machine.  This adapter carries exactly what
    :class:`OpenLoopLoad` and :func:`slo_verdict` need from a cluster
    port — an address book, a metrics registry on a wall clock, and an
    event-loop thread to pipeline the connections on — with no cluster
    lifecycle behind it.  All times are wall seconds.
    """

    runtime = "realnet"

    def __init__(self, address_book: dict[int, tuple[str, int]]) -> None:
        import threading
        import time

        from repro.obs.registry import MetricsRegistry
        from repro.realnet.wallclock import new_event_loop

        if not address_book:
            raise ValueError("need at least one target address")
        self.address_book = dict(address_book)
        self._clock = time.monotonic
        self._t0 = self._clock()
        self.metrics = MetricsRegistry(
            clock=lambda: self.now, runtime="realnet"
        )
        self._loop = new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="load-target", daemon=True
        )
        self._thread.start()

    @property
    def now(self) -> float:
        return self._clock() - self._t0

    def metrics_snapshot(self, source: str = "load") -> Any:
        return self.metrics.snapshot(source=source)

    def _submit(self, coro: Any, timeout: float | None = None) -> Any:
        import asyncio
        import concurrent.futures

        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        try:
            return future.result(timeout)
        except concurrent.futures.TimeoutError:
            future.cancel()
            raise TimeoutError(
                f"load run did not finish within {timeout}s"
            ) from None

    def close(self) -> None:
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)
        self._loop.close()

    def __enter__(self) -> "LoadTarget":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


# -- SLO verdicts from the registry ----------------------------------------


def slo_verdict(
    cluster: Any,
    target_p99: float,
    metric: str = "client_op_latency",
) -> SloVerdict:
    """p50/p99 from the cluster registry's latency histogram vs a target.

    Quantiles are upper-bound estimates from the histogram's log-scale
    buckets — the same numbers ``repro obs report`` prints — so the SLO
    verdict and the observability surface can never disagree.
    """
    snapshot = cluster.metrics_snapshot()
    per_op: dict[str, dict[str, float]] = {}
    merged_count = 0
    worst_p50 = 0.0
    worst_p99 = 0.0
    for sample in snapshot.samples:
        if sample.name != metric or sample.kind != "histogram":
            continue
        op = sample.label_dict().get("op", "")
        p50 = quantile(sample, 0.50)
        p99 = quantile(sample, 0.99)
        per_op[op] = {"count": float(sample.count), "p50": p50, "p99": p99}
        merged_count += sample.count
        worst_p50 = max(worst_p50, p50)
        worst_p99 = max(worst_p99, p99)
    return SloVerdict(
        target_p99=target_p99,
        p50=worst_p50,
        p99=worst_p99,
        count=merged_count,
        met=merged_count > 0 and worst_p99 <= target_p99,
        per_op=per_op,
    )


# -- the generator ---------------------------------------------------------


class OpenLoopLoad:
    """Offer ``spec`` against ``cluster`` through the client tier."""

    def __init__(self, cluster: Any, spec: LoadSpec) -> None:
        self.cluster = cluster
        self.spec = spec
        self._rng = random.Random(spec.seed)
        self._dist = make_key_dist(spec.key_dist, spec.n_keys, seed=spec.seed)
        registry = cluster.metrics
        self._ops = registry.counter(
            "client_ops_total",
            "Open-loop client operations completed, by op and reply status.",
            ("op", "status"),
        )
        self._latency = registry.histogram(
            "client_op_latency",
            "Client-observed operation latency (submit to final reply, "
            "backend time), by op.",
            ("op",),
        )
        self._late = registry.counter(
            "client_ops_late_total",
            "Open-loop send slots that fired behind schedule.",
        )
        self.by_status: dict[str, int] = {}
        self.completed = 0
        self.ok = 0
        self.late = 0

    # -- op selection --------------------------------------------------

    def _pick(self, k: int) -> tuple[str, str, Any]:
        u = self._rng.random()
        key = self._dist.sample()
        if u < self.spec.read_fraction:
            return "get", key, None
        if u < self.spec.read_fraction + self.spec.history_fraction:
            return "history", key, None
        return "put", key, k

    def _count(self, op: str, status: str, latency: float) -> None:
        self.completed += 1
        self.by_status[status] = self.by_status.get(status, 0) + 1
        if status == "ok" or status == "missing":
            self.ok += 1
        self._ops.labels(op, status).inc()
        self._latency.labels(op).observe(latency)

    def run(self) -> LoadReport:
        """Offer the whole grid, wait for stragglers, report."""
        start = self.cluster.now
        if getattr(self.cluster, "runtime", "sim") == "sim":
            self._run_sim()
        else:
            self._run_realnet()
        elapsed = max(self.cluster.now - start, 1e-9)
        return LoadReport(
            offered=self.spec.total_ops,
            completed=self.completed,
            ok=self.ok,
            late=self.late,
            by_status=dict(sorted(self.by_status.items())),
            duration=elapsed,
            achieved_rate=self.completed / elapsed,
        )

    # -- simulator -----------------------------------------------------

    def _run_sim(self) -> None:
        from repro.client.sim import SimStoreClient

        spec = self.spec
        sites = sorted(s.pid.site for s in self.cluster.live_stacks()) or [0]
        clients = [
            SimStoreClient(
                self.cluster,
                site=sites[i % len(sites)],
                client_id=f"load{i}",
                read_mode=spec.read_mode,
            )
            for i in range(spec.clients)
        ]
        pending: list[Any] = []

        def fire(k: int) -> None:
            op, key, val = self._pick(k)
            client = clients[k % len(clients)]
            issued = self.cluster.now

            def done(p: Any, _issued: float = issued, _op: str = op) -> None:
                self._count(_op, p.reply.status, self.cluster.now - _issued)

            pending.append(client.submit(op, key, val, on_done=done))

        for k in range(spec.total_ops):
            self.cluster.after(k / spec.rate, fire, k)
        self.cluster.run_for(spec.duration)
        # Drain stragglers: retries may still be in flight.
        deadline = self.cluster.now + spec.duration
        while self.cluster.now < deadline and any(
            not p.done for p in pending
        ):
            self.cluster.run_for(10.0)

    # -- realnet -------------------------------------------------------

    def _run_realnet(self) -> None:
        import asyncio

        from repro.client.client import AsyncStoreClient

        driver = self.cluster
        spec = self.spec
        book = getattr(driver, "address_book", None)
        if not book:
            book = driver.cluster.address_book
        book = dict(book)
        sites = sorted(book)

        async def go() -> None:
            loop = asyncio.get_event_loop()
            clients = [
                AsyncStoreClient(
                    addresses=book,
                    site=sites[i % len(sites)],
                    client_id=f"load{i}",
                    read_mode=spec.read_mode,
                )
                for i in range(spec.clients)
            ]
            await asyncio.gather(
                *(c.connect() for c in clients), return_exceptions=True
            )
            inflight: set[asyncio.Task] = set()

            async def one(k: int) -> None:
                op, key, val = self._pick(k)
                client = clients[k % len(clients)]
                issued = loop.time()
                try:
                    reply = await client.call(op, key, val)
                    status = reply.status
                except Exception:
                    status = "error"
                self._count(op, status, loop.time() - issued)

            t0 = loop.time()
            for k in range(spec.total_ops):
                due = t0 + k / spec.rate
                delay = due - loop.time()
                if delay > 0:
                    await asyncio.sleep(delay)
                elif delay < -1.0 / spec.rate:
                    self.late += 1
                    self._late.labels().inc()
                task = asyncio.ensure_future(one(k))
                inflight.add(task)
                task.add_done_callback(inflight.discard)
            if inflight:
                await asyncio.wait(inflight, timeout=spec.duration + 30.0)
            for task in set(inflight):
                task.cancel()
            await asyncio.gather(*inflight, return_exceptions=True)
            await asyncio.gather(
                *(c.close() for c in clients), return_exceptions=True
            )

        driver._submit(go(), timeout=spec.duration * 3 + 120.0)
