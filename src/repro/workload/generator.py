"""Seeded random generation of adversarial runs: faults and load.

Produces well-formed fault schedules (no double crashes, recoveries
only of crashed sites, partitions over the full universe) whose mix of
crashes, recoveries, partitions and repairs is controlled by weights,
and — for the client service tier — matching open-loop
:class:`~repro.workload.openloop.LoadSpec` shapes, so an experiment's
*entire* environment (what breaks and what load arrives while it
breaks) derives from one seed.  The same seed always yields the same
schedule and spec, so any failing adversarial run is replayable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.net.faults import (
    Crash,
    FaultSchedule,
    Heal,
    OneWayCut,
    OneWayHeal,
    Partition,
    Recover,
)
from repro.workload.openloop import LoadSpec


#: The action kinds ``weights`` may mention; anything else is a typo
#: that would otherwise silently skew the mix.
KNOWN_WEIGHT_KEYS = frozenset({"crash", "recover", "partition", "heal", "oneway"})

#: Weight given to one-way cuts when ``asymmetric=True`` and the caller
#: did not set an explicit ``oneway`` weight.
DEFAULT_ONEWAY_WEIGHT = 0.75


@dataclass
class RandomFaultGenerator:
    """Generator of random, valid fault schedules."""

    n_sites: int
    seed: int = 0
    start: float = 120.0
    duration: float = 600.0
    mean_gap: float = 60.0
    weights: dict[str, float] = field(
        default_factory=lambda: {
            "crash": 1.0,
            "recover": 1.5,
            "partition": 1.0,
            "heal": 1.5,
            "oneway": 0.0,  # opt-in: asymmetric link cuts
        }
    )
    max_down_fraction: float = 0.5
    settle_tail: float = 250.0
    #: Include asymmetric (one-way) link cuts by default: gives the
    #: ``oneway`` kind :data:`DEFAULT_ONEWAY_WEIGHT` unless the weights
    #: dict already names it explicitly (non-zero).
    asymmetric: bool = False

    def __post_init__(self) -> None:
        unknown = set(self.weights) - KNOWN_WEIGHT_KEYS
        if unknown:
            raise ValueError(
                f"unknown fault weights {sorted(unknown)}; "
                f"known kinds: {sorted(KNOWN_WEIGHT_KEYS)}"
            )
        if self.asymmetric and not self.weights.get("oneway", 0.0):
            self.weights = {**self.weights, "oneway": DEFAULT_ONEWAY_WEIGHT}

    def generate(self) -> FaultSchedule:
        rng = random.Random(self.seed)
        schedule = FaultSchedule()
        down: set[int] = set()
        partitioned = False
        oneway_cuts: set[tuple[int, int]] = set()
        time = self.start
        end = self.start + self.duration
        while time < end:
            action = self._pick_action(rng, down, partitioned)
            if action == "crash":
                site = rng.choice(sorted(set(range(self.n_sites)) - down))
                down.add(site)
                schedule.add(Crash(time, site))
            elif action == "recover":
                site = rng.choice(sorted(down))
                down.discard(site)
                schedule.add(Recover(time, site))
            elif action == "partition":
                groups = self._random_split(rng)
                partitioned = True
                oneway_cuts.clear()  # Partition() resets components only;
                # but any cuts will be cleared by the final heal below.
                schedule.add(Partition(time, groups))
            elif action == "heal":
                partitioned = False
                oneway_cuts.clear()  # Heal() clears one-way cuts too
                schedule.add(Heal(time))
            elif action == "oneway":
                src = rng.randrange(self.n_sites)
                dst = rng.randrange(self.n_sites)
                if src != dst and (src, dst) not in oneway_cuts:
                    oneway_cuts.add((src, dst))
                    schedule.add(OneWayCut(time, src, dst))
            time += rng.expovariate(1.0 / self.mean_gap)
        # Leave the system repairable: recover everyone, heal the net.
        for site in sorted(down):
            time += rng.uniform(5.0, 20.0)
            schedule.add(Recover(time, site))
        for src, dst in sorted(oneway_cuts):
            time += rng.uniform(2.0, 8.0)
            schedule.add(OneWayHeal(time, src, dst))
        if partitioned or oneway_cuts:
            time += rng.uniform(5.0, 20.0)
            schedule.add(Heal(time))
        return schedule

    def horizon(self, schedule: FaultSchedule) -> float:
        """When to stop running a cluster driven by ``schedule``."""
        return schedule.horizon + self.settle_tail

    def _pick_action(
        self, rng: random.Random, down: set[int], partitioned: bool
    ) -> str:
        candidates: list[str] = []
        weights: list[float] = []
        max_down = int(self.max_down_fraction * self.n_sites)
        if len(down) < max_down:
            candidates.append("crash")
            weights.append(self.weights.get("crash", 1.0))
        if down:
            candidates.append("recover")
            weights.append(self.weights.get("recover", 1.0))
        candidates.append("partition")
        weights.append(self.weights.get("partition", 1.0))
        if partitioned:
            candidates.append("heal")
            weights.append(self.weights.get("heal", 1.0))
        if self.weights.get("oneway", 0.0) > 0 and self.n_sites >= 2:
            candidates.append("oneway")
            weights.append(self.weights["oneway"])
        return rng.choices(candidates, weights=weights, k=1)[0]

    def _random_split(self, rng: random.Random) -> tuple[tuple[int, ...], ...]:
        sites = list(range(self.n_sites))
        rng.shuffle(sites)
        n_groups = rng.randint(2, min(3, self.n_sites))
        groups: list[list[int]] = [[] for _ in range(n_groups)]
        for index, site in enumerate(sites):
            groups[index % n_groups].append(site)
        return tuple(tuple(sorted(g)) for g in groups)


@dataclass
class RandomLoadGenerator:
    """Seeded open-loop load shapes to pair with a fault schedule.

    Rates and durations are backend time, like :class:`LoadSpec`
    itself; ``rate_range`` brackets the offered rate, ``duration`` the
    steady-state window.  The generated spec's ``seed`` is derived from
    this generator's seed, so the key/op stream replays too.
    """

    seed: int = 0
    rate_range: tuple[float, float] = (0.2, 2.0)
    duration: float = 400.0
    clients_range: tuple[int, int] = (2, 8)
    n_keys: int = 1024

    def generate(self) -> LoadSpec:
        rng = random.Random(self.seed)
        read_fraction = rng.uniform(0.4, 0.95)
        return LoadSpec(
            rate=rng.uniform(*self.rate_range),
            duration=self.duration,
            clients=rng.randint(*self.clients_range),
            n_keys=self.n_keys,
            key_dist=rng.choice(("uniform", "zipfian")),
            read_fraction=read_fraction,
            history_fraction=min(0.05, 1.0 - read_fraction),
            seed=rng.randrange(1 << 30),
        )
