"""Canned fault scenarios used across tests and experiments.

Each builder returns a :class:`~repro.net.faults.FaultSchedule`;
``schedule.horizon`` tells callers how long to run before settling.
"""

from __future__ import annotations

from repro.net.faults import Crash, FaultSchedule, Heal, Join, Partition, Recover


def clean_scenario() -> FaultSchedule:
    """No faults at all: bootstrap and quiesce."""
    return FaultSchedule()


def partition_heal_scenario(
    n_sites: int,
    split_at: float = 150.0,
    heal_at: float = 400.0,
    minority: int | None = None,
) -> FaultSchedule:
    """One partition into majority + minority, later repaired."""
    minority = minority if minority is not None else max(1, n_sites // 3)
    left = tuple(range(n_sites - minority))
    right = tuple(range(n_sites - minority, n_sites))
    schedule = FaultSchedule()
    schedule.add(Partition(split_at, (left, right)))
    schedule.add(Heal(heal_at))
    return schedule


def cascade_scenario(
    n_sites: int,
    first_crash: float = 150.0,
    gap: float = 60.0,
    crashes: int = 2,
    recover_after: float = 200.0,
) -> FaultSchedule:
    """Successive crashes followed by staggered recoveries."""
    crashes = min(crashes, n_sites - 1)
    schedule = FaultSchedule()
    for i in range(crashes):
        t_crash = first_crash + i * gap
        schedule.add(Crash(t_crash, i))
        schedule.add(Recover(t_crash + recover_after, i))
    return schedule


def total_failure_scenario(
    n_sites: int,
    first_crash: float = 150.0,
    gap: float = 25.0,
    recover_gap: float = 30.0,
) -> FaultSchedule:
    """Everybody crashes (staggered, so there is a meaningful last
    process to fail), then everybody recovers — the state creation
    scenario of Section 4."""
    schedule = FaultSchedule()
    last = first_crash
    for i in range(n_sites):
        last = first_crash + i * gap
        schedule.add(Crash(last, i))
    for i in range(n_sites):
        schedule.add(Recover(last + 100.0 + i * recover_gap, i))
    return schedule


def join_wave_scenario(
    initial_sites: int,
    joiners: int,
    first_join: float = 150.0,
    gap: float = 5.0,
) -> FaultSchedule:
    """``joiners`` new sites join an established group near-simultaneously
    — the workload of the Section 5 merge-cost analysis (E5)."""
    schedule = FaultSchedule()
    for i in range(joiners):
        schedule.add(Join(first_join + i * gap, initial_sites + i))
    return schedule


def figure2_scenario(
    split_at: float = 150.0,
    heal_at: float = 400.0,
) -> FaultSchedule:
    """The structure of Figure 2 on six sites: a partition separates
    {0,1,2,3} from {4,5}; both sides operate; the repair merges them,
    and the e-view of the merged view preserves who-was-with-whom."""
    schedule = FaultSchedule()
    schedule.add(Partition(split_at, ((0, 1, 2, 3), (4, 5))))
    schedule.add(Heal(heal_at))
    return schedule
