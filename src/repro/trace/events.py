"""Trace event records.

Each record captures one externally visible event of the execution, in
the vocabulary of the paper: ``mcast(p, m)``, ``dlvr(p, m)`` and
``vchg(p, v)`` (Section 2), plus e-view changes (Section 6), mode
transitions (Section 3) and environment events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.types import MessageId, ProcessId, SiteId, SubviewId, SvSetId, ViewId


@dataclass(frozen=True)
class TraceEvent:
    """Base record: when and at which process something happened."""

    time: float
    pid: ProcessId


@dataclass(frozen=True)
class MulticastEvent(TraceEvent):
    """``mcast(pid, msg)``: the application handed a message to VS."""

    msg_id: MessageId


@dataclass(frozen=True)
class DeliveryEvent(TraceEvent):
    """``dlvr(pid, msg)``: VS delivered a message to the application.

    ``view_id`` is the view the process had installed at delivery time;
    Uniqueness (2.2) says each ``msg_id`` appears with exactly one
    ``view_id`` across the whole trace.  ``sender_eview_seq`` is the
    e-view change count the *sender* had applied when it multicast; the
    Causal Order checker (6.2) verifies the receiver had applied at
    least as many at delivery time.
    """

    msg_id: MessageId
    view_id: ViewId
    sender_eview_seq: int = 0


@dataclass(frozen=True)
class ViewInstallEvent(TraceEvent):
    """``vchg(pid, view)``: the process installed a new view."""

    view_id: ViewId
    members: frozenset[ProcessId]
    prev_view_id: ViewId | None


@dataclass(frozen=True)
class EViewChangeEvent(TraceEvent):
    """An enriched-view change was applied at a process.

    ``eview_seq`` counts e-view changes within the enclosing ``view_id``
    (0 is the structure delivered with the view itself); ``subviews`` and
    ``svsets`` snapshot the structure after the change.
    """

    view_id: ViewId
    eview_seq: int
    subviews: tuple[tuple[SubviewId, frozenset[ProcessId]], ...]
    svsets: tuple[tuple[SvSetId, frozenset[SubviewId]], ...]


@dataclass(frozen=True)
class ModeChangeEvent(TraceEvent):
    """A mode-automaton transition (Figure 1) at a process."""

    old_mode: str
    new_mode: str
    transition: str
    view_id: ViewId


@dataclass(frozen=True)
class CrashEvent(TraceEvent):
    """The process at ``pid`` crashed."""


@dataclass(frozen=True)
class RecoverEvent(TraceEvent):
    """A site restarted; ``pid`` is the fresh incarnation."""

    site: SiteId = -1


@dataclass(frozen=True)
class AppEvent(TraceEvent):
    """Free-form application event (state transfers, merges, ...)."""

    tag: str = ""
    data: Any = None
