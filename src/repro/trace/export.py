"""Trace export / import.

Serialises a recorded trace to JSON-lines and reads it back, so runs
can be archived, diffed across code versions, or re-checked offline
(``python -m repro run`` output + an exported trace is a reproducible
bug report).  The round trip is exact for every event type.
"""

from __future__ import annotations

import json
from typing import Any, IO, Iterable

from repro.errors import ReproError
from repro.trace.events import (
    AppEvent,
    CrashEvent,
    DeliveryEvent,
    EViewChangeEvent,
    ModeChangeEvent,
    MulticastEvent,
    RecoverEvent,
    TraceEvent,
    ViewInstallEvent,
)
from repro.trace.recorder import TraceRecorder
from repro.types import MessageId, ProcessId, SubviewId, SvSetId, ViewId

_EVENT_TYPES = {
    cls.__name__: cls
    for cls in (
        MulticastEvent,
        DeliveryEvent,
        ViewInstallEvent,
        EViewChangeEvent,
        ModeChangeEvent,
        CrashEvent,
        RecoverEvent,
        AppEvent,
    )
}


# -- value codecs -----------------------------------------------------------


def _encode(value: Any) -> Any:
    if isinstance(value, ProcessId):
        return {"$pid": [value.site, value.incarnation]}
    if isinstance(value, ViewId):
        return {"$vid": [value.epoch, _encode(value.coordinator)]}
    if isinstance(value, MessageId):
        return {
            "$mid": [_encode(value.sender), _encode(value.view), value.seqno]
        }
    if isinstance(value, SubviewId):
        return {"$svid": [value.view_epoch, _encode(value.origin), value.counter]}
    if isinstance(value, SvSetId):
        return {"$ssid": [value.view_epoch, _encode(value.origin), value.counter]}
    if isinstance(value, frozenset):
        return {"$fset": sorted((_encode(v) for v in value), key=json.dumps)}
    if isinstance(value, tuple):
        return {"$tuple": [_encode(v) for v in value]}
    if isinstance(value, dict):
        return {"$dict": [[_encode(k), _encode(v)] for k, v in value.items()]}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return {"$repr": repr(value)}  # opaque app data degrades to repr


def _decode(value: Any) -> Any:
    if not isinstance(value, dict):
        return value
    if "$pid" in value:
        site, inc = value["$pid"]
        return ProcessId(site, inc)
    if "$vid" in value:
        epoch, coordinator = value["$vid"]
        return ViewId(epoch, _decode(coordinator))
    if "$mid" in value:
        sender, view, seqno = value["$mid"]
        return MessageId(_decode(sender), _decode(view), seqno)
    if "$svid" in value:
        epoch, origin, counter = value["$svid"]
        return SubviewId(epoch, _decode(origin), counter)
    if "$ssid" in value:
        epoch, origin, counter = value["$ssid"]
        return SvSetId(epoch, _decode(origin), counter)
    if "$fset" in value:
        return frozenset(_decode(v) for v in value["$fset"])
    if "$tuple" in value:
        return tuple(_decode(v) for v in value["$tuple"])
    if "$dict" in value:
        return {_decode(k): _decode(v) for k, v in value["$dict"]}
    if "$repr" in value:
        return value["$repr"]
    return value


# -- event codecs --------------------------------------------------------------


def event_to_json(event: TraceEvent) -> str:
    payload = {"type": type(event).__name__}
    for field_name in event.__dataclass_fields__:  # type: ignore[attr-defined]
        payload[field_name] = _encode(getattr(event, field_name))
    return json.dumps(payload, sort_keys=True)


def event_from_json(line: str) -> TraceEvent:
    payload = json.loads(line)
    type_name = payload.pop("type", None)
    cls = _EVENT_TYPES.get(type_name)
    if cls is None:
        raise ReproError(f"unknown trace event type {type_name!r}")
    kwargs = {name: _decode(value) for name, value in payload.items()}
    return cls(**kwargs)


# -- whole-trace I/O -------------------------------------------------------------


def dump_trace(rec: TraceRecorder, stream: IO[str]) -> int:
    """Write every event as one JSON line; returns the event count."""
    count = 0
    for event in rec.events:
        stream.write(event_to_json(event))
        stream.write("\n")
        count += 1
    return count


def load_trace(lines: Iterable[str]) -> TraceRecorder:
    """Rebuild a recorder from JSON lines (blank lines ignored)."""
    rec = TraceRecorder()
    for line in lines:
        line = line.strip()
        if line:
            rec.record(event_from_json(line))
    return rec
