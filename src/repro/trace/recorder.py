"""Append-only trace recorder with query helpers.

One recorder observes the whole run.  Protocol stacks append events as
they happen; checkers and the ground-truth classifier query the result.
All query methods are pure reads — the recorder never influences the
execution it observes.

Recording cost is tunable for long or hot runs:

* ``level`` — a named filter over event types.  ``"full"`` (default)
  records everything; ``"membership"`` keeps only the rare structural
  events (view installs, e-view changes, mode changes, crash/recover)
  and drops the per-message firehose; ``"none"`` records nothing.
* ``only`` — an explicit set of event types, overriding ``level``.
* ``capacity`` — bounded ring-buffer mode: only the most recent
  ``capacity`` events are retained (``dropped`` counts evictions).

Hot paths consult :meth:`TraceRecorder.wants` before even constructing
an event object, so a filtered run pays neither allocation nor append.
The invariant checkers work unchanged on a filtered stream — they see a
prefix-consistent subset of the full trace (filtering is by type, never
by process or time window).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable, Iterator, TypeVar

from repro.errors import SimulationError
from repro.trace.events import (
    AppEvent,
    CrashEvent,
    DeliveryEvent,
    EViewChangeEvent,
    ModeChangeEvent,
    MulticastEvent,
    RecoverEvent,
    TraceEvent,
    ViewInstallEvent,
)
from repro.types import MessageId, ProcessId, ViewId

E = TypeVar("E", bound=TraceEvent)

#: Named recording levels; ``None`` means "accept every type".
LEVELS: dict[str, frozenset[type[TraceEvent]] | None] = {
    "full": None,
    "membership": frozenset(
        {
            ViewInstallEvent,
            EViewChangeEvent,
            ModeChangeEvent,
            CrashEvent,
            RecoverEvent,
        }
    ),
    "none": frozenset(),
}


class TraceRecorder:
    """Collects the :class:`TraceEvent` stream of a run, in occurrence
    order, subject to the configured filter and capacity."""

    def __init__(
        self,
        level: str = "full",
        only: Iterable[type[TraceEvent]] | None = None,
        capacity: int | None = None,
        label: str | None = None,
    ) -> None:
        if level not in LEVELS:
            raise SimulationError(
                f"unknown trace level {level!r}; pick one of {sorted(LEVELS)}"
            )
        self.level = level
        self._accepts = frozenset(only) if only is not None else LEVELS[level]
        self.capacity = capacity
        #: Who recorded this: names the source in merged-trace overflow
        #: reports (``"sim"``, ``"site3"``, ``"env"``, ...).
        self.label = label
        self.events: "list[TraceEvent] | deque[TraceEvent]" = (
            [] if capacity is None else deque(maxlen=capacity)
        )
        self.filtered = 0  # events rejected by the type filter
        self.dropped = 0  # events evicted by the ring buffer
        #: Ring-buffer evictions attributed per source recorder; empty
        #: on a leaf recorder, populated by :meth:`merge` so a merged
        #: trace keeps *which node* undercounted, not just by how much.
        self.dropped_by_source: dict[str, int] = {}

    def wants(self, event_type: type[TraceEvent]) -> bool:
        """Would an event of this type be recorded?  Hot paths check this
        before allocating the event object."""
        accepts = self._accepts
        return accepts is None or event_type in accepts

    def record(self, event: TraceEvent) -> None:
        accepts = self._accepts
        if accepts is not None and type(event) not in accepts:
            self.filtered += 1
            return
        events = self.events
        capacity = self.capacity
        if capacity is not None and len(events) == capacity:
            self.dropped += 1
        events.append(event)

    @classmethod
    def merge(cls, *recorders: "TraceRecorder") -> "TraceRecorder":
        """Merge several recorders into one coherent history.

        Built for runtimes where each node records locally (one
        :class:`TraceRecorder` per :class:`~repro.realnet.node.RealNode`)
        and analysis needs the global event stream the checkers expect.
        The sources must share a time base (co-located realnet nodes
        share one wall-clock scheduler, so they do).

        Ordering is total and stable: events sort by ``(time, pid,
        seq)``, where ``seq`` is the event's position within its source
        recorder — so same-timestamp events at one process keep their
        recorded (causal) order, and cross-process ties break
        deterministically by process identifier.  Events without a
        process (none currently) would sort before any process's at the
        same instant.

        The result is a plain unbounded ``level="full"`` recorder (the
        sources already applied their own filters); ``filtered`` and
        ``dropped`` counters are summed so loss remains visible, and
        per-node ring-buffer overflow is kept attributed in
        ``dropped_by_source`` (keyed by each source's ``label``) so a
        merged trace can say *which* node undercounts, not just that
        one does.  Re-merging a merged recorder folds its breakdown in
        unchanged.
        """
        merged = cls(level="full")
        keyed: list[tuple[float, tuple, int, int, TraceEvent]] = []
        for src_index, recorder in enumerate(recorders):
            merged.filtered += recorder.filtered
            merged.dropped += recorder.dropped
            for source, count in recorder.dropped_by_source.items():
                merged.dropped_by_source[source] = (
                    merged.dropped_by_source.get(source, 0) + count
                )
            # Only the drops not already attributed upstream (a merged
            # source carries its breakdown; adding its total again
            # would double count).
            own = recorder.dropped - sum(recorder.dropped_by_source.values())
            if own > 0:
                source = recorder.label or f"source{src_index}"
                merged.dropped_by_source[source] = (
                    merged.dropped_by_source.get(source, 0) + own
                )
            for seq, event in enumerate(recorder.events):
                pid = getattr(event, "pid", None)
                pid_key = (
                    (pid.site, pid.incarnation) if pid is not None else (-1, -1)
                )
                keyed.append((event.time, pid_key, seq, src_index, event))
        keyed.sort()
        merged.events = [item[-1] for item in keyed]
        return merged

    def __len__(self) -> int:
        return len(self.events)

    # -- generic queries ------------------------------------------------

    def of_type(self, event_type: type[E]) -> Iterator[E]:
        """All events of exactly the given type, in order."""
        return (e for e in self.events if type(e) is event_type)

    def where(self, predicate: Callable[[TraceEvent], bool]) -> Iterator[TraceEvent]:
        return (e for e in self.events if predicate(e))

    # -- view-synchrony-shaped queries -----------------------------------

    def multicasts(self) -> list[MulticastEvent]:
        return list(self.of_type(MulticastEvent))

    def deliveries(self) -> list[DeliveryEvent]:
        return list(self.of_type(DeliveryEvent))

    def view_installs(self) -> list[ViewInstallEvent]:
        return list(self.of_type(ViewInstallEvent))

    def eview_changes(self) -> list[EViewChangeEvent]:
        return list(self.of_type(EViewChangeEvent))

    def mode_changes(self) -> list[ModeChangeEvent]:
        return list(self.of_type(ModeChangeEvent))

    def app_events(self, tag: str | None = None) -> list[AppEvent]:
        events = self.of_type(AppEvent)
        if tag is None:
            return list(events)
        return [e for e in events if e.tag == tag]

    def installed_views(self) -> dict[ViewId, frozenset[ProcessId]]:
        """Mapping view id -> membership, over every installation."""
        views: dict[ViewId, frozenset[ProcessId]] = {}
        for ev in self.of_type(ViewInstallEvent):
            views[ev.view_id] = ev.members
        return views

    def installers_of(self, view_id: ViewId) -> set[ProcessId]:
        """Which processes actually installed ``view_id``."""
        return {
            ev.pid
            for ev in self.of_type(ViewInstallEvent)
            if ev.view_id == view_id
        }

    def deliveries_in_view(self, pid: ProcessId, view_id: ViewId) -> set[MessageId]:
        """Messages process ``pid`` delivered while in ``view_id``."""
        return {
            ev.msg_id
            for ev in self.of_type(DeliveryEvent)
            if ev.pid == pid and ev.view_id == view_id
        }

    def view_sequence(self, pid: ProcessId) -> list[ViewInstallEvent]:
        """The ordered sequence of views installed by process ``pid``."""
        return [ev for ev in self.of_type(ViewInstallEvent) if ev.pid == pid]

    def successor_views(self) -> dict[tuple[ProcessId, ViewId], ViewId]:
        """For each (process, view) pair, the next view that process
        installed, if any.  Used by the Agreement checker to find the
        groups of processes that "survive from one view to the same
        next view"."""
        result: dict[tuple[ProcessId, ViewId], ViewId] = {}
        for ev in self.of_type(ViewInstallEvent):
            if ev.prev_view_id is not None:
                result[(ev.pid, ev.prev_view_id)] = ev.view_id
        return result

    def mode_at_install(self, pid: ProcessId, view_id: ViewId) -> str | None:
        """The mode ``pid`` adopted when it installed ``view_id``."""
        for ev in self.of_type(ModeChangeEvent):
            if ev.pid == pid and ev.view_id == view_id:
                return ev.new_mode
        return None
