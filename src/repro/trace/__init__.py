"""Global execution tracing and mechanical property checking.

Every protocol stack reports its externally visible events (multicasts,
deliveries, view and e-view installations, mode changes, crashes,
recoveries) to a shared :class:`~repro.trace.recorder.TraceRecorder`.
The checkers in :mod:`repro.trace.checks` then verify, on the recorded
trace, the exact properties the paper states: Agreement (2.1),
Uniqueness (2.2), Integrity (2.3) for view synchrony, and Total Order
(6.1), Causal Order (6.2), Structure (6.3) for enriched views.

The recorder is also what gives experiments their *omniscient* view of
the run — the ground-truth shared-state classifier reads the sets
``S_R``/``S_N`` and the cluster decomposition straight from the trace.
"""

from repro.trace.events import (
    AppEvent,
    CrashEvent,
    DeliveryEvent,
    EViewChangeEvent,
    ModeChangeEvent,
    MulticastEvent,
    RecoverEvent,
    TraceEvent,
    ViewInstallEvent,
)
from repro.trace.recorder import TraceRecorder
from repro.trace.checks import (
    CheckReport,
    check_agreement,
    check_causal_order,
    check_cut_consistency,
    check_integrity,
    check_structure,
    check_total_order,
    check_uniqueness,
    check_view_synchrony,
    check_enriched_views,
)

__all__ = [
    "TraceEvent",
    "MulticastEvent",
    "DeliveryEvent",
    "ViewInstallEvent",
    "EViewChangeEvent",
    "ModeChangeEvent",
    "CrashEvent",
    "RecoverEvent",
    "AppEvent",
    "TraceRecorder",
    "CheckReport",
    "check_agreement",
    "check_uniqueness",
    "check_integrity",
    "check_total_order",
    "check_causal_order",
    "check_cut_consistency",
    "check_structure",
    "check_view_synchrony",
    "check_enriched_views",
]
