"""ASCII timeline rendering of recorded traces.

Turns a trace into per-process lanes with view installs, mode changes,
e-view changes, crashes and recoveries — the quickest way to see *what
happened* in a failing adversarial run.  Used by humans; nothing in the
library depends on it.

Example output::

    t        p0.0                  p1.0                  p2.0
    0.0      v1[J:S]               v1[J:S]               v1[J:S]
    5.0      v2{3}[S]              .                     .
    6.0      .                     v2{3}[S]              v2{3}[S]
    31.0     CRASH                 .                     .
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.trace.events import (
    CrashEvent,
    EViewChangeEvent,
    ModeChangeEvent,
    RecoverEvent,
    ViewInstallEvent,
)
from repro.trace.recorder import TraceRecorder
from repro.types import ProcessId

_TRANSITION_ABBREV = {
    "Join": "J",
    "Failure": "F",
    "Repair": "P",
    "Reconfigure": "C",
    "Reconcile": "R",
}


@dataclass
class _Cell:
    notes: list[str] = field(default_factory=list)

    def add(self, note: str) -> None:
        if note not in self.notes:
            self.notes.append(note)

    def render(self) -> str:
        return "+".join(self.notes) if self.notes else "."


def render_timeline(
    rec: TraceRecorder,
    include_eviews: bool = False,
    max_rows: int = 200,
    column_width: int = 22,
) -> str:
    """Render the trace as aligned per-process lanes."""
    pids = sorted(
        {
            e.pid
            for e in rec.events
            if isinstance(
                e, (ViewInstallEvent, ModeChangeEvent, CrashEvent, RecoverEvent)
            )
        }
    )
    if not pids:
        return "(empty trace)"
    columns = {pid: index for index, pid in enumerate(pids)}
    rows: dict[float, list[_Cell]] = {}

    def cell(time: float, pid: ProcessId) -> _Cell:
        row = rows.setdefault(round(time, 3), [_Cell() for _ in pids])
        return row[columns[pid]]

    for event in rec.events:
        if isinstance(event, ViewInstallEvent):
            cell(event.time, event.pid).add(
                f"v{event.view_id.epoch}{{{len(event.members)}}}"
            )
        elif isinstance(event, ModeChangeEvent):
            abbrev = _TRANSITION_ABBREV.get(event.transition, "?")
            cell(event.time, event.pid).add(f"[{abbrev}:{event.new_mode}]")
        elif isinstance(event, CrashEvent):
            cell(event.time, event.pid).add("CRASH")
        elif isinstance(event, RecoverEvent):
            cell(event.time, event.pid).add("UP")
        elif include_eviews and isinstance(event, EViewChangeEvent):
            if event.eview_seq > 0:
                cell(event.time, event.pid).add(f"ev#{event.eview_seq}")

    lines = []
    header = "t".ljust(9) + "".join(str(p).ljust(column_width) for p in pids)
    lines.append(header)
    for time in sorted(rows)[:max_rows]:
        row = rows[time]
        lines.append(
            f"{time:<9.1f}"
            + "".join(c.render().ljust(column_width) for c in row)
        )
    if len(rows) > max_rows:
        lines.append(f"... ({len(rows) - max_rows} more rows)")
    return "\n".join(lines)
