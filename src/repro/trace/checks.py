"""Mechanical checkers for the paper's six properties.

Each checker consumes a recorded trace and returns a
:class:`CheckReport`; an empty ``violations`` list means the property
held on that execution.  The test suite and the E2/E3/E4 experiments run
these over adversarial fault schedules.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ports import ClusterPort
from repro.trace.events import (
    DeliveryEvent,
    EViewChangeEvent,
    MulticastEvent,
    ViewInstallEvent,
)
from repro.trace.recorder import TraceRecorder
from repro.types import ProcessId, ViewId


@dataclass
class CheckReport:
    """Outcome of one property check on one trace."""

    name: str
    checked: int = 0
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def violation(self, text: str) -> None:
        self.violations.append(text)

    def merge(self, other: "CheckReport") -> "CheckReport":
        merged = CheckReport(f"{self.name}+{other.name}")
        merged.checked = self.checked + other.checked
        merged.violations = self.violations + other.violations
        return merged

    def __str__(self) -> str:
        status = "OK" if self.ok else f"{len(self.violations)} VIOLATIONS"
        return f"[{self.name}] checked={self.checked} {status}"


# ---------------------------------------------------------------------------
# View synchrony: Properties 2.1 - 2.3
# ---------------------------------------------------------------------------


def check_agreement(rec: TraceRecorder) -> CheckReport:
    """Property 2.1: processes that survive from one view to the same
    next view deliver the same set of messages (in the old view)."""
    report = CheckReport("Agreement(2.1)")
    groups: dict[tuple[ViewId, ViewId], set[ProcessId]] = {}
    for (pid, prev), nxt in rec.successor_views().items():
        groups.setdefault((prev, nxt), set()).add(pid)
    for (prev, nxt), pids in groups.items():
        if len(pids) < 2:
            continue
        report.checked += 1
        sets = {pid: frozenset(rec.deliveries_in_view(pid, prev)) for pid in pids}
        reference = next(iter(sets.values()))
        for pid, delivered in sets.items():
            if delivered != reference:
                diff = delivered ^ reference
                report.violation(
                    f"survivors of {prev}->{nxt} disagree: {pid} differs on {diff}"
                )
    return report


def check_uniqueness(rec: TraceRecorder) -> CheckReport:
    """Property 2.2: a message is delivered in at most one view."""
    report = CheckReport("Uniqueness(2.2)")
    views_of: dict = {}
    for ev in rec.of_type(DeliveryEvent):
        views_of.setdefault(ev.msg_id, set()).add(ev.view_id)
    report.checked = len(views_of)
    for msg_id, views in views_of.items():
        if len(views) > 1:
            report.violation(f"{msg_id} delivered in {len(views)} views: {views}")
    return report


def check_integrity(rec: TraceRecorder) -> CheckReport:
    """Property 2.3: at-most-once per process, and only genuine messages."""
    report = CheckReport("Integrity(2.3)")
    multicast_ids = {ev.msg_id for ev in rec.of_type(MulticastEvent)}
    seen: set = set()
    for ev in rec.of_type(DeliveryEvent):
        report.checked += 1
        key = (ev.pid, ev.msg_id)
        if key in seen:
            report.violation(f"{ev.pid} delivered {ev.msg_id} twice")
        seen.add(key)
        if ev.msg_id not in multicast_ids:
            report.violation(f"{ev.pid} delivered never-multicast {ev.msg_id}")
    return report


def check_view_monotonicity(rec: TraceRecorder) -> CheckReport:
    """Sanity: each process installs strictly increasing view ids."""
    report = CheckReport("ViewMonotonicity")
    for pid in {ev.pid for ev in rec.of_type(ViewInstallEvent)}:
        seq = rec.view_sequence(pid)
        report.checked += 1
        for earlier, later in zip(seq, seq[1:]):
            if later.view_id <= earlier.view_id:
                report.violation(
                    f"{pid} installed {later.view_id} after {earlier.view_id}"
                )
            if later.prev_view_id != earlier.view_id:
                report.violation(
                    f"{pid} has broken view chain at {later.view_id}"
                )
    return report


def check_view_synchrony(rec: TraceRecorder) -> list[CheckReport]:
    """All of Properties 2.1-2.3 plus the view-chain sanity check."""
    return [
        check_agreement(rec),
        check_uniqueness(rec),
        check_integrity(rec),
        check_view_monotonicity(rec),
    ]


# ---------------------------------------------------------------------------
# Enriched views: Properties 6.1 - 6.3
# ---------------------------------------------------------------------------


def check_total_order(rec: TraceRecorder) -> CheckReport:
    """Property 6.1: e-view changes within a view are totally ordered.

    Concretely: every process applies consecutively numbered changes
    starting at 0 (the install), and any two processes that applied the
    same change number in the same view saw the identical structure.
    """
    report = CheckReport("TotalOrder(6.1)")
    per_proc: dict[tuple[ProcessId, ViewId], list[EViewChangeEvent]] = {}
    canonical: dict[tuple[ViewId, int], tuple] = {}
    for ev in rec.of_type(EViewChangeEvent):
        per_proc.setdefault((ev.pid, ev.view_id), []).append(ev)
        key = (ev.view_id, ev.eview_seq)
        snapshot = (ev.subviews, ev.svsets)
        if key in canonical:
            report.checked += 1
            if canonical[key] != snapshot:
                report.violation(
                    f"divergent structure at {ev.view_id} seq {ev.eview_seq}"
                )
        else:
            canonical[key] = snapshot
    for (pid, vid), events in per_proc.items():
        report.checked += 1
        seqs = [e.eview_seq for e in events]
        if seqs != sorted(seqs):
            report.violation(f"{pid} applied e-view changes out of order in {vid}")
        if seqs and (seqs[0] != 0 or seqs != list(range(len(seqs)))):
            report.violation(
                f"{pid} skipped e-view changes in {vid}: applied {seqs}"
            )
    return report


def check_causal_order(rec: TraceRecorder) -> CheckReport:
    """Property 6.2: e-view changes are consistent cuts — no process
    delivers a message multicast after an e-view change it has not yet
    applied itself."""
    report = CheckReport("CausalOrder(6.2)")
    applied: dict[tuple[ProcessId, ViewId], int] = {}
    for ev in rec.events:
        if isinstance(ev, EViewChangeEvent):
            applied[(ev.pid, ev.view_id)] = ev.eview_seq
        elif isinstance(ev, DeliveryEvent):
            report.checked += 1
            have = applied.get((ev.pid, ev.view_id), -1)
            if ev.sender_eview_seq > have:
                report.violation(
                    f"{ev.pid} delivered {ev.msg_id} tagged e-view seq "
                    f"{ev.sender_eview_seq} while at seq {have}"
                )
    return report


def _subview_partner_map(snapshot: tuple) -> dict[ProcessId, frozenset[ProcessId]]:
    return {pid: members for _, members in snapshot for pid in members}


def check_structure(rec: TraceRecorder) -> CheckReport:
    """Property 6.3: subview and sv-set structures are preserved across
    view changes, and never split within a view.

    Two parts:

    * *across views*: processes common to ``v`` and its successor ``v'``
      that shared a subview (sv-set) at the end of ``v`` still share one
      at the start of ``v'``;
    * *within a view*: successive structure snapshots at one process only
      coarsen (merges), never split.
    """
    report = CheckReport("Structure(6.3)")
    # Last snapshot per (pid, view) and first (seq 0) snapshot per (pid, view).
    last: dict[tuple[ProcessId, ViewId], EViewChangeEvent] = {}
    first: dict[tuple[ProcessId, ViewId], EViewChangeEvent] = {}
    history: dict[tuple[ProcessId, ViewId], list[EViewChangeEvent]] = {}
    for ev in rec.of_type(EViewChangeEvent):
        key = (ev.pid, ev.view_id)
        last[key] = ev
        if key not in first or ev.eview_seq < first[key].eview_seq:
            first[key] = ev
        history.setdefault(key, []).append(ev)
    # Like Agreement (2.1), the property quantifies over processes that
    # "survive from one view to the same next view": the pair (p, q) is
    # constrained only when q's own installed-view chain also has v as
    # the immediate predecessor of v'.  A process listed in a view it
    # never adopted, or one that reached v' through an intermediate view
    # the other never installed, did not take the v -> v' transition.
    successor: dict[tuple[ProcessId, ViewId], ViewId] = rec.successor_views()

    # Within-view: no splits.
    for (pid, vid), events in history.items():
        for earlier, later in zip(events, events[1:]):
            report.checked += 1
            earlier_map = _subview_partner_map(earlier.subviews)
            later_map = _subview_partner_map(later.subviews)
            for member, mates in earlier_map.items():
                if member in later_map and not mates <= later_map[member]:
                    report.violation(
                        f"subview of {member} split within {vid} at {pid}"
                    )

    # Across views.
    for ev in rec.of_type(ViewInstallEvent):
        if ev.prev_view_id is None:
            continue
        old_key = (ev.pid, ev.prev_view_id)
        new_key = (ev.pid, ev.view_id)
        if old_key not in last or new_key not in first:
            continue
        report.checked += 1
        old_subviews = _subview_partner_map(last[old_key].subviews)
        new_subviews = _subview_partner_map(first[new_key].subviews)
        transitioned = {
            q
            for q in old_subviews
            if successor.get((q, ev.prev_view_id)) == ev.view_id
        }
        survivors = set(old_subviews) & set(new_subviews) & transitioned
        for member in survivors:
            old_mates = old_subviews[member] & frozenset(survivors)
            if not old_mates <= new_subviews[member]:
                report.violation(
                    f"subview mates of {member} separated across "
                    f"{ev.prev_view_id} -> {ev.view_id}"
                )
        old_ssets = _svset_partner_map(last[old_key])
        new_ssets = _svset_partner_map(first[new_key])
        for member in survivors:
            old_mates = old_ssets.get(member, frozenset()) & frozenset(survivors)
            if member in new_ssets and not old_mates <= new_ssets[member]:
                report.violation(
                    f"sv-set mates of {member} separated across "
                    f"{ev.prev_view_id} -> {ev.view_id}"
                )
    return report


def _svset_partner_map(ev: EViewChangeEvent) -> dict[ProcessId, frozenset[ProcessId]]:
    """pid -> all processes sharing an sv-set with it in this snapshot."""
    subview_members = {sid: members for sid, members in ev.subviews}
    result: dict[ProcessId, frozenset[ProcessId]] = {}
    for _, subview_ids in ev.svsets:
        group: set[ProcessId] = set()
        for sid in subview_ids:
            group |= subview_members.get(sid, frozenset())
        frozen = frozenset(group)
        for pid in frozen:
            result[pid] = frozen
    return result


def check_cut_consistency(rec: TraceRecorder) -> CheckReport:
    """Property 6.2, order-theoretic form: e-view changes define
    consistent cuts of the computation.

    Where :func:`check_causal_order` verifies the *mechanism* (the
    sender's sequence tag never exceeds the receiver's applied count),
    this checker verifies the *definition*: for every e-view change
    ``(v, k)``, no multicast issued by a process after it applied the
    change is delivered by another process before that process applied
    it.  Happens-before is generated by per-process event order plus
    multicast -> delivery edges, reconstructed from the trace alone.
    """
    report = CheckReport("CutConsistency(6.2)")
    # Per-process ordered event sequences with local indices.
    local_index: dict[tuple[ProcessId, int], int] = {}
    sequences: dict[ProcessId, list] = {}
    for ev in rec.events:
        pid = getattr(ev, "pid", None)
        if pid is None:
            continue
        seq = sequences.setdefault(pid, [])
        local_index[(pid, id(ev))] = len(seq)
        seq.append(ev)

    def index_of(ev) -> int:
        return local_index[(ev.pid, id(ev))]

    # Application points of each e-view change per process.
    applied_at: dict[tuple[ViewId, int], dict[ProcessId, int]] = {}
    for ev in rec.of_type(EViewChangeEvent):
        applied_at.setdefault((ev.view_id, ev.eview_seq), {})[ev.pid] = index_of(ev)

    mcast_pos: dict = {}
    for ev in rec.of_type(MulticastEvent):
        mcast_pos[ev.msg_id] = (ev.pid, index_of(ev))

    for (view_id, seq_no), cut in applied_at.items():
        if seq_no == 0:
            continue  # the install itself is covered by view semantics
        report.checked += 1
        for ev in rec.of_type(DeliveryEvent):
            if ev.pid not in cut or ev.view_id != view_id:
                continue
            origin = mcast_pos.get(ev.msg_id)
            if origin is None:
                continue
            sender, sent_at = origin
            if sender not in cut:
                continue
            sent_after_cut = sent_at > cut[sender]
            delivered_before_cut = index_of(ev) < cut[ev.pid]
            if sent_after_cut and delivered_before_cut:
                report.violation(
                    f"{ev.msg_id} crosses the cut of e-view change "
                    f"({view_id}, {seq_no}) backwards: sent after at "
                    f"{sender}, delivered before at {ev.pid}"
                )
    return report


def check_enriched_views(rec: TraceRecorder) -> list[CheckReport]:
    """All of Properties 6.1-6.3 (both 6.2 formulations)."""
    return [
        check_total_order(rec),
        check_causal_order(rec),
        check_cut_consistency(rec),
        check_structure(rec),
    ]


def all_ok(reports: list[CheckReport]) -> bool:
    return all(r.ok for r in reports)


# ---------------------------------------------------------------------------
# Cluster-level entry point (any runtime)
# ---------------------------------------------------------------------------


def check_cluster(
    cluster: "ClusterPort",
    *,
    enriched: bool = True,
    trace: TraceRecorder | None = None,
) -> list[CheckReport]:
    """Run the property checks over a whole cluster's execution.

    Works on any :class:`~repro.ports.ClusterPort`: the trace comes
    from ``cluster.gather_trace()``, which is the simulator's single
    shared recorder or the real-network runtime's per-node recorders
    merged into one globally ordered history
    (:meth:`~repro.trace.recorder.TraceRecorder.merge`) — the checkers
    themselves are identical on either.  Pass ``trace`` to reuse an
    already-gathered recorder (gathering merges on the realnet).

    Returns the Section 2 view-synchrony reports
    (:func:`check_view_synchrony`), plus the Section 6 enriched-view
    reports (:func:`check_enriched_views`) unless ``enriched=False``.
    """
    rec = trace if trace is not None else cluster.gather_trace()
    reports = check_view_synchrony(rec)
    if enriched:
        reports += check_enriched_views(rec)
    return reports
