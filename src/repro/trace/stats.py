"""Summary statistics over recorded traces.

Turns a raw trace into the aggregates experiments and operators care
about: view-change counts and rates, mode residency (how much
process-time was spent NORMAL / REDUCED / SETTLING), delivery counts,
and settlement activity.  Used by the CLI and by E-series analyses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.trace.events import (
    AppEvent,
    CrashEvent,
    DeliveryEvent,
    EViewChangeEvent,
    ModeChangeEvent,
    MulticastEvent,
    ViewInstallEvent,
)
from repro.trace.recorder import TraceRecorder
from repro.types import ProcessId


@dataclass
class ModeResidency:
    """Process-time spent in each mode (virtual units)."""

    normal: float = 0.0
    reduced: float = 0.0
    settling: float = 0.0

    @property
    def total(self) -> float:
        return self.normal + self.reduced + self.settling

    def fraction(self, mode: str) -> float:
        if self.total == 0:
            return 0.0
        value = {"N": self.normal, "R": self.reduced, "S": self.settling}[mode]
        return value / self.total


@dataclass
class TraceStats:
    """All aggregates for one trace."""

    duration: float = 0.0
    view_installs: int = 0
    distinct_views: int = 0
    max_concurrent_views: int = 0
    multicasts: int = 0
    deliveries: int = 0
    eview_changes: int = 0
    crashes: int = 0
    mode_transitions: dict[str, int] = field(default_factory=dict)
    residency: ModeResidency = field(default_factory=ModeResidency)
    settlement_sessions: int = 0


def mode_residency(rec: TraceRecorder, until: float | None = None) -> ModeResidency:
    """Integrate each process's mode over time, up to ``until`` (defaults
    to the last event time)."""
    horizon = until
    if horizon is None:
        horizon = max((e.time for e in rec.events), default=0.0)
    residency = ModeResidency()
    last_change: dict[ProcessId, tuple[float, str]] = {}
    dead: set[ProcessId] = set()

    def credit(mode: str, span: float) -> None:
        if span <= 0:
            return
        if mode == "N":
            residency.normal += span
        elif mode == "R":
            residency.reduced += span
        elif mode == "S":
            residency.settling += span

    for event in rec.events:
        if isinstance(event, ModeChangeEvent):
            previous = last_change.get(event.pid)
            if previous is not None:
                credit(previous[1], event.time - previous[0])
            last_change[event.pid] = (event.time, event.new_mode)
        elif isinstance(event, CrashEvent):
            previous = last_change.pop(event.pid, None)
            if previous is not None:
                credit(previous[1], event.time - previous[0])
            dead.add(event.pid)
    for pid, (since, mode) in last_change.items():
        if pid not in dead:
            credit(mode, horizon - since)
    return residency


def concurrent_view_peak(rec: TraceRecorder) -> int:
    """The largest number of distinct current views held simultaneously
    by live processes at any install instant."""
    current: dict[ProcessId, object] = {}
    dead: set[ProcessId] = set()
    peak = 0
    for event in rec.events:
        if isinstance(event, ViewInstallEvent):
            current[event.pid] = event.view_id
            dead.discard(event.pid)
        elif isinstance(event, CrashEvent):
            current.pop(event.pid, None)
            dead.add(event.pid)
        else:
            continue
        distinct = len({vid for pid, vid in current.items()})
        peak = max(peak, distinct)
    return peak


def summarize(rec: TraceRecorder) -> TraceStats:
    """Compute the full aggregate bundle for a trace."""
    stats = TraceStats()
    stats.duration = max((e.time for e in rec.events), default=0.0)
    installs = list(rec.of_type(ViewInstallEvent))
    stats.view_installs = len(installs)
    stats.distinct_views = len({e.view_id for e in installs})
    stats.max_concurrent_views = concurrent_view_peak(rec)
    stats.multicasts = sum(1 for _ in rec.of_type(MulticastEvent))
    stats.deliveries = sum(1 for _ in rec.of_type(DeliveryEvent))
    stats.eview_changes = sum(
        1 for e in rec.of_type(EViewChangeEvent) if e.eview_seq > 0
    )
    stats.crashes = sum(1 for _ in rec.of_type(CrashEvent))
    for event in rec.of_type(ModeChangeEvent):
        stats.mode_transitions[event.transition] = (
            stats.mode_transitions.get(event.transition, 0) + 1
        )
    stats.residency = mode_residency(rec)
    stats.settlement_sessions = sum(
        1 for e in rec.of_type(AppEvent) if e.tag == "settle_start"
    )
    return stats
