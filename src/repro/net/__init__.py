"""Simulated asynchronous, partitionable network substrate.

Models exactly the system of Section 2 of the paper: processes at sites
communicate over links with unpredictable (but simulated) delays; links
and processes fail by crashing; the network may partition into components
that later merge.  There are no bounds relating delay to failure — which
is why the failure detector above this layer can make false suspicions.
"""

from repro.net.topology import Topology
from repro.net.latency import ConstantLatency, UniformLatency, SpikeLatency
from repro.net.network import Network, NetworkStats
from repro.net.faults import (
    Crash,
    FaultSchedule,
    Heal,
    Join,
    OneWayCut,
    OneWayHeal,
    Partition,
    Recover,
)

__all__ = [
    "Topology",
    "ConstantLatency",
    "UniformLatency",
    "SpikeLatency",
    "Network",
    "NetworkStats",
    "Crash",
    "Recover",
    "Partition",
    "Heal",
    "Join",
    "OneWayCut",
    "OneWayHeal",
    "FaultSchedule",
]
