"""The simulated message-passing network.

Point-to-point, connectivity-gated delivery with per-link latency and
optional loss.  Connectivity is checked both when a message is sent and
when it would be delivered, so a partition that forms while a message is
in flight destroys it — the harshest (and simplest) cut semantics.

Links are FIFO by default: deliveries on the same ``(src, dst)`` link
never overtake each other even when sampled latencies would reorder
them.  The protocols above do not *depend* on this (sequence numbers and
round identifiers guard them), but FIFO links keep traces easier to read;
tests exercise the non-FIFO mode too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import NetworkError
from repro.net.latency import ConstantLatency
from repro.net.topology import Topology
from repro.sim.process import Process
from repro.sim.rng import RngStreams
from repro.sim.scheduler import Scheduler
from repro.types import ProcessId


@dataclass
class NetworkStats:
    """Counters describing what happened on the wire."""

    sent: int = 0
    delivered: int = 0
    dropped_partition: int = 0
    dropped_loss: int = 0
    dropped_dead: int = 0
    by_type: dict[str, int] = field(default_factory=dict)

    def record_type(self, payload: Any) -> None:
        name = type(payload).__name__
        self.by_type[name] = self.by_type.get(name, 0) + 1


class Network:
    """Routes payloads between registered processes."""

    def __init__(
        self,
        scheduler: Scheduler,
        topology: Topology,
        rng: RngStreams,
        latency: Any = None,
        loss_prob: float = 0.0,
        fifo_links: bool = True,
    ) -> None:
        self.scheduler = scheduler
        self.topology = topology
        self.latency = latency if latency is not None else ConstantLatency(1.0)
        self.loss_prob = loss_prob
        self.fifo_links = fifo_links
        self.stats = NetworkStats()
        self._rng = rng.stream("network")
        self._procs: dict[ProcessId, Process] = {}
        self._site_proc: dict[int, ProcessId] = {}
        self._link_clock: dict[tuple[ProcessId, ProcessId], float] = {}

    # -- registration -------------------------------------------------

    def register(self, process: Process) -> None:
        """Attach ``process`` so it can send and receive."""
        if process.pid in self._procs:
            raise NetworkError(f"duplicate process id {process.pid}")
        if process.pid.site not in self.topology.sites:
            raise NetworkError(f"site {process.pid.site} not in topology")
        self._procs[process.pid] = process
        self._site_proc[process.pid.site] = process.pid
        process.attach(self)

    def process(self, pid: ProcessId) -> Process | None:
        return self._procs.get(pid)

    def pid_at_site(self, site: int) -> ProcessId | None:
        """Identifier of the most recent incarnation hosted at ``site``."""
        return self._site_proc.get(site)

    def live_processes(self) -> list[Process]:
        return [p for p in self._procs.values() if p.alive]

    # -- transmission ---------------------------------------------------

    def send_to_site(self, src: ProcessId, site: int, payload: Any) -> None:
        """Send to whichever incarnation currently lives at ``site``.

        Used by heartbeats and join probes, which must reach a recovered
        process without knowing its fresh identifier.
        """
        dst = self._site_proc.get(site)
        if dst is None:
            self.stats.dropped_dead += 1
            return
        self.send(src, dst, payload)

    def send(self, src: ProcessId, dst: ProcessId, payload: Any) -> None:
        """Send ``payload`` from ``src`` to ``dst`` (may silently drop)."""
        self.stats.sent += 1
        self.stats.record_type(payload)
        if dst.site not in self.topology.sites:
            self.stats.dropped_dead += 1
            return
        if not self.topology.allows(src.site, dst.site):
            self.stats.dropped_partition += 1
            return
        if self.loss_prob > 0 and self._rng.random() < self.loss_prob:
            self.stats.dropped_loss += 1
            return
        delay = self.latency.sample(self._rng)
        arrival = self.scheduler.now + delay
        if self.fifo_links:
            link = (src, dst)
            arrival = max(arrival, self._link_clock.get(link, 0.0) + 1e-9)
            self._link_clock[link] = arrival
        self.scheduler.at(arrival, self._deliver, src, dst, payload)

    def _deliver(self, src: ProcessId, dst: ProcessId, payload: Any) -> None:
        if not self.topology.allows(src.site, dst.site):
            self.stats.dropped_partition += 1
            return
        target = self._procs.get(dst)
        if target is None or not target.alive:
            self.stats.dropped_dead += 1
            return
        self.stats.delivered += 1
        target.deliver_network(src, payload)
