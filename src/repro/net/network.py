"""The simulated message-passing network.

Point-to-point, connectivity-gated delivery with per-link latency and
optional loss.  Connectivity is checked both when a message is sent and
when it would be delivered, so a partition that forms while a message is
in flight destroys it — the harshest (and simplest) cut semantics.

Links are FIFO by default: deliveries on the same ``(src, dst)`` link
never overtake each other even when sampled latencies would reorder
them.  The protocols above do not *depend* on this (sequence numbers and
round identifiers guard them), but FIFO links keep traces easier to read;
tests exercise the non-FIFO mode too.

Fast-path notes: deliveries ride the scheduler's fire-and-forget lane
(no cancellable handle is ever needed for an in-flight message), and
:meth:`Network.multicast` fans a payload out to many destinations with
one stats update and one pass — per-destination loss and latency are
still sampled independently, in destination order, so a multicast is
observationally identical to the equivalent ``send`` loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.errors import NetworkError
from repro.net.latency import ConstantLatency
from repro.net.topology import Topology
from repro.sim.process import Process
from repro.sim.rng import RngStreams
from repro.sim.scheduler import Scheduler
from repro.types import ProcessId, SiteId


@dataclass
class NetworkStats:
    """Counters describing what happened on the wire.

    ``detailed`` enables the per-payload-type breakdown (``by_type``),
    which costs a type lookup and a dict update on every single send;
    benchmarks leave it off, protocol analysis turns it on (the
    :class:`~repro.runtime.cluster.Cluster` default).
    """

    detailed: bool = False
    sent: int = 0
    delivered: int = 0
    dropped_partition: int = 0
    dropped_loss: int = 0
    dropped_dead: int = 0
    by_type: dict[str, int] = field(default_factory=dict)

    def record_type(self, payload: Any) -> None:
        name = type(payload).__name__
        self.by_type[name] = self.by_type.get(name, 0) + 1


class Network:
    """Routes payloads between registered processes.

    This is the simulator's implementation of
    :class:`repro.ports.NetworkPort`; :class:`repro.realnet.RealNetwork`
    implements the same contract over real TCP sockets.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        topology: Topology,
        rng: RngStreams,
        latency: Any = None,
        loss_prob: float = 0.0,
        fifo_links: bool = True,
        detailed_stats: bool = False,
    ) -> None:
        self.scheduler = scheduler
        self.topology = topology
        self.latency = latency if latency is not None else ConstantLatency(1.0)
        self.loss_prob = loss_prob
        self.fifo_links = fifo_links
        self.stats = NetworkStats(detailed=detailed_stats)
        self._rng = rng.stream("network")
        self._procs: dict[ProcessId, Process] = {}
        self._site_proc: dict[int, ProcessId] = {}
        # Site-keyed mirror of ``_procs`` holding the freshest
        # incarnation's process: the delivery hot path resolves targets
        # with an int lookup plus an identity check instead of a
        # ProcessId hash.
        self._site_live: dict[int, Process] = {}
        # Keyed by (src site, dst site): int tuples hash without a
        # Python-level __hash__ call, and FIFO per site pair subsumes
        # FIFO per incarnation pair (a site runs one process at a time).
        self._link_clock: dict[tuple[SiteId, SiteId], float] = {}
        self._topo_epoch = topology.changes

    # -- registration -------------------------------------------------

    def register(self, process: Process) -> None:
        """Attach ``process`` so it can send and receive."""
        if process.pid in self._procs:
            raise NetworkError(f"duplicate process id {process.pid}")
        if process.pid.site not in self.topology.sites:
            raise NetworkError(f"site {process.pid.site} not in topology")
        self._procs[process.pid] = process
        self._site_proc[process.pid.site] = process.pid
        self._site_live[process.pid.site] = process
        process.attach(self)

    def process(self, pid: ProcessId) -> Process | None:
        return self._procs.get(pid)

    def pid_at_site(self, site: int) -> ProcessId | None:
        """Identifier of the most recent incarnation hosted at ``site``."""
        return self._site_proc.get(site)

    def live_processes(self) -> list[Process]:
        return [p for p in self._procs.values() if p.alive]

    # -- transmission ---------------------------------------------------

    def send_to_site(self, src: ProcessId, site: int, payload: Any) -> None:
        """Send to whichever incarnation currently lives at ``site``.

        Used by heartbeats and join probes, which must reach a recovered
        process without knowing its fresh identifier.
        """
        dst = self._site_proc.get(site)
        if dst is None:
            self.stats.dropped_dead += 1
            return
        self.send(src, dst, payload)

    def send(self, src: ProcessId, dst: ProcessId, payload: Any) -> None:
        """Send ``payload`` from ``src`` to ``dst`` (may silently drop)."""
        stats = self.stats
        stats.sent += 1
        if stats.detailed:
            stats.record_type(payload)
        if dst.site not in self.topology.sites:
            stats.dropped_dead += 1
            return
        if not self.topology.allows(src.site, dst.site):
            stats.dropped_partition += 1
            return
        if self.loss_prob > 0 and self._rng.random() < self.loss_prob:
            stats.dropped_loss += 1
            return
        delay = self.latency.sample(self._rng)
        arrival = self.scheduler.now + delay
        if self.fifo_links:
            arrival = self._fifo_arrival(src, dst, arrival)
        self.scheduler.fire_at(arrival, self._deliver, src, dst, payload)

    def multicast(self, src: ProcessId, dsts: Iterable[ProcessId], payload: Any) -> None:
        """Fan ``payload`` out from ``src`` to every destination.

        Loss and latency are sampled independently per destination, in
        the iteration order of ``dsts`` (so a seeded run is identical to
        the per-destination ``send`` loop it replaces), but the stats
        counters are updated in one batch and the payload type is
        classified once.
        """
        stats = self.stats
        topology = self.topology
        scheduler = self.scheduler
        sites = topology.sites
        loss_prob = self.loss_prob
        rng_random = self._rng.random
        sample = self.latency.sample
        fifo = self.fifo_links
        now = scheduler.now

        sent = dropped_dead = dropped_partition = dropped_loss = 0
        for dst in dsts:
            sent += 1
            if stats.detailed:
                stats.record_type(payload)
            if dst.site not in sites:
                dropped_dead += 1
                continue
            if not topology.allows(src.site, dst.site):
                dropped_partition += 1
                continue
            if loss_prob > 0 and rng_random() < loss_prob:
                dropped_loss += 1
                continue
            arrival = now + sample(self._rng)
            if fifo:
                arrival = self._fifo_arrival(src, dst, arrival)
            scheduler.fire_at(arrival, self._deliver, src, dst, payload)
        stats.sent += sent
        stats.dropped_dead += dropped_dead
        stats.dropped_partition += dropped_partition
        stats.dropped_loss += dropped_loss

    def multicast_sites(self, src: ProcessId, sites: Iterable[SiteId], payload: Any) -> None:
        """Fan out to whichever incarnations currently live at ``sites``
        (the site-addressed analogue of :meth:`multicast`, used by the
        heartbeat failure detector)."""
        site_proc = self._site_proc
        dsts: list[ProcessId] = []
        missing = 0
        for site in sites:
            dst = site_proc.get(site)
            if dst is None:
                missing += 1
            else:
                dsts.append(dst)
        self.stats.dropped_dead += missing
        self.multicast(src, dsts, payload)

    def _fifo_arrival(self, src: ProcessId, dst: ProcessId, arrival: float) -> float:
        clock = self._link_clock
        if self.topology.changes != self._topo_epoch:
            self._prune_link_clocks()
        link = (src.site, dst.site)
        prev = clock.get(link)
        if prev is not None:
            arrival = max(arrival, prev + 1e-9)
        clock[link] = arrival
        return arrival

    def _prune_link_clocks(self) -> None:
        """Drop link-clock entries that can no longer affect ordering.

        Called lazily on the first send after a topology change.  An
        entry whose clock is already in the past constrains nothing (a
        fresh arrival is at least ``now``), so long partition/heal
        histories cannot accumulate clocks without bound.  Entries with
        in-flight traffic (clock still in the future) are kept even
        across cuts: a message sent before a cut that heals before
        arrival still delivers, and must not be overtaken.
        """
        self._topo_epoch = self.topology.changes
        now = self.scheduler.now
        self._link_clock = {
            link: clock
            for link, clock in self._link_clock.items()
            if clock + 1e-9 > now
        }

    def _deliver(self, src: ProcessId, dst: ProcessId, payload: Any) -> None:
        if not self.topology.allows(src.site, dst.site):
            self.stats.dropped_partition += 1
            return
        target = self._site_live.get(dst.site)
        if (
            target is None
            or not target.alive
            or (target.pid is not dst and target.pid != dst)
        ):
            self.stats.dropped_dead += 1
            return
        self.stats.delivered += 1
        target.deliver_network(src, payload)
