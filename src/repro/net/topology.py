"""Dynamic partition topology.

The network's connectivity is a partition of the site universe into
*components*: two sites can exchange messages iff they are in the same
component.  Partitions and repairs happen instantaneously at a virtual
time, driven by the fault schedule; messages in flight across a fresh cut
are lost (connectivity is re-checked at delivery time).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import NetworkError
from repro.types import SiteId


class Topology:
    """Mutable partition of the site universe into connected components."""

    def __init__(self, sites: Iterable[SiteId]) -> None:
        self.sites: set[SiteId] = set(sites)
        if not self.sites:
            raise NetworkError("topology needs at least one site")
        self._component: dict[SiteId, int] = {s: 0 for s in self.sites}
        self._changes = 0
        # Directed cuts: (src, dst) pairs whose one-way traffic is lost
        # even inside a component (asymmetric link failures).
        self._oneway_cuts: set[tuple[SiteId, SiteId]] = set()
        # Fast path: connectivity is queried once or twice per message,
        # and almost all simulated time is spent fully connected, where
        # every query is trivially True.  Mutators recompute the flag.
        self._flat = True

    def _recompute_flat(self) -> None:
        self._flat = (
            not self._oneway_cuts and len(set(self._component.values())) <= 1
        )

    @property
    def changes(self) -> int:
        """How many times connectivity was reconfigured."""
        return self._changes

    def connected(self, a: SiteId, b: SiteId) -> bool:
        """True iff sites ``a`` and ``b`` are in the same component.

        Symmetric by construction; one-way cuts are queried separately
        via :meth:`allows` because they break the symmetry.
        """
        if a not in self._component or b not in self._component:
            raise NetworkError(f"unknown site in connectivity query: {a}, {b}")
        return self._component[a] == self._component[b]

    def allows(self, src: SiteId, dst: SiteId) -> bool:
        """True iff a message from ``src`` can currently reach ``dst``
        (same component AND no one-way cut on that direction)."""
        if self._flat:
            return True
        return self.connected(src, dst) and (src, dst) not in self._oneway_cuts

    def cut_oneway(self, src: SiteId, dst: SiteId) -> None:
        """Silence the ``src -> dst`` direction only (asymmetric fault);
        traffic from ``dst`` to ``src`` is unaffected."""
        if src not in self.sites or dst not in self.sites:
            raise NetworkError(f"unknown site in one-way cut: {src}, {dst}")
        self._oneway_cuts.add((src, dst))
        self._changes += 1
        self._recompute_flat()

    def heal_oneway(self, src: SiteId, dst: SiteId) -> None:
        """Repair a previously installed one-way cut (no-op if absent)."""
        self._oneway_cuts.discard((src, dst))
        self._changes += 1
        self._recompute_flat()

    def component_of(self, site: SiteId) -> frozenset[SiteId]:
        """The set of sites currently connected to ``site`` (inclusive)."""
        cid = self._component[site]
        return frozenset(s for s, c in self._component.items() if c == cid)

    def components(self) -> list[frozenset[SiteId]]:
        """All current components, ordered by their smallest site."""
        by_cid: dict[int, set[SiteId]] = {}
        for site, cid in self._component.items():
            by_cid.setdefault(cid, set()).add(site)
        groups = [frozenset(g) for g in by_cid.values()]
        return sorted(groups, key=min)

    def partition(self, groups: Sequence[Iterable[SiteId]]) -> None:
        """Split the universe into the given groups.

        Groups must be disjoint; sites not mentioned in any group each
        become a singleton component (they are cut off from everyone).
        """
        assigned: dict[SiteId, int] = {}
        for index, group in enumerate(groups):
            for site in group:
                if site not in self.sites:
                    raise NetworkError(f"unknown site {site} in partition spec")
                if site in assigned:
                    raise NetworkError(f"site {site} appears in two groups")
                assigned[site] = index
        next_cid = len(groups)
        for site in self.sites:
            if site not in assigned:
                assigned[site] = next_cid
                next_cid += 1
        self._component = assigned
        self._changes += 1
        self._recompute_flat()

    def heal(self) -> None:
        """Repair every cut (including one-way cuts): one component."""
        self._component = {s: 0 for s in self.sites}
        self._oneway_cuts.clear()
        self._changes += 1
        self._recompute_flat()

    def isolate(self, site: SiteId) -> None:
        """Cut ``site`` away from everyone else, keeping other cuts."""
        if site not in self.sites:
            raise NetworkError(f"unknown site {site}")
        new_cid = 1 + max(self._component.values())
        self._component[site] = new_cid
        self._changes += 1
        self._recompute_flat()

    def restore(
        self,
        components: Sequence[Iterable[SiteId]],
        oneway_cuts: Iterable[Sequence[SiteId]] = (),
        sites: Iterable[SiteId] | None = None,
    ) -> None:
        """Install an externally computed connectivity state wholesale.

        The multi-process cluster driver serializes its topology as
        ``(components, oneway_cuts, sites)`` and pushes it to every node
        process; this is the receiving end.  ``sites`` defaults to the
        union of the components.
        """
        groups = [set(group) for group in components]
        universe = set(sites) if sites is not None else set().union(*groups)
        if not universe:
            raise NetworkError("topology needs at least one site")
        self.sites = universe
        assigned: dict[SiteId, int] = {}
        for index, group in enumerate(groups):
            for site in group:
                assigned[site] = index
        next_cid = len(groups)
        for site in self.sites:
            if site not in assigned:
                assigned[site] = next_cid
                next_cid += 1
        self._component = assigned
        self._oneway_cuts = {(src, dst) for src, dst in oneway_cuts}
        self._changes += 1
        self._recompute_flat()

    def add_site(self, site: SiteId) -> None:
        """Grow the universe by a new site.

        The new site lands in the component of the lowest-numbered
        existing site (the "main" component); use :meth:`partition` or
        :meth:`isolate` afterwards for anything fancier.
        """
        if site in self.sites:
            raise NetworkError(f"site {site} already exists")
        anchor = min(self.sites)
        self.sites.add(site)
        self._component[site] = self._component[anchor]
        self._changes += 1
        self._recompute_flat()
