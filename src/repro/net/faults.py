"""Declarative fault schedules.

A fault schedule is a time-ordered list of environment actions — crashes,
recoveries, partitions, repairs and joins — applied to a cluster at
*scenario-unit* times.  Schedules are plain data, so workload generators
(:mod:`repro.workload`) can build, inspect, shrink and replay them.

Schedules are backend-agnostic: they arm against any
:class:`~repro.ports.SchedulerPort` and act on any
:class:`FaultTarget`, so the same schedule drives the simulator and the
real-network runtime.  One scenario unit is one simulated time unit on
the simulator; a wall-clock backend rescales via :meth:`FaultSchedule.
scaled` (see :attr:`repro.ports.ClusterPort.time_scale`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields, replace
from typing import Any, Protocol, Sequence

from repro.errors import SimulationError
from repro.ports import SchedulerPort
from repro.types import SiteId


class FaultTarget(Protocol):
    """What a fault schedule needs from the cluster it acts on."""

    def crash(self, site: SiteId) -> None: ...

    def recover(self, site: SiteId) -> None: ...

    def partition(self, groups: Sequence[Sequence[SiteId]]) -> None: ...

    def heal(self) -> None: ...

    def join(self, site: SiteId) -> None: ...


@dataclass(frozen=True)
class Crash:
    """Crash the process currently running at ``site``."""

    time: float
    site: SiteId

    def apply(self, target: FaultTarget) -> None:
        target.crash(self.site)


@dataclass(frozen=True)
class Recover:
    """Restart ``site`` with a fresh process identifier."""

    time: float
    site: SiteId

    def apply(self, target: FaultTarget) -> None:
        target.recover(self.site)


@dataclass(frozen=True)
class Partition:
    """Split connectivity into the given site groups."""

    time: float
    groups: tuple[tuple[SiteId, ...], ...]

    def apply(self, target: FaultTarget) -> None:
        target.partition(self.groups)


@dataclass(frozen=True)
class Heal:
    """Repair every network cut."""

    time: float

    def apply(self, target: FaultTarget) -> None:
        target.heal()


@dataclass(frozen=True)
class Join:
    """Start a brand-new site and have it join the group."""

    time: float
    site: SiteId

    def apply(self, target: FaultTarget) -> None:
        target.join(self.site)


@dataclass(frozen=True)
class OneWayCut:
    """Silence the ``src -> dst`` direction only (asymmetric failure)."""

    time: float
    src: SiteId
    dst: SiteId

    def apply(self, target: FaultTarget) -> None:
        target.topology.cut_oneway(self.src, self.dst)  # type: ignore[attr-defined]


@dataclass(frozen=True)
class OneWayHeal:
    """Repair a one-way cut."""

    time: float
    src: SiteId
    dst: SiteId

    def apply(self, target: FaultTarget) -> None:
        target.topology.heal_oneway(self.src, self.dst)  # type: ignore[attr-defined]


FaultAction = Crash | Recover | Partition | Heal | Join | OneWayCut | OneWayHeal

#: JSON type tag -> action class, for schedule (de)serialization.
ACTION_TYPES: dict[str, type] = {
    cls.__name__: cls
    for cls in (Crash, Recover, Partition, Heal, Join, OneWayCut, OneWayHeal)
}


def action_to_json_obj(action: FaultAction) -> dict[str, Any]:
    """One action as a plain-JSON dict (``{"type": ..., fields...}``)."""
    payload: dict[str, Any] = {"type": type(action).__name__}
    for f in fields(action):
        value = getattr(action, f.name)
        if f.name == "groups":
            value = [list(group) for group in value]
        payload[f.name] = value
    return payload


def action_from_json_obj(payload: dict[str, Any]) -> FaultAction:
    """Inverse of :func:`action_to_json_obj`; raises on unknown types
    or unknown fields so corrupted corpus entries fail loudly."""
    data = dict(payload)
    type_name = data.pop("type", None)
    cls = ACTION_TYPES.get(type_name)
    if cls is None:
        raise SimulationError(
            f"unknown fault action type {type_name!r}; "
            f"expected one of {sorted(ACTION_TYPES)}"
        )
    known = {f.name for f in fields(cls)}
    unknown = set(data) - known
    if unknown:
        raise SimulationError(
            f"{type_name} does not take fields {sorted(unknown)}"
        )
    if "groups" in data:
        data["groups"] = tuple(
            tuple(int(site) for site in group) for group in data["groups"]
        )
    return cls(**data)


@dataclass
class FaultSchedule:
    """An ordered collection of fault actions."""

    actions: list[FaultAction] = field(default_factory=list)

    def add(self, action: FaultAction) -> "FaultSchedule":
        self.actions.append(action)
        return self

    def validate(self) -> None:
        """Check the schedule is internally consistent (up/down parity)."""
        down: set[SiteId] = set()
        for action in sorted(self.actions, key=lambda a: a.time):
            if isinstance(action, Crash):
                if action.site in down:
                    raise SimulationError(
                        f"site {action.site} crashed twice without recovery"
                    )
                down.add(action.site)
            elif isinstance(action, Recover):
                if action.site not in down:
                    raise SimulationError(
                        f"site {action.site} recovered while up"
                    )
                down.discard(action.site)

    def arm(self, scheduler: SchedulerPort, target: FaultTarget) -> None:
        """Schedule every action on ``scheduler`` against ``target``.

        Action times are absolute scheduler times; any backend's
        scheduler port works (the simulator's or the wall clock's).
        """
        self.validate()
        for action in self.actions:
            scheduler.at(action.time, action.apply, target)

    def scaled(self, factor: float) -> "FaultSchedule":
        """A copy with every action time multiplied by ``factor``.

        This is how a schedule written in scenario units lands on a
        backend with a different time base: scale by the cluster's
        :attr:`~repro.ports.ClusterPort.time_scale`.  ``factor == 1.0``
        returns ``self`` unchanged.
        """
        if factor == 1.0:
            return self
        return FaultSchedule(
            [replace(a, time=a.time * factor) for a in self.actions]
        )

    def shifted(self, offset: float) -> "FaultSchedule":
        """A copy with every action time moved later by ``offset``.

        Used to arm a schedule relative to "now" on a backend whose
        clock has already advanced (a wall-clock cluster that booted and
        settled before the scenario starts).  ``offset == 0.0`` returns
        ``self`` unchanged.
        """
        if offset == 0.0:
            return self
        return FaultSchedule(
            [replace(a, time=a.time + offset) for a in self.actions]
        )

    @property
    def horizon(self) -> float:
        """Scenario time of the last scheduled action (0 if empty)."""
        if not self.actions:
            return 0.0
        return max(a.time for a in self.actions)

    # -- durable artifacts ------------------------------------------------
    #
    # Schedules are corpus entries and shrunk reproducers for the fuzzer
    # (:mod:`repro.fuzz`), so they round-trip exactly through JSON *and*
    # through ``repr`` (every action is a frozen dataclass whose repr is
    # an evaluable constructor call).

    def to_json_obj(self) -> dict[str, Any]:
        return {"actions": [action_to_json_obj(a) for a in self.actions]}

    @classmethod
    def from_json_obj(cls, payload: dict[str, Any]) -> "FaultSchedule":
        actions = payload.get("actions")
        if not isinstance(actions, list):
            raise SimulationError("fault schedule JSON needs an 'actions' list")
        return cls([action_from_json_obj(a) for a in actions])

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_json_obj(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        return cls.from_json_obj(json.loads(text))
