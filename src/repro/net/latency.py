"""Link latency models.

A latency model is any object with ``sample(rng) -> float``.  The models
here cover the regimes the paper's asynchrony argument needs: constant
(for fully deterministic tests), uniform jitter, and occasional long
spikes — the spikes are what provoke *false suspicions* in the failure
detector, one of the failure scenarios Section 2 insists a realistic
model must include.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class ConstantLatency:
    """Every message takes exactly ``delay`` units."""

    delay: float = 1.0

    def sample(self, rng: random.Random) -> float:
        return self.delay


@dataclass(frozen=True)
class UniformLatency:
    """Delay drawn uniformly from ``[low, high]``."""

    low: float = 0.5
    high: float = 2.0

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)


@dataclass(frozen=True)
class SpikeLatency:
    """Mostly ``base`` delay, but with probability ``spike_prob`` the
    message is delayed by ``spike`` instead — long enough, when
    configured above the failure detector's timeout, to cause false
    suspicions without any real crash."""

    base: float = 1.0
    spike: float = 50.0
    spike_prob: float = 0.01

    def sample(self, rng: random.Random) -> float:
        if rng.random() < self.spike_prob:
            return self.spike
        return self.base
