"""Actor-style process base class.

A :class:`Process` is a purely event-driven entity: it reacts to network
deliveries (:meth:`Process.on_network`) and to its own timers.  Crashing
a process cancels every pending timer and silences it permanently — per
the paper's model a recovery is a *new* process with a fresh identifier,
so a crashed ``Process`` instance is never reused.

A process is backend-agnostic: it holds whatever
:class:`~repro.ports.SchedulerPort` and :class:`~repro.ports.NetworkPort`
it was wired to, so the same subclass runs unmodified inside the
discrete-event simulator and on the asyncio real-network runtime
(:mod:`repro.realnet`).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.errors import SimulationError
from repro.ports import CancellableEvent, NetworkPort, SchedulerPort
from repro.sim.stable_storage import SiteStorage
from repro.types import ProcessId


class Timer:
    """A cancellable (optionally periodic) timer owned by a process."""

    def __init__(
        self,
        process: "Process",
        interval: float,
        callback: Callable[[], None],
        periodic: bool,
    ) -> None:
        self._process = process
        self._interval = interval
        self._callback = callback
        self._periodic = periodic
        self._event: CancellableEvent | None = None
        self.active = True
        self._arm()

    def _arm(self) -> None:
        self._event = self._process.scheduler.after(self._interval, self._fire)

    def _fire(self) -> None:
        if not self.active or not self._process.alive:
            return
        if self._periodic:
            self._arm()
        else:
            self.active = False
        self._callback()

    def cancel(self) -> None:
        self.active = False
        if self._event is not None:
            self._event.cancel()
            self._event = None


class Process:
    """Base class for every protocol entity living at a site.

    Subclasses implement :meth:`on_network` and may override
    :meth:`on_start` (called when the process is attached to the network)
    and :meth:`on_crash` (called when the process is killed).
    """

    def __init__(self, pid: ProcessId, scheduler: SchedulerPort, storage: SiteStorage) -> None:
        self.pid = pid
        self.scheduler = scheduler
        self.storage = storage
        self.alive = True
        self.network: NetworkPort | None = None
        self._timers: list[Timer] = []

    @property
    def now(self) -> float:
        return self.scheduler.now

    # -- wiring -----------------------------------------------------------

    def attach(self, network: NetworkPort) -> None:
        """Called by the network when the process is registered."""
        self.network = network
        self.on_start()

    def on_start(self) -> None:
        """Hook: the process has been attached and may arm timers."""

    # -- communication ----------------------------------------------------

    def send(self, dst: ProcessId, payload: Any) -> None:
        """Send ``payload`` to ``dst`` over the simulated network."""
        if self.network is None:
            raise SimulationError(f"{self.pid} is not attached to a network")
        if not self.alive:
            return
        self.network.send(self.pid, dst, payload)

    def send_many(self, dsts: "Iterable[ProcessId]", payload: Any) -> None:
        """Multicast ``payload`` to every destination in one network call.

        Equivalent to ``for dst in dsts: self.send(dst, payload)`` —
        loss/latency are still per-destination — but batched through
        :meth:`Network.multicast` so the fan-out loops of the protocol
        layers stay off the per-send slow path.
        """
        if self.network is None:
            raise SimulationError(f"{self.pid} is not attached to a network")
        if not self.alive:
            return
        self.network.multicast(self.pid, dsts, payload)

    def on_network(self, src: ProcessId, payload: Any) -> None:
        """Hook: a network message from ``src`` has been delivered."""
        raise NotImplementedError

    def deliver_network(self, src: ProcessId, payload: Any) -> None:
        """Entry point used by the network; drops input if crashed."""
        if not self.alive:
            return
        self.on_network(src, payload)

    # -- timers -----------------------------------------------------------

    def set_timer(self, delay: float, callback: Callable[[], None]) -> Timer:
        """Arm a one-shot timer; it is silenced automatically on crash."""
        timer = Timer(self, delay, callback, periodic=False)
        self._timers.append(timer)
        self._prune_timers()
        return timer

    def set_periodic(self, interval: float, callback: Callable[[], None]) -> Timer:
        """Arm a periodic timer firing every ``interval`` units."""
        timer = Timer(self, interval, callback, periodic=True)
        self._timers.append(timer)
        self._prune_timers()
        return timer

    def _prune_timers(self) -> None:
        if len(self._timers) > 64:
            self._timers = [t for t in self._timers if t.active]

    # -- failure ----------------------------------------------------------

    def crash(self) -> None:
        """Kill the process: silence timers and all future deliveries."""
        if not self.alive:
            return
        self.alive = False
        for timer in self._timers:
            timer.cancel()
        self._timers.clear()
        self.on_crash()

    def on_crash(self) -> None:
        """Hook: the process has just been crashed."""

    def __repr__(self) -> str:
        status = "up" if self.alive else "crashed"
        return f"{type(self).__name__}({self.pid}, {status})"
