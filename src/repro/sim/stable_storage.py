"""Per-site stable storage.

The application model (Section 3) lets part of a process's local state be
*permanent* and survive crashes.  Crashing destroys a process's volatile
state and its identifier; the stable store belongs to the *site* and is
handed to the next incarnation.  The state-creation machinery
(:mod:`repro.core.state_creation`) keeps its view log here, which is what
makes "determining the last process to fail" possible after a total
failure, exactly as in Skeen's algorithm cited by the paper.

Snapshot semantics with a copy-on-write fast path: a write must behave
like a force-write to disk — the writer keeping a reference to the value
must not be able to mutate what was "persisted".  For a *recursively
immutable* value (numbers, strings, tuples/frozensets of immutables,
frozen dataclasses such as every identifier type in :mod:`repro.types`)
sharing the object IS a snapshot, so the blanket ``copy.deepcopy`` the
first implementation used is skipped entirely; only values that can
actually be mutated are deep-copied.  Protocol-critical writes (epoch
counters, view logs of frozen records) hit the zero-copy path.
"""

from __future__ import annotations

import copy
from dataclasses import fields, is_dataclass
from typing import Any, Iterator

from repro.types import SiteId

_ATOMIC = (int, float, complex, bool, str, bytes, type(None))


def _is_immutable(value: Any) -> bool:
    """True iff ``value`` is recursively immutable (safe to share).

    The check must stay structural: a frozen dataclass may still carry a
    mutable object in an ``Any`` field (e.g. a ``Message`` payload), so
    per-type verdicts cannot be cached.
    """
    if isinstance(value, _ATOMIC):
        return True
    if isinstance(value, (tuple, frozenset)):
        return all(_is_immutable(item) for item in value)
    if is_dataclass(value) and not isinstance(value, type):
        params = getattr(value, "__dataclass_params__", None)
        if params is None or not params.frozen:
            return False
        return all(
            _is_immutable(getattr(value, f.name)) for f in fields(value)
        )
    return False


def snapshot(value: Any) -> Any:
    """An isolated snapshot of ``value``: the value itself when it is
    recursively immutable, a deep copy otherwise."""
    if _is_immutable(value):
        return value
    return copy.deepcopy(value)


class SiteStorage:
    """Stable key/value storage of a single site.

    Writes and reads exchange snapshots (see module docstring) so a
    crashed process cannot keep mutating what it "persisted" — writes
    are atomic, like a force-write to disk.
    """

    def __init__(self, site: SiteId) -> None:
        self.site = site
        self._data: dict[str, Any] = {}

    def write(self, key: str, value: Any) -> None:
        """Atomically persist ``value`` under ``key``."""
        self._data[key] = snapshot(value)

    def read(self, key: str, default: Any = None) -> Any:
        """Return a private snapshot of the persisted value (or ``default``)."""
        if key not in self._data:
            return default
        return snapshot(self._data[key])

    def append(self, key: str, item: Any) -> None:
        """Append ``item`` to the list persisted under ``key``."""
        log = self._data.setdefault(key, [])
        log.append(snapshot(item))

    def keys(self) -> Iterator[str]:
        return iter(self._data)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def wipe(self) -> None:
        """Destroy the site's storage (models disk loss, used in tests)."""
        self._data.clear()


class StableStore:
    """The collection of every site's stable storage in a run."""

    def __init__(self) -> None:
        self._sites: dict[SiteId, SiteStorage] = {}

    def site(self, site: SiteId) -> SiteStorage:
        """Return (creating on first use) the storage of ``site``."""
        if site not in self._sites:
            self._sites[site] = SiteStorage(site)
        return self._sites[site]
