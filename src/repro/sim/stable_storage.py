"""Per-site stable storage.

The application model (Section 3) lets part of a process's local state be
*permanent* and survive crashes.  Crashing destroys a process's volatile
state and its identifier; the stable store belongs to the *site* and is
handed to the next incarnation.  The state-creation machinery
(:mod:`repro.core.state_creation`) keeps its view log here, which is what
makes "determining the last process to fail" possible after a total
failure, exactly as in Skeen's algorithm cited by the paper.
"""

from __future__ import annotations

import copy
from typing import Any, Iterator

from repro.types import SiteId


class SiteStorage:
    """Stable key/value storage of a single site.

    Values are deep-copied on write and read so a crashed process cannot
    keep mutating what it "persisted" — writes are atomic snapshots, like
    a force-write to disk.
    """

    def __init__(self, site: SiteId) -> None:
        self.site = site
        self._data: dict[str, Any] = {}

    def write(self, key: str, value: Any) -> None:
        """Atomically persist ``value`` under ``key``."""
        self._data[key] = copy.deepcopy(value)

    def read(self, key: str, default: Any = None) -> Any:
        """Return a private copy of the persisted value (or ``default``)."""
        if key not in self._data:
            return default
        return copy.deepcopy(self._data[key])

    def append(self, key: str, item: Any) -> None:
        """Append ``item`` to the list persisted under ``key``."""
        log = self._data.setdefault(key, [])
        log.append(copy.deepcopy(item))

    def keys(self) -> Iterator[str]:
        return iter(self._data)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def wipe(self) -> None:
        """Destroy the site's storage (models disk loss, used in tests)."""
        self._data.clear()


class StableStore:
    """The collection of every site's stable storage in a run."""

    def __init__(self) -> None:
        self._sites: dict[SiteId, SiteStorage] = {}

    def site(self, site: SiteId) -> SiteStorage:
        """Return (creating on first use) the storage of ``site``."""
        if site not in self._sites:
            self._sites[site] = SiteStorage(site)
        return self._sites[site]
