"""Virtual-time event scheduler.

A tiny, deterministic discrete-event core.  The heap holds ``(time,
seq, callback, args, event)`` tuples; ``seq`` is a monotonically
increasing counter that breaks ties between events scheduled for the
same instant, so execution order is a pure function of the schedule
(tuples never compare beyond ``seq``, which is unique).

Two scheduling lanes share the heap:

* the cancellable lane (:meth:`Scheduler.at` / :meth:`Scheduler.after`)
  returns an :class:`Event` handle whose :meth:`Event.cancel` prevents
  firing — used by timers and anything that may be rescinded;
* the fast lane (:meth:`Scheduler.fire_at` / :meth:`Scheduler.fire_after`)
  allocates no handle at all — used for fire-and-forget work such as
  message deliveries, which dominate event volume and never cancel.

Cancellation is lazy: a cancelled event stays in the heap (marked dead)
until it surfaces, but when dead entries exceed half the heap the queue
is compacted in one pass, so a workload that cancels heavily — e.g.
per-message retransmission timers — cannot grow the heap without bound.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.errors import SimulationError

# Compaction only kicks in past this heap size: tiny heaps are cheap to
# scan and compacting them would just churn.
_COMPACT_MIN = 64


class Event:
    """A scheduled callback; cancellable until it fires."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_sched")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: tuple[Any, ...],
        sched: "Scheduler | None" = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._sched = sched

    def cancel(self) -> None:
        """Prevent the event from firing; safe to call more than once."""
        if not self.cancelled:
            self.cancelled = True
            if self._sched is not None:
                self._sched._note_cancel()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time}, seq={self.seq}, {state})"


class Scheduler:
    """Orders and executes all events of one simulation run.

    This is the simulator's implementation of
    :class:`repro.ports.SchedulerPort` (``now`` is virtual time);
    :class:`repro.realnet.WallClockScheduler` implements the same
    contract over an asyncio event loop.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        # Heap entries: (time, seq, callback, args, event-or-None).
        self._heap: list[tuple[float, int, Callable[..., None], tuple, Event | None]] = []
        self._events_run = 0
        self._live = 0
        self._dead = 0  # cancelled entries still buried in the heap

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def events_run(self) -> int:
        """Number of events executed so far (for budget checks)."""
        return self._events_run

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued (O(1))."""
        return self._live

    # -- scheduling -------------------------------------------------------

    def at(self, time: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute virtual ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past: {time} < now {self._now}"
            )
        self._seq += 1
        event = Event(time, self._seq, callback, args, self)
        heapq.heappush(self._heap, (time, self._seq, callback, args, event))
        self._live += 1
        return event

    def after(self, delay: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` after a relative ``delay`` >= 0."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.at(self._now + delay, callback, *args)

    def fire_at(self, time: float, callback: Callable[..., None], *args: Any) -> None:
        """Fast lane: schedule a fire-and-forget callback at ``time``.

        No :class:`Event` handle is allocated, so the entry can never be
        cancelled — the right lane for message deliveries, which account
        for nearly all scheduled work and are only ever dropped by the
        network's own connectivity checks, never rescinded.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past: {time} < now {self._now}"
            )
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, callback, args, None))
        self._live += 1

    def fire_after(self, delay: float, callback: Callable[..., None], *args: Any) -> None:
        """Fast lane, relative: fire-and-forget after ``delay`` >= 0."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        self.fire_at(self._now + delay, callback, *args)

    # -- lazy cancellation ------------------------------------------------

    def _note_cancel(self) -> None:
        self._live -= 1
        self._dead += 1
        if self._dead * 2 > len(self._heap) and len(self._heap) > _COMPACT_MIN:
            self._compact()

    def _compact(self) -> None:
        """Purge cancelled entries in one pass and re-heapify.

        Pop order is unaffected: heap order is a total order on unique
        ``(time, seq)`` keys, so any valid heap arrangement pops the
        same sequence.
        """
        self._heap = [
            entry for entry in self._heap
            if entry[4] is None or not entry[4].cancelled
        ]
        heapq.heapify(self._heap)
        self._dead = 0

    # -- execution --------------------------------------------------------

    def step(self) -> bool:
        """Execute the next pending event.

        Returns False when the queue is empty (simulation quiescent).
        """
        while self._heap:
            time, _seq, callback, args, event = heapq.heappop(self._heap)
            if event is not None:
                if event.cancelled:
                    self._dead -= 1
                    continue
                # Detach so a late cancel() (e.g. a timer torn down after
                # it already fired) cannot skew the live/dead counters.
                event._sched = None
            self._live -= 1
            self._now = time
            self._events_run += 1
            callback(*args)
            return True
        return False

    def run(self, until: float | None = None, max_events: int = 10_000_000) -> float:
        """Run events until quiescence or virtual time ``until``.

        Returns the virtual time at which the run stopped.  ``max_events``
        is a safety net against livelocked protocols: exceeding it raises
        :class:`SimulationError` rather than looping forever.
        """
        executed = 0
        while self._heap:
            head = self._heap[0]
            if head[4] is not None and head[4].cancelled:
                heapq.heappop(self._heap)
                self._dead -= 1
                continue
            if until is not None and head[0] > until:
                break
            if executed >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; protocol livelock?"
                )
            self.step()
            executed += 1
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def run_for(self, duration: float, max_events: int = 10_000_000) -> float:
        """Run for ``duration`` units of virtual time from now."""
        return self.run(until=self._now + duration, max_events=max_events)
