"""Virtual-time event scheduler.

A tiny, deterministic discrete-event core: events are ``(time, seq,
callback)`` triples kept in a binary heap; ``seq`` is a monotonically
increasing counter that breaks ties between events scheduled for the
same instant, so execution order is a pure function of the schedule.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.errors import SimulationError


class Event:
    """A scheduled callback; cancellable until it fires."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: tuple[Any, ...],
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing; safe to call more than once."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time}, seq={self.seq}, {state})"


class Scheduler:
    """Orders and executes all events of one simulation run."""

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._heap: list[Event] = []
        self._events_run = 0

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def events_run(self) -> int:
        """Number of events executed so far (for budget checks)."""
        return self._events_run

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for e in self._heap if not e.cancelled)

    def at(self, time: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute virtual ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past: {time} < now {self._now}"
            )
        self._seq += 1
        event = Event(time, self._seq, callback, args)
        heapq.heappush(self._heap, event)
        return event

    def after(self, delay: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` after a relative ``delay`` >= 0."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.at(self._now + delay, callback, *args)

    def step(self) -> bool:
        """Execute the next pending event.

        Returns False when the queue is empty (simulation quiescent).
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_run += 1
            event.callback(*event.args)
            return True
        return False

    def run(self, until: float | None = None, max_events: int = 10_000_000) -> float:
        """Run events until quiescence or virtual time ``until``.

        Returns the virtual time at which the run stopped.  ``max_events``
        is a safety net against livelocked protocols: exceeding it raises
        :class:`SimulationError` rather than looping forever.
        """
        executed = 0
        while self._heap:
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and head.time > until:
                break
            if executed >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; protocol livelock?"
                )
            self.step()
            executed += 1
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def run_for(self, duration: float, max_events: int = 10_000_000) -> float:
        """Run for ``duration`` units of virtual time from now."""
        return self.run(until=self._now + duration, max_events=max_events)
