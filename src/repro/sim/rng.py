"""Seeded random-number substreams.

Every source of randomness in a run (network latency, fault schedules,
workload generators, ...) draws from its own named substream derived
deterministically from the master seed, so adding a new consumer of
randomness never perturbs the draws seen by existing ones.
"""

from __future__ import annotations

import hashlib
import random


class RngStreams:
    """A family of independent :class:`random.Random` substreams."""

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating on first use) the substream called ``name``."""
        if name not in self._streams:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            self._streams[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def spawn(self, name: str) -> "RngStreams":
        """Derive an independent child family (for nested generators)."""
        digest = hashlib.sha256(f"{self.seed}/{name}".encode()).digest()
        return RngStreams(int.from_bytes(digest[:8], "big"))
