"""Deterministic discrete-event simulation kernel.

Everything in this reproduction runs on virtual time: a single
:class:`~repro.sim.scheduler.Scheduler` orders all events, all randomness
flows from named substreams of one seed, and every protocol entity is a
:class:`~repro.sim.process.Process` driven purely by message deliveries
and timers.  The same seed therefore always yields the same execution —
the property that lets the test suite make exact assertions about
adversarial interleavings.
"""

from repro.sim.scheduler import Event, Scheduler
from repro.sim.rng import RngStreams
from repro.sim.process import Process, Timer
from repro.sim.stable_storage import SiteStorage, StableStore

__all__ = [
    "Event",
    "Scheduler",
    "RngStreams",
    "Process",
    "Timer",
    "SiteStorage",
    "StableStore",
]
