"""Command-line interface: ``python -m repro <command>``.

Commands:

``demo``
    Run the quickstart scenario (bootstrap, partition, heal) and print
    the views and property-check results.
``run``
    Run a seeded random fault schedule over a chosen application and
    print a run summary plus the property reports.  ``--runtime sim``
    (default) runs on the deterministic simulator; ``--runtime
    realnet`` drives the identical schedule over loopback TCP sockets.
``check``
    Sweep many seeds, verifying all six properties on each run; exits
    non-zero if any violation is found (useful as a soak test).  Also
    takes ``--runtime``.
``experiments``
    List the paper experiments and the benchmark files that regenerate
    them.
``serve`` / ``load``
    The client service tier: ``serve`` boots a realnet cluster running
    the versioned record store and keeps serving the client wire
    protocol (``docs/protocol.md`` §8); ``load`` offers open-loop load
    against an already-running cluster over real TCP connections and
    prints throughput plus p50/p99 latency with an SLO verdict.  The
    in-run equivalent is ``run --client-rate`` (works on both
    runtimes, and additionally checks that no acknowledged write was
    lost across the run's faults).
``realnet``
    Run the stacks over real TCP sockets: the partition/merge demo
    (default), or one standalone node of a multi-process deployment
    (``realnet node``).
``obs``
    Observability console.  ``obs report`` runs the figure-2 checked
    workload on either runtime and prints the unified metrics report
    (live registry values side by side with trace-derived aggregates);
    ``obs watch`` polls running realnet nodes for metric snapshots over
    their normal listening sockets.
``fuzz``
    Coverage-guided protocol fuzzer (``docs/fuzzing.md``): ``fuzz run``
    mutates fault schedules toward novel protocol coverage and shrinks
    failures to minimal reproducers; ``fuzz replay`` re-runs a corpus
    entry and verifies its verdict; ``fuzz shrink`` minimizes one
    entry; ``fuzz corpus`` summarizes a corpus directory.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.apps.factories import APP_NAMES, app_factory
from repro.bench.harness import Table
from repro.ports import RUNTIMES, ClusterPort, make_cluster
from repro.trace.checks import (
    CheckReport,
    check_cluster,
    check_enriched_views,
    check_view_synchrony,
)
from repro.workload.generator import RandomFaultGenerator
from repro.workload.runner import run_checked_workload

EXPERIMENTS = [
    ("E1", "Figure 1: mode-transition diagram", "bench_e1_modes.py"),
    ("E2", "Properties 2.1-2.3 under adversarial runs", "bench_e2_vs_properties.py"),
    ("E3", "Figure 2: structure preservation (6.3)", "bench_e3_structure.py"),
    ("E4", "Figure 3: e-view change ordering (6.1/6.2)", "bench_e4_eview_order.py"),
    ("E5", "Section 5: merge cost, one-at-a-time vs one change", "bench_e5_merge_cost.py"),
    ("E6", "Sections 4/6.2: flat vs enriched classification", "bench_e6_classify.py"),
    ("E7", "Section 4: primary partition excludes merging", "bench_e7_primary.py"),
    ("E8", "Section 5: blocking vs two-piece transfer", "bench_e8_transfer.py"),
    ("E9", "Section 6.2: undisturbed internal operations", "bench_e9_undisturbed.py"),
    ("E10", "Section 3: example-object invariants", "bench_e10_apps.py"),
    ("A1-A3", "ablations of load-bearing mechanisms", "bench_ablations.py"),
]

def _print_reports(reports: list[CheckReport]) -> int:
    violations = 0
    for report in reports:
        print(f"  {report}")
        violations += len(report.violations)
    return violations


def _report_properties(cluster: ClusterPort) -> int:
    return _print_reports(check_cluster(cluster))


def cmd_demo(args: argparse.Namespace) -> int:
    cluster = make_cluster("sim", args.sites, seed=args.seed)
    cluster.settle()
    print(f"group formed at t={cluster.now}:")
    for site, view in cluster.views().items():
        print(f"  site {site}: {view}")
    minority = max(1, args.sites // 3)
    left = list(range(args.sites - minority))
    right = list(range(args.sites - minority, args.sites))
    cluster.partition([left, right])
    cluster.settle()
    print(f"\npartitioned {left} | {right}:")
    for site, view in cluster.views().items():
        print(f"  site {site}: {view}")
    cluster.heal()
    cluster.settle()
    print("\nhealed:")
    for site, view in cluster.views().items():
        print(f"  site {site}: {view}")
    print("\nproperty checks:")
    return 1 if _report_properties(cluster) else 0


def _print_load_results(load_report, verdict, unit: str) -> None:
    """Load + SLO tables shared by ``run --client-rate`` and ``load``."""
    table = Table("open-loop client load", ["metric", "value"])
    table.add("offered ops", load_report.offered)
    table.add("completed", load_report.completed)
    table.add("acked ok", load_report.ok)
    for status, count in load_report.by_status.items():
        table.add(f"  status={status}", count)
    table.add("late send slots", load_report.late)
    table.add(f"duration ({unit})", round(load_report.duration, 3))
    table.add(f"achieved ops/{unit}", round(load_report.achieved_rate, 1))
    table.show()
    slo = Table(f"client latency ({unit})", ["op", "count", "p50", "p99"])
    for op, row in sorted(verdict.per_op.items()):
        slo.add(op, int(row["count"]), round(row["p50"], 4), round(row["p99"], 4))
    slo.add("overall", verdict.count, round(verdict.p50, 4), round(verdict.p99, 4))
    slo.show()
    print(
        f"SLO p99 target {verdict.target_p99:g}{unit}: "
        f"{'met' if verdict.met else 'MISSED'} (worst p99 {verdict.p99:g}{unit})"
    )


def _run_client_load(args: argparse.Namespace, cluster, schedule, tail) -> int:
    """The ``run --client-rate`` path: open-loop load + faults + checks."""
    from repro.workload.openloop import LoadSpec
    from repro.workload.runner import run_client_load

    scale = cluster.time_scale
    spec = LoadSpec(
        rate=args.client_rate / scale,
        duration=args.duration * scale,
        clients=args.client_count,
        n_keys=args.client_keys,
        key_dist=args.client_dist,
        read_fraction=args.client_reads,
        read_mode=args.client_read_mode,
        seed=args.seed,
    )
    result = run_client_load(
        cluster, spec, schedule, tail=tail, slo_p99=args.client_slo
    )
    unit = "s" if args.runtime != "sim" else "u"
    _print_load_results(result.load, result.verdict, unit)
    report = result.workload
    if args.export:
        from repro.trace.export import dump_trace

        with open(args.export, "w", encoding="utf-8") as handle:
            count = dump_trace(report.trace, handle)
        print(f"exported {count} trace events to {args.export}")
    _export_metrics(report.metrics, args.metrics, args.metrics_jsonl)
    print("property checks:")
    violations = _print_reports(report.reports)
    if not result.load.completed:
        print("no client operation completed", file=sys.stderr)
        return 1
    return 1 if violations else 0


def cmd_run(args: argparse.Namespace) -> int:
    generator = RandomFaultGenerator(
        n_sites=args.sites, seed=args.seed, duration=args.duration,
        asymmetric=args.asymmetric,
    )
    schedule = generator.generate()
    if args.no_faults:
        from repro.net.faults import FaultSchedule

        schedule = FaultSchedule()
    if args.client_rate:
        if args.app == "none":
            args.app = "store"  # client load only makes sense over the store
        elif args.app != "store":
            raise SystemExit("--client-rate serves the 'store' app; "
                             f"got --app {args.app}")
    if args.runtime == "realnet-proc":
        # Applications travel by name: the driver passes --app on each
        # child's command line instead of shipping a closure.
        if args.fd_mode is not None:
            raise SystemExit(
                "--fd-mode is not plumbed through the realnet-proc child "
                "command line; use --runtime sim or --runtime realnet"
            )
        factory = None
        knobs = {"scale": args.scale, "app": args.app, "codec": args.codec}
    elif args.runtime == "realnet":
        factory = app_factory(args.app, args.sites)
        knobs = {"scale": args.scale, "codec": args.codec}
    else:
        factory = app_factory(args.app, args.sites)
        knobs = {}
    if args.runtime != "realnet-proc":
        if args.fd_mode is not None:
            knobs["fd_mode"] = args.fd_mode
        if args.gossip_fanout is not None:
            knobs["gossip_fanout"] = args.gossip_fanout
    if args.tracing:
        knobs["tracing"] = True
    cluster = make_cluster(
        args.runtime, args.sites, app_factory=factory,
        seed=args.seed, loss_prob=args.loss, **knobs,
    )
    try:
        if args.client_rate:
            return _run_client_load(
                args, cluster, schedule, generator.settle_tail
            )
        report = run_checked_workload(
            cluster, schedule, tail=generator.settle_tail
        )
        from repro.trace.stats import summarize

        stats = summarize(report.trace)
        net = cluster.network_stats()
        title = f"run summary (sites={args.sites} seed={args.seed} app={args.app})"
        if args.runtime != "sim":
            title = f"run summary (runtime={args.runtime} " + title[len("run summary ("):]
        table = Table(title, ["metric", "value"])
        time_label = "virtual time" if args.runtime == "sim" else "wall time (s)"
        table.add(time_label, cluster.now)
        table.add("fault actions", len(schedule.actions))
        table.add("messages sent", net.sent)
        table.add("messages delivered", net.delivered)
        table.add("view installs", stats.view_installs)
        table.add("max concurrent views", stats.max_concurrent_views)
        table.add("app deliveries", stats.deliveries)
        table.add("e-view changes", stats.eview_changes)
        table.add("settlement sessions", stats.settlement_sessions)
        table.add("settled", cluster.is_settled())
        table.show()
        if args.export:
            from repro.trace.export import dump_trace

            with open(args.export, "w", encoding="utf-8") as handle:
                count = dump_trace(report.trace, handle)
            print(f"exported {count} trace events to {args.export}")
        _export_metrics(report.metrics, args.metrics, args.metrics_jsonl)
        print("property checks:")
        return 1 if _print_reports(report.reports) else 0
    finally:
        cluster.close()


def _export_metrics(snapshot, prom_path, jsonl_path) -> None:
    """Write a run's MetricsSnapshot to the requested export files."""
    if snapshot is None or (not prom_path and not jsonl_path):
        return
    from repro.obs.export import write_jsonl, write_prometheus

    if prom_path:
        write_prometheus(snapshot, prom_path)
        print(f"exported metrics (Prometheus text) to {prom_path}")
    if jsonl_path:
        write_jsonl(snapshot, jsonl_path)
        print(f"exported metrics (JSONL) to {jsonl_path}")


def cmd_recheck(args: argparse.Namespace) -> int:
    """Re-verify an exported trace file."""
    from repro.trace.export import load_trace

    with open(args.trace, encoding="utf-8") as handle:
        recorder = load_trace(handle)
    print(f"loaded {len(recorder)} events from {args.trace}")
    if args.timeline:
        from repro.trace.timeline import render_timeline

        print()
        print(render_timeline(recorder))
        print()
    reports = check_view_synchrony(recorder) + check_enriched_views(recorder)
    violations = 0
    for report in reports:
        print(f"  {report}")
        violations += len(report.violations)
    return 1 if violations else 0


def cmd_check(args: argparse.Namespace) -> int:
    failures = 0
    for seed in range(args.runs):
        generator = RandomFaultGenerator(
            n_sites=args.sites, seed=seed, duration=args.duration
        )
        cluster = make_cluster(args.runtime, args.sites, seed=seed)
        try:
            report = run_checked_workload(
                cluster, generator.generate(), tail=generator.settle_tail
            )
            settled = cluster.is_settled()
        finally:
            cluster.close()
        bad = [r for r in report.reports if not r.ok]
        status = "ok" if not bad and settled else "FAIL"
        print(f"seed {seed}: {status}")
        for report_ in bad:
            failures += 1
            print(f"    {report_.name}: {report_.violations[:3]}")
    print(f"\n{args.runs - failures}/{args.runs} seeds clean")
    return 1 if failures else 0


def cmd_realnet_demo(args: argparse.Namespace) -> int:
    """Partition + EVS merge over localhost TCP sockets."""
    from repro.realnet.demo import run_demo

    result = run_demo(
        n_sites=args.sites, seed=args.seed, scale=args.scale,
        timeout=args.timeout, codec=args.codec,
    )
    return 1 if result.property_violations else 0


def _parse_book(spec: str) -> dict[int, tuple[str, int]]:
    """Parse a ``site:host:port,...`` address book (proc-driver children)."""
    book: dict[int, tuple[str, int]] = {}
    for entry in spec.split(","):
        site, host, port = entry.rsplit(":", 2)
        book[int(site)] = (host, int(port))
    return book


def cmd_realnet_node(args: argparse.Namespace) -> int:
    """One standalone node of a fixed-port multi-process deployment."""
    import asyncio

    from repro.realnet.node import realnet_stack_config, run_standalone

    if args.supervised:
        from repro.realnet import wallclock
        from repro.realnet.procnode import run_supervised

        if not args.book:
            raise SystemExit("--supervised requires --book site:host:port,...")
        wallclock.run(
            run_supervised(
                args.site,
                _parse_book(args.book),
                app=args.app,
                scale=args.scale,
                loss_prob=args.loss,
                seed=args.seed,
                codec=args.codec,
                trace_level=args.trace_level,
                tracing=args.tracing,
            )
        )
        return 0
    book = {
        site: (args.host, args.base_port + site) for site in range(args.sites)
    }
    print(
        f"site {args.site} listening on {args.host}:{args.base_port + args.site} "
        f"(universe: {sorted(book)}); Ctrl-C to leave"
    )
    asyncio.run(
        run_standalone(
            args.site,
            book,
            incarnation=args.incarnation,
            stack_config=realnet_stack_config(args.scale),
            seed=args.seed,
            codec=args.codec,
            tracing=args.tracing,
            on_view=lambda view: print(f"  installed {view}"),
        )
    )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Boot a realnet store cluster and serve external clients."""
    cluster = make_cluster(
        "realnet", args.sites,
        app_factory=app_factory("store", args.sites),
        seed=args.seed, scale=args.scale, codec=args.codec,
    )
    try:
        if not cluster.settle(timeout=args.timeout):
            print("cluster failed to form a view; views:", file=sys.stderr)
            for site, view in cluster.views().items():
                print(f"  site {site}: {view}", file=sys.stderr)
            return 1
        book = cluster.cluster.address_book
        spec = ",".join(
            f"{site}:{host}:{port}" for site, (host, port) in sorted(book.items())
        )
        print(f"store cluster serving (sites={args.sites} codec={args.codec})")
        for site, (host, port) in sorted(book.items()):
            print(f"  site {site}: {host}:{port}")
        print(f"\ndrive it with:  repro load --book {spec}")
        if args.duration:
            cluster.run_for(args.duration)
        else:
            print("Ctrl-C to stop")
            try:
                while True:
                    cluster.run_for(3600.0)
            except KeyboardInterrupt:
                print("\nstopping")
        return 0
    finally:
        cluster.close()


def cmd_load(args: argparse.Namespace) -> int:
    """Open-loop load against an already-running store cluster."""
    from repro.workload.openloop import (
        LoadSpec,
        LoadTarget,
        OpenLoopLoad,
        slo_verdict,
    )

    if args.book:
        book = _parse_book(args.book)
    elif args.targets:
        book = {}
        for site, target in enumerate(args.targets):
            host, _, port = target.rpartition(":")
            book[site] = (host or args.host, int(port))
    else:
        book = {
            site: (args.host, args.base_port + site)
            for site in range(args.sites)
        }
    spec = LoadSpec(
        rate=args.rate,
        duration=args.duration,
        clients=args.clients,
        n_keys=args.keys,
        key_dist=args.dist,
        read_fraction=args.reads,
        history_fraction=args.history,
        read_mode=args.read_mode,
        seed=args.seed,
    )
    with LoadTarget(book) as target:
        print(
            f"offering {spec.rate:g} ops/s for {spec.duration:g}s "
            f"({spec.total_ops} ops, {spec.clients} connections, "
            f"{spec.key_dist} keys over {spec.n_keys}) at "
            + ", ".join(f"{h}:{p}" for h, p in book.values())
        )
        report = OpenLoopLoad(target, spec).run()
        verdict = slo_verdict(target, args.slo)
    _print_load_results(report, verdict, "s")
    if not report.completed:
        print("no operation completed: are the servers up?", file=sys.stderr)
        return 1
    return 0 if verdict.met or not args.slo_strict else 1


def cmd_obs_report(args: argparse.Namespace) -> int:
    """Figure-2 checked workload on either runtime + unified metrics report."""
    from repro.obs.report import render_report
    from repro.workload.clients import MulticastClient, QueryClient
    from repro.workload.scenarios import figure2_scenario

    cluster = make_cluster(
        args.runtime, args.sites,
        app_factory=app_factory("db", args.sites), seed=args.seed,
    )
    try:
        report = run_checked_workload(
            cluster,
            figure2_scenario(),
            client_factories=[
                lambda c: MulticastClient(c, interval=20.0),
                lambda c: QueryClient(c, interval=30.0),
            ],
        )
        help_texts = cluster.metrics.help_texts()
    finally:
        cluster.close()
    title = (
        f"observability report (figure-2 workload, runtime={args.runtime} "
        f"sites={args.sites} seed={args.seed})"
    )
    print(render_report(report.metrics, trace=report.trace, title=title))
    if args.metrics:
        from repro.obs.export import write_prometheus

        write_prometheus(report.metrics, args.metrics, help_texts)
        print(f"exported metrics (Prometheus text) to {args.metrics}")
    if args.jsonl:
        from repro.obs.export import write_jsonl

        write_jsonl(report.metrics, args.jsonl)
        print(f"exported metrics (JSONL) to {args.jsonl}")
    return 0 if report.ok else 1


def cmd_obs_watch(args: argparse.Namespace) -> int:
    """Live console over running realnet nodes' metric snapshots."""
    from repro.obs.watch import watch

    if args.targets:
        targets = []
        for spec in args.targets:
            host, _, port = spec.rpartition(":")
            targets.append((host or args.host, int(port)))
    else:
        targets = [
            (args.host, args.base_port + site) for site in range(args.sites)
        ]
    return watch(
        targets, interval=args.interval, count=args.count, codec=args.codec
    )


def _run_trace_demo(runtime: str, sites: int, seed: int) -> list:
    """One client put + one partition/heal on a traced store cluster.

    The acceptance scenario behind ``obs trace --demo``: boots the
    versioned store with ``tracing=True``, drives a put through the
    client service (the root-span entry point), forces a view change
    with a partition/heal, and returns the flight-recorder dumps — the
    same span taxonomy on either runtime.
    """
    cluster = make_cluster(
        runtime, sites, app_factory=app_factory("store", sites),
        seed=seed, tracing=True,
    )
    try:
        scale = cluster.time_scale
        if not cluster.settle(timeout=600.0 * scale, poll=10.0 * scale):
            raise SystemExit("traced demo cluster failed to settle")
        if runtime == "sim":
            from repro.client.sim import SimStoreClient

            client = SimStoreClient(cluster)
            reply = client.put("k", "v").reply
        else:
            from repro.client.client import DriverStoreClient

            client = DriverStoreClient(cluster)
            reply = client.put("k", "v")
            client.close()
        if reply is None or reply.status != "ok":
            raise SystemExit(f"traced demo put failed: {reply}")
        minority = max(1, sites // 3)
        left = list(range(sites - minority))
        right = list(range(sites - minority, sites))
        cluster.partition([left, right])
        cluster.settle(timeout=600.0 * scale, poll=10.0 * scale)
        cluster.heal()
        cluster.settle(timeout=600.0 * scale, poll=10.0 * scale)
        return [recorder.dump() for recorder in cluster.flight_recorders()]
    finally:
        cluster.close()


def cmd_obs_trace(args: argparse.Namespace) -> int:
    """Merge flight-recorder dumps into causal trees and print them."""
    import asyncio

    from repro.obs.trace_analysis import (
        build_trees,
        render_trees,
        write_perfetto,
    )
    from repro.obs.tracing import load_dump

    dumps: list = []
    if args.demo:
        dumps += _run_trace_demo(args.runtime, args.sites, args.seed)
    for path in args.files or ():
        dumps += [load_dump(path)]
    if args.targets:
        from repro.obs.watch import fetch_traces

        targets = []
        for spec in args.targets:
            host, _, port = spec.rpartition(":")
            targets.append((host or "127.0.0.1", int(port)))
        pulled = asyncio.run(fetch_traces(targets, codec=args.codec))
        for (host, port), dump in zip(targets, pulled):
            if dump is None:
                print(
                    f"note: {host}:{port} answered no trace "
                    "(down, or tracing off)", file=sys.stderr,
                )
        dumps += pulled
    if not args.demo and not args.files and not args.targets:
        raise SystemExit(
            "nothing to analyze: give HOST:PORT targets, --files dumps, "
            "or --demo"
        )
    trees = build_trees(dumps)
    if not trees:
        print("no spans found (is tracing enabled on the cluster?)")
        return 1
    print(render_trees(trees, limit=args.limit))
    if args.perfetto:
        write_perfetto(args.perfetto, trees)
        print(f"\nexported Perfetto trace-event JSON to {args.perfetto}")
    return 0


def _fuzz_config(args: argparse.Namespace, **overrides):
    """FuzzConfig from the shared ``fuzz`` argparse surface."""
    from repro.fuzz.engine import FuzzConfig

    iterations = args.iterations
    if iterations is None:
        # No explicit cap: bounded by the time budget if one was given,
        # else a small default so a bare `repro fuzz run` terminates.
        iterations = None if args.time_budget else 25
    checkers = tuple(args.checkers.split(",")) if args.checkers else None
    kwargs = dict(
        runtime=args.runtime,
        n_sites=args.sites,
        app=args.app,
        seed=args.seed,
        loss_prob=args.loss,
        iterations=iterations,
        time_budget_s=args.time_budget,
        checkers=checkers,
        planted_bug=args.plant,
        asymmetric=args.asymmetric,
        shrink_budget=args.shrink_budget,
        auto_shrink=not args.no_shrink,
    )
    kwargs.update(overrides)
    return FuzzConfig(**kwargs)


def cmd_fuzz_run(args: argparse.Namespace) -> int:
    """Coverage-guided campaign; exits non-zero if any checker fired."""
    from repro.fuzz.corpus import Corpus
    from repro.fuzz.engine import FuzzEngine

    config = _fuzz_config(args)
    engine = FuzzEngine(config, corpus=Corpus(args.corpus), log=print)
    stats = engine.run()
    table = Table(
        f"fuzz campaign (runtime={config.runtime} sites={config.n_sites} "
        f"app={config.app} seed={config.seed})",
        ["metric", "value"],
    )
    table.add("iterations", stats.iterations)
    table.add("wall seconds", f"{stats.wall_s:.1f}")
    table.add("coverage features", stats.features)
    table.add("novel runs", stats.novel)
    table.add("failing runs", stats.failures)
    table.add("shrunk reproducers", len(stats.shrunk))
    table.add("corpus entries", len(engine.corpus.entries))
    table.show()
    if args.corpus:
        print(f"corpus saved under {args.corpus}")
    _export_metrics(
        engine.metrics.snapshot(source="fuzz"),
        args.metrics, args.metrics_jsonl,
    )
    if stats.first_failure is not None:
        print("\nfirst failure:")
        for violation in stats.first_failure.violations[:5]:
            print(f"  {violation}")
    return 1 if stats.failures else 0


def cmd_fuzz_replay(args: argparse.Namespace) -> int:
    """Replay a corpus entry; exits 0 iff its verdict reproduces."""
    from repro.fuzz.corpus import CorpusEntry
    from repro.fuzz.engine import FuzzEngine

    entry = CorpusEntry.load(args.entry)
    engine = FuzzEngine(_fuzz_config(args, iterations=0))
    ok, executed = engine.replay(entry)
    expected = ",".join(entry.failing_checkers) or "clean"
    got = ",".join(executed.failing_checkers) or "clean"
    print(f"entry {entry.entry_id}: expected [{expected}] got [{got}]")
    for violation in executed.violations[:5]:
        print(f"  {violation}")
    print("reproduced" if ok else "DID NOT reproduce")
    return 0 if ok else 1


def cmd_fuzz_shrink(args: argparse.Namespace) -> int:
    """Shrink a failing entry to a minimal reproducer."""
    from repro.fuzz.corpus import CorpusEntry
    from repro.fuzz.engine import FuzzEngine

    entry = CorpusEntry.load(args.entry)
    engine = FuzzEngine(_fuzz_config(args, iterations=0))
    if not entry.failing_checkers:
        print("entry records no failing checkers; executing it first...")
        entry = engine.execute_entry(entry)
        if not entry.failing_checkers:
            print("entry does not fail: nothing to shrink")
            return 1
    before = len(entry.schedule.actions)
    shrunk, result = engine.shrink(entry, max_oracle_calls=args.shrink_budget)
    out = args.out or args.entry.replace(".json", "") + ".min.json"
    shrunk.save(out)
    print(
        f"shrunk {before} -> {len(shrunk.schedule.actions)} actions "
        f"in {result.oracle_calls} replays; wrote {out}"
    )
    for action in shrunk.schedule.actions:
        print(f"  {action!r}")
    return 0


def cmd_fuzz_corpus(args: argparse.Namespace) -> int:
    """Show what a corpus directory contains."""
    from repro.fuzz.corpus import Corpus

    corpus = Corpus(args.corpus)
    stats = corpus.stats()
    table = Table(f"fuzz corpus ({args.corpus})", ["metric", "value"])
    table.add("entries", stats["entries"])
    table.add("coverage features", stats["features"])
    table.add("failing entries", stats["failing"])
    for kind, count in sorted(stats["kinds"].items()):
        table.add(f"  kind={kind}", count)
    table.show()
    if corpus.failing:
        print("\nfailing entries:")
        for entry in corpus.failing:
            checkers = ",".join(entry.failing_checkers)
            print(
                f"  {entry.entry_id}: {checkers} "
                f"({len(entry.schedule.actions)} actions"
                + (f", bug={entry.planted_bug}" if entry.planted_bug else "")
                + ")"
            )
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    table = Table("paper experiments (pytest benchmarks/ --benchmark-only)",
                  ["id", "what it reproduces", "benchmark"])
    for exp_id, description, bench in EXPERIMENTS:
        table.add(exp_id, description, bench)
    table.show()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'On Programming with View Synchrony' (ICDCS 1996)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="bootstrap / partition / heal walkthrough")
    demo.add_argument("--sites", type=int, default=5)
    demo.add_argument("--seed", type=int, default=0)
    demo.set_defaults(func=cmd_demo)

    run = sub.add_parser("run", help="run a random fault schedule")
    run.add_argument("--runtime", choices=RUNTIMES, default="sim",
                     help="backend: deterministic simulator (default) or "
                          "real loopback TCP sockets")
    run.add_argument("--sites", type=int, default=5)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--duration", type=float, default=400.0)
    run.add_argument("--loss", type=float, default=0.0)
    run.add_argument("--app", choices=APP_NAMES, default="none")
    run.add_argument("--asymmetric", action="store_true",
                     help="include one-way link cuts in the generated "
                          "schedule (asymmetric failures)")
    run.add_argument("--no-faults", action="store_true",
                     help="drop the generated fault schedule: a fault-free "
                          "run of --duration units (throughput/latency "
                          "measurement mode, usually with --client-rate)")
    run.add_argument("--scale", type=float, default=1.0,
                     help="realnet only: stretch protocol timers (and the "
                          "schedule with them) by this factor")
    run.add_argument("--codec", choices=("bin", "json"), default="bin",
                     help="realnet runtimes: preferred wire codec")
    run.add_argument("--fd-mode", choices=("heartbeat", "gossip"), default=None,
                     help="failure-detection plane (default: the stack "
                          "profile's choice, all-to-all heartbeats); "
                          "sim and realnet runtimes")
    run.add_argument("--gossip-fanout", type=int, default=None,
                     help="digest fanout for --fd-mode gossip "
                          "(see docs/scaling.md for the timeout math)")
    run.add_argument("--tracing", action="store_true",
                     help="causal tracing + per-node flight recorders "
                          "(see docs/observability.md)")
    run.add_argument("--client-rate", type=float, default=0.0,
                     metavar="OPS_PER_UNIT",
                     help="offer open-loop client load against the store "
                          "app at this rate (store ops per scenario unit; "
                          "~100 units/s of wall time on realnet).  Implies "
                          "--app store and runs the AckedWriteLoss checker "
                          "over the merged trace")
    run.add_argument("--client-count", type=int, default=8,
                     help="client connections/identities for --client-rate")
    run.add_argument("--client-keys", type=int, default=1_000_000,
                     help="keyspace size for --client-rate")
    run.add_argument("--client-dist", choices=("zipfian", "uniform"),
                     default="zipfian",
                     help="key popularity distribution for --client-rate")
    run.add_argument("--client-reads", type=float, default=0.9,
                     help="fraction of client ops that are gets "
                          "(the rest are puts)")
    run.add_argument("--client-read-mode", choices=("any", "leader"),
                     default="any",
                     help="serve gets from any replica or the leader only")
    run.add_argument("--client-slo", type=float, default=50.0,
                     help="p99 latency target in scenario units "
                          "(for the SLO verdict line)")
    run.add_argument("--export", metavar="FILE", default=None,
                     help="write the trace as JSON lines to FILE")
    run.add_argument("--metrics", metavar="FILE", default=None,
                     help="write the run's metrics snapshot in Prometheus "
                          "text format to FILE")
    run.add_argument("--metrics-jsonl", metavar="FILE", default=None,
                     help="write the run's metrics snapshot as JSONL to FILE")
    run.set_defaults(func=cmd_run)

    recheck = sub.add_parser("recheck", help="verify an exported trace file")
    recheck.add_argument("trace", help="JSON-lines trace produced by run --export")
    recheck.add_argument("--timeline", action="store_true",
                         help="render the per-process event timeline")
    recheck.set_defaults(func=cmd_recheck)

    check = sub.add_parser("check", help="property soak test over many seeds")
    check.add_argument("--runtime", choices=RUNTIMES, default="sim",
                       help="backend to soak (realnet runs wall-clock: "
                            "keep --runs small)")
    check.add_argument("--sites", type=int, default=5)
    check.add_argument("--runs", type=int, default=10)
    check.add_argument("--duration", type=float, default=300.0)
    check.set_defaults(func=cmd_check)

    realnet = sub.add_parser(
        "realnet", help="run the stacks over real TCP sockets"
    )
    realnet_sub = realnet.add_subparsers(dest="realnet_command")
    rdemo = realnet_sub.add_parser(
        "demo", help="partition + EVS merge over localhost sockets (default)"
    )
    for p in (realnet, rdemo):
        p.add_argument("--sites", type=int, default=3)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--scale", type=float, default=1.0,
                       help="stretch every protocol timer by this factor")
        p.add_argument("--timeout", type=float, default=30.0,
                       help="hard wall-clock budget per phase (seconds)")
        p.add_argument("--codec", choices=("bin", "json"), default="bin",
                       help="preferred wire codec (negotiated per link; "
                            "json is the debug/compat mode)")
        p.set_defaults(func=cmd_realnet_demo)
    rnode = realnet_sub.add_parser(
        "node", help="one standalone node of a fixed-port deployment"
    )
    rnode.add_argument("--site", type=int, required=True)
    rnode.add_argument("--sites", type=int, default=3,
                       help="universe size; ports are base-port..base-port+sites-1")
    rnode.add_argument("--base-port", type=int, default=7400)
    rnode.add_argument("--host", default="127.0.0.1")
    rnode.add_argument("--incarnation", type=int, default=0,
                       help="bump after a crash so the site rejoins fresh")
    rnode.add_argument("--seed", type=int, default=0)
    rnode.add_argument("--scale", type=float, default=1.0)
    rnode.add_argument("--codec", choices=("bin", "json"), default="bin",
                       help="preferred wire codec (negotiated per link)")
    rnode.add_argument("--supervised", action="store_true",
                       help="run under a ProcRealClusterDriver parent: serve "
                            "control ops and wait for the boot op instead of "
                            "starting the stack immediately")
    rnode.add_argument("--book", default=None, metavar="SITE:HOST:PORT,...",
                       help="explicit address book (supervised mode); "
                            "overrides --sites/--base-port")
    rnode.add_argument("--app", choices=APP_NAMES, default="none",
                       help="supervised mode: application to run on the stack")
    rnode.add_argument("--loss", type=float, default=0.0,
                       help="supervised mode: simulated send loss probability")
    rnode.add_argument("--trace-level", default="full",
                       help="supervised mode: trace recorder level")
    rnode.add_argument("--tracing", action="store_true",
                       help="record causal spans into the flight recorder "
                            "(served over the obs frame)")
    rnode.set_defaults(func=cmd_realnet_node)

    serve = sub.add_parser(
        "serve",
        help="boot a realnet store cluster and serve external clients "
             "(drive it with 'repro load' from another terminal)",
    )
    serve.add_argument("--sites", type=int, default=3)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--scale", type=float, default=1.0,
                       help="stretch every protocol timer by this factor")
    serve.add_argument("--codec", choices=("bin", "json"), default="bin",
                       help="preferred wire codec (negotiated per link)")
    serve.add_argument("--timeout", type=float, default=30.0,
                       help="wall seconds to wait for the initial view")
    serve.add_argument("--duration", type=float, default=0.0,
                       help="serve for this many wall seconds "
                            "(0 = until Ctrl-C)")
    serve.set_defaults(func=cmd_serve)

    load = sub.add_parser(
        "load",
        help="open-loop client load against a running store cluster "
             "(see 'repro serve')",
    )
    load.add_argument("targets", nargs="*", metavar="HOST:PORT",
                      help="server sockets, one per site in site order; "
                           "default derives host:base-port..+sites-1")
    load.add_argument("--book", default=None, metavar="SITE:HOST:PORT,...",
                      help="explicit site address book (the line "
                           "'repro serve' prints); overrides targets")
    load.add_argument("--host", default="127.0.0.1")
    load.add_argument("--base-port", type=int, default=7400)
    load.add_argument("--sites", type=int, default=3)
    load.add_argument("--rate", type=float, default=200.0,
                      help="offered store ops per wall second")
    load.add_argument("--duration", type=float, default=10.0,
                      help="wall seconds of offered load")
    load.add_argument("--clients", type=int, default=8,
                      help="concurrent client connections/identities")
    load.add_argument("--keys", type=int, default=1_000_000,
                      help="keyspace size")
    load.add_argument("--dist", choices=("zipfian", "uniform"),
                      default="zipfian", help="key popularity distribution")
    load.add_argument("--reads", type=float, default=0.9,
                      help="fraction of ops that are gets")
    load.add_argument("--history", type=float, default=0.0,
                      help="fraction of ops that are history reads")
    load.add_argument("--read-mode", choices=("any", "leader"), default="any",
                      help="serve gets from any replica or the leader only")
    load.add_argument("--seed", type=int, default=0)
    load.add_argument("--slo", type=float, default=1.0,
                      help="p99 latency target in wall seconds")
    load.add_argument("--slo-strict", action="store_true",
                      help="exit non-zero when the p99 target is missed")
    load.set_defaults(func=cmd_load)

    obs = sub.add_parser(
        "obs", help="observability: unified metrics report / live watch"
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    oreport = obs_sub.add_parser(
        "report",
        help="run the figure-2 checked workload and print the unified "
             "metrics report (live registry vs trace aggregates)",
    )
    oreport.add_argument("--runtime", choices=("sim", "realnet"), default="sim",
                         help="realnet-proc is excluded: the report's query "
                              "client needs in-process application access")
    oreport.add_argument("--sites", type=int, default=6)
    oreport.add_argument("--seed", type=int, default=7)
    oreport.add_argument("--metrics", metavar="FILE", default=None,
                         help="also write the snapshot in Prometheus text "
                              "format to FILE")
    oreport.add_argument("--jsonl", metavar="FILE", default=None,
                         help="also write the snapshot as JSONL to FILE")
    oreport.set_defaults(func=cmd_obs_report)
    owatch = obs_sub.add_parser(
        "watch",
        help="poll running realnet nodes for live metric snapshots "
             "(over their normal listening sockets)",
    )
    owatch.add_argument("targets", nargs="*", metavar="HOST:PORT",
                        help="nodes to poll; default derives "
                             "host:base-port..base-port+sites-1")
    owatch.add_argument("--host", default="127.0.0.1")
    owatch.add_argument("--base-port", type=int, default=7400)
    owatch.add_argument("--sites", type=int, default=3)
    owatch.add_argument("--interval", type=float, default=2.0,
                        help="seconds between polls")
    owatch.add_argument("--count", type=int, default=0,
                        help="stop after this many polls (0 = until Ctrl-C)")
    owatch.add_argument("--codec", choices=("bin", "json"), default="bin",
                        help="preferred wire codec for the obs frames")
    owatch.set_defaults(func=cmd_obs_watch)
    otrace = obs_sub.add_parser(
        "trace",
        help="reconstruct causal trees from flight-recorder dumps "
             "(live node pulls, dump files, or a built-in demo run) "
             "with critical paths and Perfetto export",
    )
    otrace.add_argument("targets", nargs="*", metavar="HOST:PORT",
                        help="running traced nodes to pull rings from")
    otrace.add_argument("--files", nargs="+", metavar="FILE", default=None,
                        help="flight-recorder dump files (repro-flight-v1 "
                             "JSON, as written on checker violations)")
    otrace.add_argument("--demo", action="store_true",
                        help="run the acceptance scenario (one client put "
                             "+ one partition/heal view change) on a traced "
                             "cluster and analyze its rings")
    otrace.add_argument("--runtime", choices=("sim", "realnet"), default="sim",
                        help="--demo backend")
    otrace.add_argument("--sites", type=int, default=3, help="--demo size")
    otrace.add_argument("--seed", type=int, default=7)
    otrace.add_argument("--limit", type=int, default=0,
                        help="print only the first N trees (0 = all)")
    otrace.add_argument("--perfetto", metavar="FILE", default=None,
                        help="also export Chrome/Perfetto trace-event JSON")
    otrace.add_argument("--codec", choices=("bin", "json"), default="bin",
                        help="preferred wire codec for live pulls")
    otrace.set_defaults(func=cmd_obs_trace)

    fuzz = sub.add_parser(
        "fuzz", help="coverage-guided protocol fuzzer (see docs/fuzzing.md)"
    )
    fuzz_sub = fuzz.add_subparsers(dest="fuzz_command", required=True)

    def _fuzz_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--runtime", choices=RUNTIMES, default="sim",
                       help="backend the runs execute on")
        p.add_argument("--sites", type=int, default=5)
        p.add_argument("--app", choices=APP_NAMES, default="file",
                       help="application under test (file exercises "
                            "versioned state transfer)")
        p.add_argument("--seed", type=int, default=0,
                        help="campaign seed: same seed, same schedules")
        p.add_argument("--loss", type=float, default=0.0)
        p.add_argument("--iterations", type=int, default=None,
                       help="iteration budget (default 25, or unbounded "
                            "when --time-budget is given)")
        p.add_argument("--time-budget", type=float, default=None,
                       metavar="SECONDS", help="wall-clock budget")
        p.add_argument("--checkers", default=None, metavar="NAME[,NAME...]",
                       help="pluggable checkers to run (registry names or "
                            "module:attr specs; default: all registered)")
        p.add_argument("--plant", default=None, metavar="BUG",
                       help="arm a planted protocol bug (test-only hook; "
                            "see repro.fuzz.bugs.KNOWN_BUGS)")
        p.add_argument("--asymmetric", action="store_true",
                       help="generate one-way link cuts too")
        p.add_argument("--shrink-budget", type=int, default=80,
                       help="replay budget per automatic shrink")
        p.add_argument("--no-shrink", action="store_true",
                       help="collect failures without shrinking them")

    frun = fuzz_sub.add_parser(
        "run", help="fuzz until the iteration/time budget is spent"
    )
    _fuzz_common(frun)
    frun.add_argument("--corpus", default=None, metavar="DIR",
                      help="directory to persist/resume the corpus")
    frun.add_argument("--metrics", metavar="FILE", default=None,
                      help="write campaign metrics (Prometheus text) to FILE")
    frun.add_argument("--metrics-jsonl", metavar="FILE", default=None,
                      help="write campaign metrics as JSONL to FILE")
    frun.set_defaults(func=cmd_fuzz_run)

    freplay = fuzz_sub.add_parser(
        "replay", help="re-run one corpus entry and verify its verdict"
    )
    freplay.add_argument("entry", help="corpus entry JSON file")
    _fuzz_common(freplay)
    freplay.set_defaults(func=cmd_fuzz_replay)

    fshrink = fuzz_sub.add_parser(
        "shrink", help="minimize a failing entry to a reproducer"
    )
    fshrink.add_argument("entry", help="corpus entry JSON file")
    fshrink.add_argument("-o", "--out", default=None,
                         help="output file (default: <entry>.min.json)")
    _fuzz_common(fshrink)
    fshrink.set_defaults(func=cmd_fuzz_shrink)

    fcorpus = fuzz_sub.add_parser(
        "corpus", help="summarize a corpus directory"
    )
    fcorpus.add_argument("corpus", help="corpus directory")
    fcorpus.set_defaults(func=cmd_fuzz_corpus)

    experiments = sub.add_parser("experiments", help="list paper experiments")
    experiments.set_defaults(func=cmd_experiments)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
