"""State creation after a total failure (Section 4, citing Skeen).

    "Identifying which local state is to be used for recreation of the
    others may require determining the last process to fail."

Five replicas hold a counter.  They crash one by one — the last one to
die has seen the most updates.  Then only a *quorum* recovers.  Two
policies:

* the default policy recreates from the best state among the recovered
  quorum — available sooner, but the last process's updates are lost;
* the Skeen-safe policy (``creation_requires_all_sites=True``) refuses
  to recreate until every site is back, then provably recovers the
  freshest state.

Run:  python examples/total_failure_recovery.py
"""

from __future__ import annotations

from repro import Cluster
from repro.core.group_object import GroupObject
from repro.core.mode_functions import QuorumModeFunction
from repro.core.modes import Mode


class Counter(GroupObject):
    """A replicated counter persisted to stable storage."""

    def __init__(self, require_all_sites: bool) -> None:
        super().__init__(
            QuorumModeFunction.uniform(range(5)),
            creation_requires_all_sites=require_all_sites,
        )
        self.value = 0

    def bind(self, stack) -> None:
        super().bind(stack)
        self.value = stack.storage.read("counter", 0)

    def increment(self) -> None:
        self.submit_op(("inc", 1))

    def snapshot_state(self):
        return self.value

    def adopt_state(self, state):
        self.value = state
        self.stack.storage.write("counter", self.value)

    def apply_op(self, sender, op, msg_id):
        self.value += op[1]
        self.stack.storage.write("counter", self.value)


def scenario(require_all: bool) -> None:
    label = "Skeen-safe" if require_all else "quorum-eager"
    print(f"\n=== {label} creation policy ===")
    cluster = Cluster(5, app_factory=lambda pid: Counter(require_all))
    cluster.settle()
    cluster.run_for(200)
    cluster.apps[0].increment()
    cluster.apps[0].increment()
    cluster.run_for(30)
    print(f"counter replicated at 2 everywhere: "
          f"{[cluster.apps[s].value for s in range(5)]}")

    print("staggered total failure: site 4 dies last, after one more increment")
    for site in (0, 1, 2, 3):
        cluster.crash(site)
    cluster.run_for(20)
    cluster.apps[4].value += 1  # a local persisted update nobody else saw
    cluster.apps[4].stack.storage.write("counter", cluster.apps[4].value)
    cluster.crash(4)
    cluster.run_for(50)

    print("only a quorum (sites 0,1,2) recovers ...")
    for site in (0, 1, 2):
        cluster.recover(site)
    cluster.settle(timeout=700)
    cluster.run_for(300)
    modes = [str(cluster.apps[s].mode) for s in (0, 1, 2)]
    if require_all:
        print(f"  modes: {modes}  (creation DEFERRED: waiting for site 4)")
    else:
        print(f"  modes: {modes}  counter={cluster.apps[0].value} "
              f"(the last increment is LOST)")

    print("... then the last-to-fail site recovers")
    cluster.recover(3)
    cluster.recover(4)
    cluster.settle(timeout=700)
    cluster.run_for(400)
    values = [cluster.apps[s].value for s in range(5)]
    print(f"  final counter everywhere: {values}")
    if require_all:
        assert all(v == 3 for v in values), values
        print("  the freshest state (3) was recovered.")


def main() -> None:
    scenario(require_all=False)
    scenario(require_all=True)


if __name__ == "__main__":
    main()
