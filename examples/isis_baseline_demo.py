"""The Isis-style baseline (Section 5) in action.

Shows the three design decisions the paper analyses — one-member-at-a-
time view growth, the primary-partition rule, and the blocking state
transfer tool — and the costs each one carries.

Run:  python examples/isis_baseline_demo.py
"""

from __future__ import annotations

from repro import Cluster, ClusterConfig
from repro.apps import ReplicatedFile
from repro.isis import isis_stack_config
from repro.trace.events import ViewInstallEvent


def main() -> None:
    votes = {site: 1 for site in range(5)}
    config = ClusterConfig(
        stack=isis_stack_config(blocking_transfer=True, size_of=lambda app: 20)
    )
    cluster = Cluster(
        5, app_factory=lambda pid: ReplicatedFile(votes), config=config
    )

    print("-- one-at-a-time growth: watch the primary's views --")
    cluster.run_for(900)
    for event in cluster.recorder.view_sequence(cluster.stack_at(0).pid):
        members = ",".join(str(p) for p in sorted(event.members))
        print(f"   t={event.time:7.1f}  {event.view_id}: {{{members}}}")
    print("   (five processes => five view changes; the partitionable")
    print("    model in examples/quickstart.py needs exactly one)")

    tool = cluster.stack_at(0).membership.transfer_tool
    print(f"\n-- blocking transfers: {tool.transfers_completed} joins, "
          f"{tool.blocked_time:.0f} time units of blocked installs --")

    print("\n-- the primary-partition rule --")
    cluster.apps[0].write("ledger", "balance=100")
    cluster.run_for(40)
    cluster.partition([[0, 1, 2], [3, 4]])
    cluster.run_for(300)
    majority_view = cluster.stack_at(0).view
    minority_view = cluster.stack_at(3).view
    print(f"   majority moved on:  {majority_view}")
    print(f"   minority is FROZEN: {minority_view} (no new views, ever)")
    handle = cluster.apps[0].write("ledger", "balance=75")
    cluster.run_for(40)
    print(f"   majority write: {handle.status}")
    print("   => state merging can never arise (E7), but the minority")
    print("      serves nothing until the partition heals (E11)")

    cluster.heal()
    cluster.run_for(600)
    print(f"\n-- healed: {cluster.stack_at(3).view} --")
    print(f"   minority reads now see {cluster.apps[3].read('ledger')!r}")


if __name__ == "__main__":
    main()
