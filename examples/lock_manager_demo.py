"""The Section 6.2 example: a majority write lock, and WHY enriched
views matter when classifying what happened after a view change.

The demo provokes the paper's scenario (i): a process in the minority
(R-mode) sees a new majority view arrive.  With flat views it cannot
tell a state *transfer* from a state *creation*; with the enriched view
it reads the answer off the subview structure.

Run:  python examples/lock_manager_demo.py
"""

from __future__ import annotations

from repro import Cluster
from repro.apps import MajorityLockManager
from repro.core.classify import classify_enriched, classify_flat

N = 5


def main() -> None:
    cluster = Cluster(N, app_factory=lambda pid: MajorityLockManager(range(N)))
    cluster.settle()
    cluster.run_for(200)

    print("-- the lock works in the full view --")
    handle = cluster.apps[2].acquire()
    cluster.run_for(30)
    print(f"site 2 acquire: {handle.status}")
    print(f"everyone agrees the holder is {cluster.apps[0].holder}")
    blocked = cluster.apps[3].acquire()
    cluster.run_for(30)
    print(f"site 3 acquire while held: {blocked.status}")
    cluster.apps[2].release()
    cluster.run_for(30)

    print("\n-- partition {0,1,2} | {3,4}: only the majority serves --")
    cluster.partition([[0, 1, 2], [3, 4]])
    cluster.settle()
    cluster.run_for(150)
    got = cluster.apps[0].acquire()
    denied = cluster.apps[3].acquire()
    cluster.run_for(30)
    print(f"majority acquire: {got.status}; minority acquire: {denied.status}")
    print(f"minority mode: {cluster.apps[3].mode} (reads of lock state only)")

    print("\n-- repair: what can site 3 conclude about the new view? --")
    cluster.heal()
    cluster.settle()
    eview = cluster.stack_at(3).eview
    flat = classify_flat("R", len(eview.members), exclusive_full=True)
    fn = cluster.apps[3].automaton.mode_function
    verdict = classify_enriched(eview, fn.n_capable)
    print(f"flat-view reasoning:     candidates = {sorted(flat)}  (ambiguous!)")
    donors = ", ".join(str(sv) for sv in verdict.donor_subviews)
    print(f"enriched-view reasoning: {verdict.label}  (donor subview: {donors})")
    print("site 3 knows exactly whom to ask for the lock state.")

    cluster.run_for(300)
    print(f"\nafter settlement, modes: "
          + " ".join(f"{s}:{cluster.apps[s].mode}" for s in range(N)))
    print(f"lock holder everywhere: "
          + " ".join(str(cluster.apps[s].holder) for s in range(N)))
    assert verdict.label == "transfer"
    assert len(flat) > 1


if __name__ == "__main__":
    main()
