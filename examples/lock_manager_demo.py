"""The Section 6.2 example: a majority write lock, and WHY enriched
views matter when classifying what happened after a view change.

The demo provokes the paper's scenario (i): a process in the minority
(R-mode) sees a new majority view arrive.  With flat views it cannot
tell a state *transfer* from a state *creation*; with the enriched view
it reads the answer off the subview structure.

Run:  python examples/lock_manager_demo.py
"""

from __future__ import annotations

from repro import Cluster
from repro.apps import MajorityLockManager
from repro.core.classify import classify_enriched, classify_flat
from repro.evs.eview import EView, EViewStructure, Subview, SvSet
from repro.gms.view import View

N = 5


def install_time_eview(cluster: Cluster, site: int) -> EView:
    """The e-view of ``site`` as delivered with its current view (seq 0),
    reconstructed from the trace — i.e. before any application-requested
    merges mutated the structure."""
    stack = cluster.stack_at(site)
    vid = stack.current_view_id()
    ev0 = next(
        e
        for e in cluster.recorder.eview_changes()
        if e.pid == stack.pid and e.view_id == vid and e.eview_seq == 0
    )
    structure = EViewStructure(
        tuple(Subview(sid, members) for sid, members in ev0.subviews),
        tuple(SvSet(ssid, sids) for ssid, sids in ev0.svsets),
    )
    return EView(View(vid, stack.view.members), structure, seq=0)


def main() -> None:
    cluster = Cluster(N, app_factory=lambda pid: MajorityLockManager(range(N)))
    cluster.settle()
    cluster.run_for(200)

    print("-- the lock works in the full view --")
    handle = cluster.apps[2].acquire()
    cluster.run_for(30)
    print(f"site 2 acquire: {handle.status}")
    print(f"everyone agrees the holder is {cluster.apps[0].holder}")
    blocked = cluster.apps[3].acquire()
    cluster.run_for(30)
    print(f"site 3 acquire while held: {blocked.status}")
    cluster.apps[2].release()
    cluster.run_for(30)

    print("\n-- partition {0,1,2} | {3,4}: only the majority serves --")
    cluster.partition([[0, 1, 2], [3, 4]])
    cluster.settle()
    cluster.run_for(150)
    got = cluster.apps[0].acquire()
    denied = cluster.apps[3].acquire()
    cluster.run_for(30)
    print(f"majority acquire: {got.status}; minority acquire: {denied.status}")
    print(f"minority mode: {cluster.apps[3].mode} (reads of lock state only)")

    print("\n-- repair: what can site 3 conclude about the new view? --")
    cluster.heal()
    cluster.settle()
    # Classify the structure *as installed* (seq 0): that is the cut at
    # which the paper's process reasons.  The live e-view may already
    # show the post-settlement merge by the time settle() returns.
    eview = install_time_eview(cluster, 3)
    flat = classify_flat("R", len(eview.members), exclusive_full=True)
    fn = cluster.apps[3].automaton.mode_function
    verdict = classify_enriched(eview, fn.n_capable)
    print(f"flat-view reasoning:     candidates = {sorted(flat)}  (ambiguous!)")
    donors = ", ".join(str(sv) for sv in verdict.donor_subviews)
    print(f"enriched-view reasoning: {verdict.label}  (donor subview: {donors})")
    print("site 3 knows exactly whom to ask for the lock state.")

    cluster.run_for(300)
    print(f"\nafter settlement, modes: "
          + " ".join(f"{s}:{cluster.apps[s].mode}" for s in range(N)))
    print(f"lock holder everywhere: "
          + " ".join(str(cluster.apps[s].holder) for s in range(N)))
    assert verdict.label == "transfer"
    assert len(flat) > 1


if __name__ == "__main__":
    main()
