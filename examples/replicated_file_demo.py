"""The paper's first example object (Section 3): a quorum-replicated file.

Walks through the whole lifecycle the paper uses to motivate the three
execution modes:

* N-mode — a quorum view serves reads AND writes;
* R-mode — a minority partition still serves (possibly stale) reads;
* S-mode — after the repair, the minority transfers state before
  resuming; the framework drives the Section 6.2 settlement protocol;
* state creation — after a total failure, the group recreates the file
  from stable storage, using last-process-to-fail selection.

Run:  python examples/replicated_file_demo.py
"""

from __future__ import annotations

from repro import Cluster
from repro.apps import ReplicatedFile

N = 5
VOTES = {site: 1 for site in range(N)}


def modes(cluster: Cluster) -> str:
    return " ".join(
        f"{site}:{cluster.apps[site].mode}"
        for site in sorted(cluster.apps)
        if cluster.stacks[site].alive
    )


def main() -> None:
    cluster = Cluster(N, app_factory=lambda pid: ReplicatedFile(VOTES))
    cluster.settle()
    cluster.run_for(150)
    print(f"group formed; modes: {modes(cluster)}")

    print("\n-- write in the full view --")
    handle = cluster.apps[0].write("report.txt", "draft-1")
    cluster.run_for(30)
    print(f"write status: {handle.status} ({handle.acked_votes} votes)")
    print(f"read at site 4: {cluster.apps[4].read('report.txt')!r}")

    print("\n-- partition {0,1,2} | {3,4} --")
    cluster.partition([[0, 1, 2], [3, 4]])
    cluster.settle()
    cluster.run_for(150)
    print(f"modes: {modes(cluster)}   (minority dropped to R: reads only)")

    updated = cluster.apps[1].write("report.txt", "draft-2")
    cluster.run_for(30)
    print(f"majority write: {updated.status}")
    print(f"minority stale read at 3: {cluster.apps[3].read('report.txt')!r}")
    rejected = cluster.apps[3].write("report.txt", "rogue")
    print(f"minority write attempt: {rejected.status}")

    print("\n-- repair: state transfer brings the minority up to date --")
    cluster.heal()
    cluster.settle()
    cluster.run_for(300)
    print(f"modes: {modes(cluster)}")
    for site in range(N):
        print(f"  site {site} reads {cluster.apps[site].read('report.txt')!r}")

    print("\n-- total failure and recovery: state creation --")
    for site in range(N):
        cluster.crash(site)
    cluster.run_for(80)
    for site in range(N):
        cluster.recover(site)
    cluster.settle(timeout=700)
    cluster.run_for(350)
    print(f"modes: {modes(cluster)}")
    value = cluster.apps[0].read("report.txt")
    print(f"file recreated from stable storage: {value!r}")
    assert value == "draft-2"
    print("\nSingle-copy write semantics held end to end.")


if __name__ == "__main__":
    main()
