"""A tour of enriched view synchrony (Section 6): subviews, sv-sets,
the two merge calls, and the guarantees around them.

Replays the structures of the paper's Figure 2 (preservation across a
partition/merge) and Figure 3 (totally ordered e-view changes within a
view), narrating each step.

Run:  python examples/enriched_views_tour.py
"""

from __future__ import annotations

from repro import Cluster
from repro.trace.checks import check_enriched_views


def show(cluster: Cluster, label: str, site: int = 0) -> None:
    eview = cluster.stack_at(site).eview
    subviews = " ".join(
        "{" + ",".join(str(p) for p in sorted(sv.members)) + "}"
        for sv in sorted(eview.structure.subviews, key=lambda s: min(s.members))
    )
    print(f"{label}")
    print(f"   view {eview.view_id} seq={eview.seq}: "
          f"{len(eview.structure.svsets)} sv-set(s), subviews {subviews}")


def main() -> None:
    cluster = Cluster(6)
    cluster.settle()
    lead = cluster.stack_at(0)
    show(cluster, "fresh group: every process is its own subview & sv-set")

    print("\n== Figure 3: application-driven merges within one view ==")
    structure = lead.eview.structure
    lead.sv_set_merge([ss.ssid for ss in structure.svsets][:4])
    cluster.run_for(15)
    show(cluster, "after SV-SetMerge of four sv-sets (e-view change #1)")

    structure = lead.eview.structure
    ordered = sorted(structure.subviews, key=lambda sv: min(sv.members))
    lead.subview_merge([sv.sid for sv in ordered[:2]])
    cluster.run_for(15)
    show(cluster, "after SubviewMerge of {p0},{p1} (e-view change #2)")

    lead.subview_merge([sv.sid for sv in
                        sorted(lead.eview.structure.subviews,
                               key=lambda sv: min(sv.members))[1:3]])
    cluster.run_for(15)
    show(cluster, "after SubviewMerge of {p2},{p3} (e-view change #3)")

    print("\n   a SubviewMerge across different sv-sets has NO effect:")
    structure = lead.eview.structure
    inside = structure.subview_of(cluster.stack_at(0).pid).sid
    outside = structure.subview_of(cluster.stack_at(5).pid).sid
    lead.subview_merge([inside, outside])
    cluster.run_for(15)
    show(cluster, "   (structure unchanged, per Section 6.1)")

    print("\n== Figure 2: structure is preserved across view changes ==")
    cluster.partition([[0, 1, 2, 3], [4, 5]])
    cluster.settle()
    show(cluster, "after partition {0,1,2,3}|{4,5} (left side)")
    show(cluster, "   right side:", site=4)

    cluster.heal()
    cluster.settle()
    show(cluster, "after repair: who-was-with-whom is intact")

    print("\n== the guarantees, checked mechanically ==")
    for report in check_enriched_views(cluster.recorder):
        print(f"   {report}")
    assert all(r.ok for r in check_enriched_views(cluster.recorder))


if __name__ == "__main__":
    main()
