"""The paper's second example object (Section 3) plus its Section 5
punchline: weak-consistency applications can make progress in EVERY
partition — the thing the primary-partition model cannot offer — and
partition repair becomes a genuine *state merging* problem.

A parallel-lookup database keeps accepting inserts on both sides of a
partition; the repair merges the two divergent copies by set union, and
the division of look-up responsibility is re-settled so that every hash
bucket is scanned exactly once.

Run:  python examples/partition_progress_db.py
"""

from __future__ import annotations

from repro import Cluster
from repro.apps import ParallelLookupDatabase
from repro.core.classify import ground_truth

PREDICATES = {
    "all": lambda key, value: True,
    "events": lambda key, value: str(key).startswith("event"),
}


def main() -> None:
    cluster = Cluster(4, app_factory=lambda pid: ParallelLookupDatabase(PREDICATES))
    cluster.settle()
    cluster.run_for(200)

    print("-- initial load --")
    for i in range(8):
        cluster.apps[0].insert(f"event{i}", f"payload-{i}")
    cluster.run_for(30)
    handle = cluster.apps[2].lookup("events")
    cluster.run_for(30)
    print(f"parallel lookup: {handle.status}, {len(handle.results)} records")
    print(f"scan responsibility: "
          + " ".join(f"{s}:{len(cluster.apps[s].responsibility())}buckets"
                     for s in range(4)))

    print("\n-- partition {0,1} | {2,3}: BOTH sides keep inserting --")
    cluster.partition([[0, 1], [2, 3]])
    cluster.settle()
    cluster.run_for(200)
    cluster.apps[0].insert("event-left", "left-payload")
    cluster.apps[2].insert("event-right", "right-payload")
    cluster.run_for(30)
    print(f"left copy: {len(cluster.apps[0].records)} records; "
          f"right copy: {len(cluster.apps[2].records)} records")

    print("\n-- repair: a state MERGING problem (two clusters in S_N) --")
    cluster.heal()
    cluster.settle()
    merged_view = cluster.stack_at(0).current_view_id()
    truth = ground_truth(cluster.recorder, merged_view)
    print(f"ground truth at the merged view: {truth}")
    cluster.run_for(300)

    handle = cluster.apps[3].lookup("all")
    cluster.run_for(40)
    keys = sorted(str(k) for k, _ in handle.results)
    print(f"\nafter union merge, lookup sees {len(keys)} records:")
    print("  " + " ".join(keys))
    assert "event-left" in keys and "event-right" in keys
    slices = [cluster.apps[s].responsibility() for s in range(4)]
    assert set().union(*slices) == set(range(64))
    assert sum(len(s) for s in slices) == 64
    print("responsibility partition is exact: no bucket skipped or duplicated.")


if __name__ == "__main__":
    main()
