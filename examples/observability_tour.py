"""A tour of the observability toolchain.

Runs a random adversarial schedule, then shows everything the trace
machinery can tell you about it: summary statistics, mode residency,
the per-process timeline, the shared-state problem log, and a JSONL
export that `python -m repro recheck` can re-verify later.

Run:  python examples/observability_tour.py
"""

from __future__ import annotations

import io

from repro.analysis import classification_score, diagnose_run, transition_matrix
from repro.apps import MajorityLockManager
from repro.bench.harness import run_with_schedule
from repro.runtime.cluster import ClusterConfig
from repro.trace.checks import check_enriched_views, check_view_synchrony
from repro.trace.export import dump_trace
from repro.trace.stats import summarize
from repro.trace.timeline import render_timeline
from repro.workload.generator import RandomFaultGenerator

N = 5


def main() -> None:
    generator = RandomFaultGenerator(n_sites=N, seed=12, duration=300)
    schedule = generator.generate()
    print(f"-- running {len(schedule.actions)} fault actions over {N} sites --")
    cluster = run_with_schedule(
        N,
        schedule,
        app_factory=lambda pid: MajorityLockManager(range(N)),
        config=ClusterConfig(seed=12),
        tail=generator.settle_tail + 150,
    )
    cluster.run_for(200)
    cluster.settle(timeout=500)

    print("\n-- summary statistics --")
    stats = summarize(cluster.recorder)
    print(f"   duration {stats.duration:.0f}; {stats.view_installs} view installs "
          f"({stats.distinct_views} distinct, peak {stats.max_concurrent_views} "
          f"concurrent); {stats.deliveries} deliveries; {stats.crashes} crashes")
    print(f"   mode residency: N={stats.residency.fraction('N'):.0%} "
          f"R={stats.residency.fraction('R'):.0%} "
          f"S={stats.residency.fraction('S'):.0%}")
    print(f"   transitions: {stats.mode_transitions}")

    print("\n-- Figure-1 conformance --")
    matrix = transition_matrix(cluster.recorder)
    print(f"   conforms={matrix.conforms} "
          f"illegal={sorted(matrix.illegal_edges) or 'none'}")

    print("\n-- the first lines of the timeline --")
    lines = render_timeline(cluster.recorder).splitlines()
    for line in lines[:12]:
        print("   " + line)
    print(f"   ... ({len(lines)} rows total)")

    print("\n-- shared-state problem log --")
    entries = diagnose_run(
        cluster.recorder, lambda members: 2 * len(members) > N
    )
    for entry in entries[:5]:
        print(f"   {entry.pid} at {entry.view_id}: truth={entry.truth.label:10s}"
              f" flat={sorted(entry.flat_candidates)} "
              f"enriched={entry.enriched.label}")
    score = classification_score(entries)
    print(f"   score over {score['events']} events: "
          f"enriched exact {score['enriched_exact']:.0%}, "
          f"flat exact {score['flat_exact']:.0%}")

    print("\n-- property checks + export --")
    reports = check_view_synchrony(cluster.recorder)
    reports += check_enriched_views(cluster.recorder)
    assert all(r.ok for r in reports)
    print("   all", len(reports), "properties hold")
    buffer = io.StringIO()
    count = dump_trace(cluster.recorder, buffer)
    print(f"   exported {count} events "
          f"({len(buffer.getvalue()) // 1024} KiB of JSONL)")


if __name__ == "__main__":
    main()
