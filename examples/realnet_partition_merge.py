"""Partition and EVS merge over *real* TCP sockets (Section 6).

Everything the other examples do in virtual time, this one does on the
wall clock: three group stacks — the same unmodified fd/gms/vsync/evs
code the simulator runs — boot on localhost TCP ports, settle into one
view, get firewalled into a majority and a minority (two concurrent
e-views over live sockets), heal, and finish with an ``SV-SetMerge``
that the coordinator sequences and every member applies in the same
total order.  The paper's properties are then verified on the recorded
trace, exactly as for a simulated run.

The wire format and transport semantics are described in
``docs/protocol.md`` ("The realnet wire format").

Run:  python examples/realnet_partition_merge.py
"""

from __future__ import annotations

import sys

from repro.realnet.demo import run_demo


def main() -> int:
    print("== the VS/EVS stacks over localhost TCP ==\n")
    result = run_demo(n_sites=3, seed=0, printer=print)

    print("\n== recap ==")
    print(f"   bootstrap view : {result.bootstrap_view}")
    print(f"   merged view    : {result.merged_view}")
    print(f"   sv-sets after heal {result.svsets_after_heal} "
          f"(partition scars preserved, Property 6.3), "
          f"after SV-SetMerge {result.svsets_after_merge}")
    print(f"   frames: {result.frames_sent} sent, "
          f"{result.frames_delivered} delivered, "
          f"{result.dropped_partition} destroyed by the firewall")
    assert result.svsets_after_heal >= 2
    assert result.svsets_after_merge == 1
    assert result.dropped_partition > 0
    if result.property_violations:
        print(f"   PROPERTY VIOLATIONS: {result.property_violations}")
        return 1
    print("   all view-synchrony and enriched-view properties hold.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
