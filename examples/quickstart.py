"""Quickstart: a view-synchronous group in a simulated network.

Builds a five-site cluster, lets the group form, multicasts a few
messages, then partitions and heals the network while watching the
views each process installs.  Finishes by mechanically checking the
paper's six properties on the recorded execution.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Cluster, GroupApplication
from repro.trace.checks import check_enriched_views, check_view_synchrony


class EchoApp(GroupApplication):
    """Prints every view and message event it receives."""

    def on_view(self, eview) -> None:
        members = ",".join(str(p) for p in sorted(eview.members))
        print(f"  [{self.stack.pid}] installed {eview.view_id}: {{{members}}}")

    def on_message(self, sender, payload, msg_id) -> None:
        print(f"  [{self.stack.pid}] delivered {payload!r} from {sender}")


def main() -> None:
    print("== bootstrap: five processes join one group ==")
    cluster = Cluster(5, app_factory=lambda pid: EchoApp())
    cluster.settle()
    print(f"   (settled at virtual time {cluster.now})")

    print("\n== multicast in the full view ==")
    cluster.stack_at(0).multicast("hello, group")
    cluster.run_for(10)

    print("\n== partition {0,1,2} | {3,4}: two concurrent views ==")
    cluster.partition([[0, 1, 2], [3, 4]])
    cluster.settle()
    cluster.stack_at(0).multicast("majority side")
    cluster.stack_at(3).multicast("minority side")
    cluster.run_for(10)

    print("\n== heal: one view change merges both sides ==")
    cluster.heal()
    cluster.settle()

    print("\n== verifying the paper's properties on the trace ==")
    reports = check_view_synchrony(cluster.recorder)
    reports += check_enriched_views(cluster.recorder)
    for report in reports:
        print(f"   {report}")
    assert all(r.ok for r in reports)
    print("\nAll properties hold.")


if __name__ == "__main__":
    main()
