"""ClusterPort: one harness surface over both runtimes.

These tests exercise the runtime-agnostic side of the port on the
deterministic simulator: construction through :func:`make_cluster`,
structural conformance, the scenario-unit time surface
(``time_scale`` / ``after`` / ``arm``), schedule scaling, and the
checked-workload harness that the CLI and the realnet smoke tests
share.  The realnet implementation of the same surface is covered in
``tests/realnet/`` (wall-clock lane).
"""

from __future__ import annotations

import contextlib

import pytest

from repro.errors import SimulationError
from repro.net.faults import Crash, FaultSchedule, Heal, Partition, Recover
from repro.ports import RUNTIMES, ClusterPort, make_cluster
from repro.workload.clients import MulticastClient, QueryClient
from repro.workload.runner import run_checked_workload
from repro.workload.scenarios import figure2_scenario


def make_sim(n_sites: int = 3, **kwargs) -> ClusterPort:
    return make_cluster("sim", n_sites, **kwargs)


# ---------------------------------------------------------------------------
# Construction and conformance
# ---------------------------------------------------------------------------


def test_sim_cluster_satisfies_the_port_protocol():
    cluster = make_sim()
    assert isinstance(cluster, ClusterPort)
    assert cluster.time_scale == 1.0


def test_make_cluster_rejects_unknown_runtime():
    with pytest.raises(ValueError, match="unknown runtime"):
        make_cluster("carrier-pigeon", 3)
    assert set(RUNTIMES) == {"sim", "realnet", "realnet-proc"}


def test_make_cluster_forwards_seed_and_knobs():
    cluster = make_cluster("sim", 3, seed=42, loss_prob=0.01)
    assert cluster.config.seed == 42
    assert cluster.config.loss_prob == 0.01


def test_port_is_closeable_and_context_managerless():
    # close() must be callable (and idempotent) on every backend, so
    # harness code can always `contextlib.closing` a port.
    with contextlib.closing(make_sim()) as cluster:
        assert cluster.settle()
    cluster.close()  # second close is a no-op


# ---------------------------------------------------------------------------
# Time surface: after / arm / wait_until
# ---------------------------------------------------------------------------


def test_after_fires_on_the_backend_clock():
    cluster = make_sim()
    fired: list[float] = []
    cluster.after(25.0, lambda: fired.append(cluster.now))
    cluster.run_for(30.0)
    assert fired == [25.0]


def test_after_event_is_cancellable():
    cluster = make_sim()
    fired: list[float] = []
    event = cluster.after(25.0, lambda: fired.append(cluster.now))
    event.cancel()
    cluster.run_for(30.0)
    assert fired == []


def test_wait_until_waits_on_a_cluster_predicate():
    cluster = make_sim(3)
    assert cluster.wait_until(lambda c: c.is_settled(), timeout=300.0)
    assert not cluster.wait_until(lambda c: False, timeout=20.0, poll=5.0)


def test_arm_is_relative_to_now():
    cluster = make_sim(3)
    cluster.settle()
    start = cluster.now
    schedule = FaultSchedule()
    schedule.add(Crash(50.0, 2))
    cluster.arm(schedule)
    cluster.run_for(40.0)
    assert cluster.stack_at(2).alive  # not yet: 50 units after *arm*
    cluster.run_for(20.0)
    assert not cluster.stack_at(2).alive
    assert cluster.now == start + 60.0


def test_app_at_raises_for_never_started_site():
    cluster = make_sim(3)
    assert cluster.app_at(0) is not None  # default no-op application
    with pytest.raises(SimulationError):
        cluster.app_at(99)


# ---------------------------------------------------------------------------
# FaultSchedule scaling
# ---------------------------------------------------------------------------


def test_schedule_scaled_and_shifted_rewrite_action_times():
    schedule = FaultSchedule()
    schedule.add(Crash(100.0, 1))
    schedule.add(Recover(200.0, 1))
    scaled = schedule.scaled(0.01).shifted(5.0)
    assert [a.time for a in scaled.actions] == [6.0, 7.0]
    assert [a.time for a in schedule.actions] == [100.0, 200.0]  # untouched
    assert scaled.horizon == 7.0


def test_schedule_identity_scaling_returns_self():
    schedule = FaultSchedule()
    schedule.add(Crash(100.0, 1))
    assert schedule.scaled(1.0) is schedule
    assert schedule.shifted(0.0) is schedule


# ---------------------------------------------------------------------------
# The checked-workload harness
# ---------------------------------------------------------------------------


def test_run_checked_workload_on_sim_figure2():
    def db_factory(pid):
        from repro.apps.replicated_db import ParallelLookupDatabase

        return ParallelLookupDatabase({"all": lambda k, v: True})

    cluster = make_cluster("sim", 6, app_factory=db_factory, seed=11)
    report = run_checked_workload(
        cluster,
        figure2_scenario(),
        client_factories=[
            lambda c: MulticastClient(c, interval=20.0),
            lambda c: QueryClient(c, interval=30.0),
        ],
    )
    assert report.settled and report.ok
    assert report.violations == []
    assert report.events_checked > 0
    assert report.schedule_actions == 2
    assert len(report.clients) == 2
    assert all(c.stats.succeeded > 0 for c in report.clients)
    assert len(report.trace) > 0
    assert report.check_wall_s >= 0.0


def test_run_checked_workload_stops_clients():
    cluster = make_sim(3)
    report = run_checked_workload(
        cluster, client_factories=[lambda c: MulticastClient(c, interval=10.0)]
    )
    (client,) = report.clients
    before = client.stats.attempted
    cluster.run_for(100.0)
    assert client.stats.attempted == before  # no ticks after stop


def test_run_checked_workload_without_schedule_still_checks():
    report = run_checked_workload(make_sim(3), tail=100.0)
    assert report.settled
    assert report.schedule_actions == 0
    assert report.reports  # the property checkers still ran
    assert report.ok


def test_run_checked_workload_accounts_time_in_scenario_units():
    cluster = make_sim(3)
    schedule = FaultSchedule()
    schedule.add(Partition(100.0, ((0, 1), (2,))))
    schedule.add(Heal(150.0))
    report = run_checked_workload(cluster, schedule, tail=75.0)
    assert report.horizon == 225.0  # schedule horizon + tail
    assert report.runtime_now == cluster.now
    # run phase covers horizon+tail; settle may add polls beyond it.
    assert cluster.now >= 225.0
