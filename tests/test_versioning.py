"""Unit tests for the shared op-log versioning helpers."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.group_object import AppStateOffer
from repro.core.versioning import (
    Provenance,
    QuorumTally,
    VersionEntry,
    merge_chains,
    newest_incarnations,
    provenance_of,
)
from repro.types import MessageId, ProcessId, ViewId


def prov(epoch: int, site: int, seq: int, inc: int = 0) -> Provenance:
    return Provenance(epoch, ProcessId(site, inc), seq)


def entry(epoch: int, site: int, seq: int, value: str = "v") -> VersionEntry:
    return VersionEntry(value, prov(epoch, site, seq))


# ---------------------------------------------------------------------------
# Provenance
# ---------------------------------------------------------------------------


def test_provenance_orders_by_epoch_then_writer_then_seq() -> None:
    assert prov(1, 5, 9) < prov(2, 0, 0)
    assert prov(2, 1, 9) < prov(2, 2, 0)
    assert prov(2, 2, 1) < prov(2, 2, 2)
    # A recovered incarnation of the same site sorts after the retired one.
    assert prov(2, 2, 1, inc=0) < prov(2, 2, 1, inc=1)


def test_provenance_of_projects_message_id() -> None:
    writer = ProcessId(3, 1)
    coordinator = ProcessId(0, 0)
    msg_id = MessageId(writer, ViewId(7, coordinator), 42)
    p = provenance_of(msg_id)
    assert p == Provenance(7, writer, 42)
    # The coordinator is deliberately dropped: concurrent partitions
    # with equal epochs must order writes identically at every site.
    other = MessageId(writer, ViewId(7, ProcessId(5, 0)), 42)
    assert provenance_of(other) == p


# ---------------------------------------------------------------------------
# merge_chains
# ---------------------------------------------------------------------------


def test_merge_chains_unions_and_orders_by_provenance() -> None:
    a = (entry(1, 0, 1), entry(2, 0, 1))
    b = (entry(1, 0, 1), entry(2, 1, 1))
    merged = merge_chains([a, b])
    assert [e.prov for e in merged] == sorted(
        {entry(1, 0, 1).prov, entry(2, 0, 1).prov, entry(2, 1, 1).prov}
    )
    # Shared entries survive exactly once.
    assert sum(1 for e in merged if e.prov == prov(1, 0, 1)) == 1


def test_merge_chains_deterministic_in_input_order() -> None:
    a = (entry(1, 0, 1), entry(3, 2, 1))
    b = (entry(2, 1, 1),)
    assert merge_chains([a, b]) == merge_chains([b, a])
    assert merge_chains([a, b, a]) == merge_chains([a, b])


def test_merge_chains_idempotent_with_self() -> None:
    a = (entry(1, 0, 1), entry(2, 0, 2))
    assert merge_chains([a, a]) == a


# ---------------------------------------------------------------------------
# newest_incarnations
# ---------------------------------------------------------------------------


def offer(site: int, inc: int, version: int, state: str) -> AppStateOffer:
    return AppStateOffer(
        sender=ProcessId(site, inc), state=state, version=version, last_epoch=0
    )


def test_newest_incarnations_drops_retired_copies() -> None:
    offers = [offer(0, 0, 9, "stale"), offer(0, 1, 2, "live"), offer(1, 0, 5, "b")]
    live = newest_incarnations(offers)
    assert [o.state for o in live] == ["live", "b"]


def test_newest_incarnations_keeps_highest_version_per_incarnation() -> None:
    offers = [offer(0, 0, 1, "old"), offer(0, 0, 4, "new")]
    live = newest_incarnations(offers)
    assert len(live) == 1 and live[0].state == "new"


def test_newest_incarnations_output_sorted_and_stable() -> None:
    offers = [offer(2, 0, 1, "c"), offer(0, 1, 1, "a"), offer(1, 0, 1, "b")]
    live = newest_incarnations(offers)
    assert [o.sender.site for o in live] == [0, 1, 2]
    assert live == newest_incarnations(list(reversed(offers)))


# ---------------------------------------------------------------------------
# QuorumTally
# ---------------------------------------------------------------------------


@dataclass
class Handle:
    status: str = "pending"
    ackers: set = field(default_factory=set)
    acked_votes: int = 0

    @property
    def done(self) -> bool:
        return self.status != "pending"


def mid(site: int, seq: int) -> MessageId:
    return MessageId(ProcessId(site, 0), ViewId(1, ProcessId(0, 0)), seq)


def test_tally_commits_on_majority() -> None:
    tally = QuorumTally({0: 1, 1: 1, 2: 1})
    handle = Handle()
    me = ProcessId(0, 0)
    assert tally.open(mid(0, 1), handle, me) is None
    assert tally.ack(mid(0, 1), ProcessId(0, 0), me) is None
    committed = tally.ack(mid(0, 1), ProcessId(1, 0), me)
    assert committed is handle and handle.status == "committed"
    # A late ack for the committed op is dropped, not re-counted.
    assert tally.ack(mid(0, 1), ProcessId(2, 0), me) is None


def test_tally_ignores_duplicate_acks_from_one_replica() -> None:
    tally = QuorumTally({0: 1, 1: 1, 2: 1})
    handle = Handle()
    me = ProcessId(0, 0)
    tally.open(mid(0, 1), handle, me)
    assert tally.ack(mid(0, 1), ProcessId(1, 0), me) is None
    assert tally.ack(mid(0, 1), ProcessId(1, 0), me) is None
    assert handle.acked_votes == 1 and handle.status == "pending"


def test_tally_parks_early_self_acks() -> None:
    # Self-delivery is synchronous inside multicast: the ack can arrive
    # before open() registers the handle.
    tally = QuorumTally({0: 1})
    me = ProcessId(0, 0)
    assert tally.ack(mid(0, 1), me, me) is None  # parked, we sent it
    handle = Handle()
    committed = tally.open(mid(0, 1), handle, me)  # single-site quorum
    assert committed is handle and handle.status == "committed"


def test_tally_drops_early_acks_for_foreign_messages() -> None:
    tally = QuorumTally({0: 1, 1: 1})
    me = ProcessId(0, 0)
    assert tally.ack(mid(1, 1), ProcessId(1, 0), me) is None
    handle = Handle()
    assert tally.open(mid(1, 1), handle, me) is None  # nothing parked
    assert handle.acked_votes == 0


def test_tally_abort_all_flushes_pending_and_parked() -> None:
    tally = QuorumTally({0: 1, 1: 1, 2: 1})
    me = ProcessId(0, 0)
    h1, h2 = Handle(), Handle()
    tally.open(mid(0, 1), h1, me)
    tally.open(mid(0, 2), h2, me)
    aborted = tally.abort_all()
    assert set(map(id, aborted)) == {id(h1), id(h2)}
    assert h1.status == h2.status == "aborted"
    assert len(tally) == 0
