"""Exporter + wire-codec coverage for metrics snapshots.

* The Prometheus text export of a real simulator run parses with the
  dependency-free parser in ``tests/prom_parser.py`` (the same parser
  the CI obs-smoke steps use) and passes its structural validation.
* The JSONL export is one meta line plus one JSON object per sample.
* Metric-snapshot payloads round-trip through **both** wire codecs
  (tagged JSON and ``bin1``), including ``+Inf`` histogram bounds — the
  frames ``repro obs watch`` polls over mixed-codec clusters.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.obs.export import to_jsonl, to_prometheus
from repro.obs.registry import MetricsRegistry
from repro.obs.snapshot import MetricsSnapshot
from repro.realnet.codec import decode_value, encode_value
from repro.realnet.codec_bin import decode_value_bin, encode_value_bin
from repro.runtime.cluster import Cluster, ClusterConfig

from tests.prom_parser import parse, validate


@pytest.fixture(scope="module")
def run_snapshot() -> tuple[MetricsSnapshot, dict[str, str]]:
    """One settled + partitioned sim run's snapshot and help texts."""
    cluster = Cluster(4, config=ClusterConfig(seed=5))
    assert cluster.settle()
    cluster.partition([[0, 1], [2, 3]])
    assert cluster.settle()
    cluster.heal()
    assert cluster.settle()
    for stack in cluster.live_stacks():
        stack.multicast(("w", stack.pid.site))
    cluster.run_for(50.0)
    return cluster.metrics_snapshot(), cluster.metrics.help_texts()


def test_prometheus_export_parses_and_validates(run_snapshot):
    snap, helps = run_snapshot
    text = to_prometheus(snap, helps)
    exposition = parse(text)
    validate(exposition)
    assert exposition.types["view_changes_total"] == "counter"
    assert exposition.types["view_change_duration"] == "histogram"
    assert exposition.types["mode_residency"] == "gauge"
    # HELP lines travel for every family that has one.
    assert "view_changes_total" in exposition.helps


def test_prometheus_values_match_snapshot(run_snapshot):
    snap, helps = run_snapshot
    exposition = parse(to_prometheus(snap, helps))
    assert exposition.value(
        "view_changes_total", pid="p0.0"
    ) == snap.sample("view_changes_total", pid="p0.0").value
    hist = snap.sample("view_change_duration", pid="p0.0")
    assert exposition.value(
        "view_change_duration_count", pid="p0.0"
    ) == hist.count
    assert exposition.value(
        "view_change_duration_bucket", pid="p0.0", le="+Inf"
    ) == hist.count


def test_prometheus_runtime_label_on_every_series(run_snapshot):
    snap, helps = run_snapshot
    exposition = parse(to_prometheus(snap, helps))
    assert exposition.samples  # non-empty
    for _name, labels, _value in exposition.samples:
        assert labels.get("runtime") == "sim"


def test_jsonl_shape(run_snapshot):
    snap, _helps = run_snapshot
    lines = to_jsonl(snap).splitlines()
    meta = json.loads(lines[0])
    assert meta["runtime"] == "sim"
    assert meta["samples"] == len(snap.samples) == len(lines) - 1
    for line, sample in zip(lines[1:], snap.samples):
        obj = json.loads(line)
        assert obj["name"] == sample.name
        assert obj["kind"] == sample.kind
        assert obj["labels"] == dict(sample.labels)
        if sample.kind == "histogram":
            assert obj["count"] == sample.count
            assert obj["buckets"][-1][0] == "+Inf"


def test_snapshot_roundtrips_both_codecs(run_snapshot):
    snap, _helps = run_snapshot
    assert decode_value(encode_value(snap)) == snap
    assert decode_value_bin(encode_value_bin(snap)) == snap


def test_inf_bucket_bounds_survive_bin_codec():
    reg = MetricsRegistry(clock=lambda: 1.0, runtime="realnet")
    reg.histogram("h", "test").labels().observe(9999.0)  # overflow bucket
    snap = reg.snapshot("node")
    back = decode_value_bin(encode_value_bin(snap))
    assert back == snap
    le, cum = back.sample("h").buckets[-1]
    assert math.isinf(le) and cum == 1
