"""Opt-in long soak tests.

These are heavier-than-CI confidence runs: enable with
``REPRO_SOAK=1 pytest tests/test_soak.py``.  The default test run keeps
a single representative slice so the file is never silently dead.
"""

from __future__ import annotations

import os

import pytest

from repro.apps.replicated_file import ReplicatedFile
from repro.bench.harness import run_with_schedule
from repro.runtime.cluster import ClusterConfig
from repro.trace.checks import all_ok, check_enriched_views, check_view_synchrony
from repro.workload.generator import RandomFaultGenerator

SOAK = os.environ.get("REPRO_SOAK") == "1"
SEEDS = range(40) if SOAK else [17]
SITES = (5, 7) if SOAK else (5,)


@pytest.mark.parametrize("n_sites", SITES)
@pytest.mark.parametrize("seed", SEEDS)
def test_soak_bare_stack(n_sites, seed):
    gen = RandomFaultGenerator(n_sites=n_sites, seed=seed, duration=350)
    cluster = run_with_schedule(
        n_sites,
        gen.generate(),
        config=ClusterConfig(seed=seed),
        tail=gen.settle_tail,
        settle_timeout=900,
    )
    reports = check_view_synchrony(cluster.recorder)
    reports += check_enriched_views(cluster.recorder)
    assert all_ok(reports), [
        (r.name, r.violations[:2]) for r in reports if not r.ok
    ]
    assert cluster.is_settled(), cluster.views()


@pytest.mark.parametrize("seed", SEEDS)
def test_soak_file_object(seed):
    votes = {s: 1 for s in range(5)}
    gen = RandomFaultGenerator(n_sites=5, seed=seed + 1000, duration=300)
    cluster = run_with_schedule(
        5,
        gen.generate(),
        app_factory=lambda pid: ReplicatedFile(votes),
        config=ClusterConfig(seed=seed),
        tail=gen.settle_tail + 250,
        settle_timeout=900,
    )
    cluster.run_for(200)
    cluster.settle(timeout=600)
    reports = check_view_synchrony(cluster.recorder)
    reports += check_enriched_views(cluster.recorder)
    assert all_ok(reports)
    live = [cluster.apps[s] for s in cluster.apps if cluster.stacks[s].alive]
    listings = [app.listing() for app in live]
    assert all(listing == listings[0] for listing in listings)
