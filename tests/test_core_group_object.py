"""Tests for the group-object framework, settlement and classifiers on
live clusters: transfer, creation, merging, reconcile, op replay."""

from __future__ import annotations

from repro.core.classify import classify_enriched, ground_truth
from repro.core.cuts import cut_at_install, s_mode_entries
from repro.core.group_object import GroupObject
from repro.core.history import all_histories, history_of
from repro.core.mode_functions import AlwaysFullModeFunction, QuorumModeFunction
from repro.core.modes import Mode
from repro.core.shared_state import Problem
from repro.runtime.cluster import Cluster, ClusterConfig
from repro.types import ProcessId

from tests.conftest import assert_all_properties


class KvObject(GroupObject):
    """A minimal key/value group object for framework tests."""

    def __init__(self, mode_function, persist: bool = False, **kwargs) -> None:
        super().__init__(mode_function, **kwargs)
        self.data: dict = {}
        self.persist = persist

    def bind(self, stack) -> None:
        super().bind(stack)
        if self.persist:
            stored = stack.storage.read("kv.data")
            if stored is not None:
                self.data = stored

    def snapshot_state(self):
        return dict(self.data)

    def adopt_state(self, state):
        self.data = dict(state)
        self._save()

    def apply_op(self, sender, op, msg_id):
        key, value = op
        self.data[key] = value
        self._save()

    def merge_app_states(self, offers):
        merged: dict = {}
        for offer in sorted(offers, key=lambda o: (o.version, o.sender)):
            merged.update(offer.state)
        return merged

    def _save(self):
        if self.persist and self.stack is not None:
            self.stack.storage.write("kv.data", self.data)


def quorum_cluster(n: int = 5, seed: int = 0, persist: bool = False, **kwargs) -> Cluster:
    fn_votes = {s: 1 for s in range(n)}
    cluster = Cluster(
        n,
        app_factory=lambda pid: KvObject(
            QuorumModeFunction(fn_votes), persist=persist, **kwargs
        ),
        config=ClusterConfig(seed=seed),
    )
    assert cluster.settle(timeout=500)
    cluster.run_for(150)
    return cluster


def test_bootstrap_creation_reaches_normal_mode():
    cluster = quorum_cluster()
    for app in cluster.apps.values():
        assert app.mode is Mode.NORMAL
        assert app.fresh


def test_ops_replicate_to_all_members():
    cluster = quorum_cluster()
    cluster.apps[0].submit_op(("x", 1))
    cluster.apps[3].submit_op(("y", 2))
    cluster.run_for(30)
    for app in cluster.apps.values():
        assert app.data == {"x": 1, "y": 2}


def test_minority_cannot_submit():
    cluster = quorum_cluster()
    cluster.partition([[0, 1, 2], [3, 4]])
    assert cluster.settle(timeout=500)
    cluster.run_for(120)
    assert cluster.apps[3].mode is Mode.REDUCED
    assert not cluster.apps[3].can_submit(("z", 9))
    assert cluster.apps[0].can_submit(("z", 9))


def test_state_transfer_after_heal():
    cluster = quorum_cluster()
    cluster.apps[0].submit_op(("k", "before"))
    cluster.run_for(30)
    cluster.partition([[0, 1, 2], [3, 4]])
    assert cluster.settle(timeout=500)
    cluster.run_for(120)
    cluster.apps[0].submit_op(("k", "updated"))
    cluster.run_for(30)
    cluster.heal()
    assert cluster.settle(timeout=500)
    cluster.run_for(250)
    for app in cluster.apps.values():
        assert app.mode is Mode.NORMAL
        assert app.data["k"] == "updated"
    assert_all_properties(cluster.recorder)


def test_transfer_identified_by_enriched_classifier_matches_ground_truth():
    cluster = quorum_cluster()
    cluster.partition([[0, 1, 2], [3, 4]])
    assert cluster.settle(timeout=500)
    cluster.run_for(150)
    cluster.heal()
    assert cluster.settle(timeout=500)
    merged_view = cluster.stack_at(0).current_view_id()
    truth = ground_truth(cluster.recorder, merged_view)
    assert truth.problems == {Problem.STATE_TRANSFER}
    eview_at_install = None
    for stack in cluster.live_stacks():
        pass
    # Classify from the structure delivered with the merged view.
    fn = cluster.apps[0].automaton.mode_function
    # Reconstruct the install-time e-view from the trace (seq 0).
    from repro.trace.events import EViewChangeEvent
    from repro.evs.eview import EView, EViewStructure, Subview, SvSet
    from repro.gms.view import View

    snapshot = next(
        ev
        for ev in cluster.recorder.of_type(EViewChangeEvent)
        if ev.view_id == merged_view and ev.eview_seq == 0
    )
    subviews = tuple(Subview(sid, members) for sid, members in snapshot.subviews)
    svsets = tuple(SvSet(ssid, sids) for ssid, sids in snapshot.svsets)
    members = frozenset(p for sv in subviews for p in sv.members)
    eview = EView(View(merged_view, members), EViewStructure(subviews, svsets))
    verdict = classify_enriched(eview, fn.n_capable)
    assert verdict.label == truth.label == "transfer"
    assert verdict.s_n == truth.s_n
    assert verdict.s_r == truth.s_r


def test_state_creation_after_total_failure_uses_persistent_state():
    cluster = quorum_cluster(persist=True)
    cluster.apps[0].submit_op(("important", "data"))
    cluster.run_for(30)
    for site in range(5):
        cluster.crash(site)
    cluster.run_for(60)
    for site in range(5):
        cluster.recover(site)
    assert cluster.settle(timeout=600)
    cluster.run_for(300)
    for app in (cluster.apps[s] for s in range(5)):
        assert app.mode is Mode.NORMAL
        assert app.data.get("important") == "data"


def test_creation_without_persistence_restarts_empty():
    cluster = quorum_cluster(persist=False)
    cluster.apps[0].submit_op(("volatile", 1))
    cluster.run_for(30)
    for site in range(5):
        cluster.crash(site)
    cluster.run_for(60)
    for site in range(5):
        cluster.recover(site)
    assert cluster.settle(timeout=600)
    cluster.run_for(300)
    assert cluster.apps[0].mode is Mode.NORMAL
    assert "volatile" not in cluster.apps[0].data


def test_state_merging_with_always_full_object():
    cluster = Cluster(
        4,
        app_factory=lambda pid: KvObject(AlwaysFullModeFunction()),
        config=ClusterConfig(seed=1),
    )
    assert cluster.settle(timeout=500)
    cluster.run_for(200)
    cluster.partition([[0, 1], [2, 3]])
    assert cluster.settle(timeout=500)
    cluster.run_for(200)
    assert cluster.apps[0].mode is Mode.NORMAL
    assert cluster.apps[2].mode is Mode.NORMAL
    cluster.apps[0].submit_op(("left", "L"))
    cluster.apps[2].submit_op(("right", "R"))
    cluster.run_for(30)
    cluster.heal()
    assert cluster.settle(timeout=500)
    cluster.run_for(250)
    # The heal-merge view (not necessarily the latest one, if transient
    # reinstalls followed) must diagnose as a two-cluster merging event.
    merge_diagnoses = [
        ground_truth(cluster.recorder, view_id)
        for view_id in cluster.recorder.installed_views()
    ]
    merging = [d for d in merge_diagnoses if Problem.STATE_MERGING in d.problems]
    assert merging, [d.label for d in merge_diagnoses]
    assert any(len(d.clusters) == 2 for d in merging)
    for app in cluster.apps.values():
        assert app.data["left"] == "L" and app.data["right"] == "R"


def test_ops_delivered_while_settling_are_replayed_after_adopt():
    """A donor keeps serving while a transfer runs; the receiver must not
    lose those concurrent updates (the op-buffering discipline)."""
    cluster = quorum_cluster()
    cluster.partition([[0, 1, 2], [3, 4]])
    assert cluster.settle(timeout=500)
    cluster.run_for(150)
    cluster.heal()
    # Do NOT settle yet: write while the merge/settlement is in flight.
    cluster.run_for(25)
    if cluster.apps[0].can_submit(("during", "settle")):
        cluster.apps[0].submit_op(("during", "settle"))
    assert cluster.settle(timeout=500)
    cluster.run_for(250)
    data = [cluster.apps[s].data for s in range(5)]
    assert all(d == data[0] for d in data), data


def test_op_buffered_before_fresh_not_applied_twice():
    cluster = quorum_cluster()
    cluster.apps[1].submit_op(("a", 1))
    cluster.run_for(30)
    assert cluster.apps[1].ops_applied == cluster.apps[0].ops_applied
    counts = {s: cluster.apps[s].ops_applied for s in range(5)}
    assert len(set(counts.values())) == 1


def test_mode_history_and_cuts_are_extractable():
    cluster = quorum_cluster()
    histories = all_histories(cluster.recorder)
    assert len(histories) == 5
    for history in histories.values():
        assert history.joined_first()
        assert history.current_view is not None
    pid0 = cluster.stack_at(0).pid
    assert history_of(cluster.recorder, pid0).pid == pid0
    entries = s_mode_entries(cluster.recorder)
    assert entries, "bootstrap must produce S-mode entries"
    view_id = cluster.stack_at(0).current_view_id()
    cut = cut_at_install(cluster.recorder, view_id)
    assert set(cut) == cluster.live_pids()


def test_settlement_stats_track_sessions():
    cluster = quorum_cluster()
    leader_app = cluster.apps[0]
    assert leader_app.settlement.stats.sessions_completed >= 1
