"""Binary wire codec units: roundtrips, negotiation, error paths.

Tier-1 (socket-free) coverage for :mod:`repro.realnet.codec_bin`:

* a sample of **every** registered wire dataclass round-trips
  identically under both codecs (a coverage assertion keeps the sample
  list honest when new payload classes are registered);
* the ``bin1`` msg framing round-trips through ``frame_msg`` /
  ``parse_msg``;
* both codecs reject the same malformed inputs — truncation, oversized
  frames, unknown classes, field-layout drift, registry collisions;
* ``hello`` negotiation picks binary only between schema-matched peers
  and falls back to JSON everywhere else.
"""

from __future__ import annotations

import pytest

from repro.apps.lock_manager import _AcquireReq, _Denied, _ReleaseReq
from repro.apps.replicated_db import _LookupReply, _LookupRequest
from repro.apps.replicated_file import _WriteAck
from repro.apps.versioned_store import _StoreAck
from repro.client.protocol import ClientReply, ClientRequest
from repro.core.versioning import Provenance, VersionEntry
from repro.core.group_object import _OpMsg
from repro.core.settlement import StateAdopt, StateOffer, StateRequest
from repro.core.state_transfer import TAck, TChunk, TOffer, TResume, TSmallPiece
from repro.errors import CodecError
from repro.evs.eview import EvDelta, EView, EViewStructure, Subview, SvSet
from repro.obs.snapshot import MetricSample, MetricsSnapshot
from repro.obs.tracing import SpanEvent, TraceCtx, TraceDump
from repro.evs.messages import EvChange, EvRepairReq, EvReq
from repro.fd.gossip import GossipDigest, GossipEntry
from repro.fd.heartbeat import Heartbeat
from repro.gms.messages import (
    Leave,
    PredecessorPlan,
    VcAbort,
    VcFlush,
    VcFlushBatch,
    VcInstall,
    VcNack,
    VcPrepare,
    VcPropose,
)
from repro.gms.view import View
from repro.realnet import codec_bin
from repro.realnet.codec import (
    MAX_FRAME_BYTES,
    decode_value,
    encode_value,
    register_payload,
    registered_payloads,
)
from repro.realnet.codec_bin import (
    BIN_FORMAT,
    FORMAT_BIN,
    FORMAT_JSON,
    JSON_FORMAT,
    choose_format,
    decode_value_bin,
    encode_value_bin,
    schema_fingerprint,
    supported_formats,
)
from repro.types import Message, MessageId, ProcessId, SubviewId, SvSetId, ViewId
from repro.vsync.stability import StabilityNotice, StabilityReport
from repro.vsync.stack import DirectPayload, RetransmitRequest, SubviewScoped


def _samples():
    """One instance of every registered wire dataclass."""
    p0, p1, p2 = ProcessId(0, 0), ProcessId(1, 0), ProcessId(2, 3)
    vid = ViewId(4, p0)
    view = View(vid, frozenset({p0, p1, p2}))
    structure = EViewStructure.singletons(4, view.members)
    svid = SubviewId(4, p0, 0)
    ssid = SvSetId(4, p0, 0)
    delta = EvDelta(
        seq=1,
        kind="svset",
        inputs=frozenset({ssid, SvSetId(4, p1, 0)}),
        new_svset=SvSetId(4, p0, 1),
    )
    msg = Message(
        MessageId(p1, vid, 7), payload={"op": "put", "k": [1, 2.5]}, eview_seq=2
    )
    return [
        p2,
        vid,
        MessageId(p1, vid, 7),
        svid,
        ssid,
        view,
        Subview(svid, frozenset({p0, p1})),
        SvSet(ssid, frozenset({svid, SubviewId(4, p1, 0)})),
        structure,
        EView(view, structure, seq=3),
        delta,
        msg,
        Heartbeat(p1, vid, last_seqno=9, eview_seq=2),
        GossipEntry(site=2, incarnation=3, counter=17, suspect=True),
        GossipDigest(
            sender=p1,
            view_id=vid,
            last_seqno=9,
            eview_seq=2,
            entries=(
                GossipEntry(site=0, incarnation=0, counter=5),
                GossipEntry(site=2, incarnation=3, counter=17, suspect=True),
            ),
        ),
        VcPropose(p1, frozenset({p0, p1})),
        VcPrepare((p0, 5), frozenset({p0, p1}), direct=True),
        VcNack((p0, 5), p2),
        VcAbort((p0, 5)),
        Leave(p1),
        VcFlush(
            round_id=(p0, 5),
            sender=p1,
            view_id=vid,
            max_epoch=4,
            received=(msg,),
            eview_seq=2,
            structure=structure,
            evlog=(delta,),
            reachable=frozenset({p0, p1}),
        ),
        VcFlushBatch(
            round_id=(p0, 5),
            flushes=(
                VcFlush(
                    round_id=(p0, 5),
                    sender=p2,
                    view_id=vid,
                    max_epoch=4,
                    received=(),
                    eview_seq=2,
                    structure=structure,
                    evlog=(),
                    reachable=frozenset({p0, p2}),
                ),
            ),
        ),
        VcInstall(
            round_id=(p0, 5),
            view=view,
            structure=structure,
            predecessors={
                vid: PredecessorPlan(messages=(msg,), evlog=(delta,), eview_seq=2)
            },
        ),
        PredecessorPlan(messages=(msg,), evlog=(delta,), eview_seq=2),
        EvReq(p1, vid, "subview", frozenset({svid})),
        EvChange(vid, delta),
        EvRepairReq(vid, have_seq=2),
        StabilityReport(vid, p1, ((p0, 3), (p1, 9))),
        StabilityNotice(vid, ((p0, 3), (p1, 9))),
        RetransmitRequest(vid, (3, 4, 7)),
        DirectPayload({"blob": "x" * 10}),
        SubviewScoped(frozenset({p0, p1}), ["nested", {"deep": (1, 2.5)}]),
        StateRequest(
            session=(p0, 2), accepts_chunks=True, have_version=3, have_digest=0x1F2E
        ),
        StateOffer(
            session=(p0, 2),
            sender=p1,
            snapshot={"files": {"a": "1:3"}},
            version=5,
            last_epoch=4,
        ),
        StateAdopt(session=(p0, 2), state={"files": {"a": "1:3"}}, view_id=vid),
        Provenance(view_epoch=4, writer=p1, seq=7),
        VersionEntry(
            value="v1",
            prov=Provenance(view_epoch=4, writer=p1, seq=7),
            client="c0",
            client_seq=3,
        ),
        _StoreAck(MessageId(p1, vid, 9)),
        ClientRequest(
            req_id=11,
            op="put",
            key="user42",
            value="v1",
            client="c0",
            client_seq=3,
            read_mode="leader",
            ryw=(4, 1, 0, 7),
        ),
        ClientReply(
            req_id=11,
            status="ok",
            value="v1",
            prov=(4, 1, 0, 7),
            chain=(("v0", (3, 0, 0, 2), "c0", 1),),
            leader_site=0,
        ),
        TChunk(transfer=(p1, 1), index=0, payload=["bulk", 7], last=False),
        TAck(transfer=(p1, 1), index=0),
        TSmallPiece(transfer=(p1, 1), payload={"meta": 1}, large_chunks=3),
        TOffer(
            transfer=(p1, 2),
            session=(p0, 2),
            kind="diff",
            total_chunks=4,
            base_version=3,
            target_version=11,
            sender=p1,
            last_epoch=4,
        ),
        TResume(transfer=(p1, 2), next_index=1),
        _OpMsg(("write", "a", "0:1")),
        _AcquireReq(requester=p2),
        _ReleaseReq(requester=p2),
        _Denied(holder=p0),
        _LookupRequest(query_id=3, origin=p1, predicate_name="all"),
        _LookupReply(query_id=3, matches=frozenset({("k1", 1)})),
        _WriteAck(MessageId(p1, vid, 7)),
        MetricSample(
            name="multicast_delivery_latency",
            kind="histogram",
            labels=(("pid", "p1.0"),),
            value=3.5,
            count=2,
            buckets=((1.0, 1), (2.0, 2), (float("inf"), 2)),
        ),
        MetricsSnapshot(
            source="site1",
            runtime="realnet",
            time=12.5,
            samples=(
                MetricSample(
                    name="view_changes_total",
                    kind="counter",
                    labels=(("pid", "p1.0"),),
                    value=4.0,
                ),
            ),
        ),
        TraceCtx(trace_id=0x1001, span_id=0x2001, parent=0x1001),
        SpanEvent(
            trace_id=0x1001,
            span_id=0x2001,
            parent=0x1001,
            name="view.agree",
            pid="p1.0",
            site=1,
            t0=1.5,
            t1=2.25,
            attrs=(("view", "v4@p0.0"),),
        ),
        TraceDump(
            node="site1",
            runtime="realnet",
            epoch=1000.5,
            dropped=2,
            events=(
                SpanEvent(
                    trace_id=0x1001,
                    span_id=0x3001,
                    parent=0,
                    name="view.change",
                    pid="p1.0",
                    site=1,
                    t0=1.0,
                    t1=1.0,
                ),
            ),
        ),
    ]


def test_samples_cover_every_registered_class():
    sampled = {type(s).__name__ for s in _samples()}
    assert sampled == set(registered_payloads())


@pytest.mark.parametrize("payload", _samples(), ids=lambda p: type(p).__name__)
def test_both_codecs_roundtrip_identically(payload):
    via_bin = decode_value_bin(encode_value_bin(payload))
    via_json = decode_value(encode_value(payload))
    assert via_bin == payload
    assert via_json == payload
    assert type(via_bin) is type(payload)
    assert via_bin == via_json


@pytest.mark.parametrize(
    "value",
    [
        0,
        127,
        128,
        -1,
        -64,
        2**100,
        -(2**100),
        0.0,
        -2.5,
        float("inf"),
        float("-inf"),
        "",
        "naïve-ütf8 ✓",
        "x" * 5000,
        (),
        [],
        {},
        frozenset(),
        set(),
        ((1, 2), [3, [4]], {"k": (5,)}),
        {(1, "a"): frozenset({2}), None: True, False: 0},
    ],
    ids=repr,
)
def test_bin_scalars_and_containers_roundtrip(value):
    decoded = decode_value_bin(encode_value_bin(value))
    assert decoded == value
    assert type(decoded) is type(value)


def test_bin_nan_and_numeric_types_survive():
    nan = decode_value_bin(encode_value_bin(float("nan")))
    assert nan != nan
    assert isinstance(decode_value_bin(encode_value_bin(3)), int)
    assert isinstance(decode_value_bin(encode_value_bin(3.0)), float)
    assert decode_value_bin(encode_value_bin(True)) is True
    assert decode_value_bin(encode_value_bin(False)) is False


def test_bin_rejects_what_json_rejects():
    for bad in (object(), b"raw-bytes", 1 + 2j):
        with pytest.raises(CodecError):
            encode_value(bad)
        with pytest.raises(CodecError):
            encode_value_bin(bad)


# ---------------------------------------------------------------------------
# msg framing
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("fmt", [JSON_FORMAT, BIN_FORMAT], ids=lambda f: f.name)
@pytest.mark.parametrize("dst_inc", [None, 0, 7, 300], ids=lambda v: f"inc={v}")
def test_msg_framing_roundtrip(fmt, dst_inc):
    payload = Heartbeat(ProcessId(2, 1), ViewId(9, ProcessId(0, 0)), 4, 1)
    frame = fmt.frame_msg((2, 1), 5, dst_inc, fmt.encode_payload(payload))
    parsed = fmt.parse_msg(frame[4:])
    assert (parsed.src_site, parsed.src_inc) == (2, 1)
    assert parsed.dst_site == 5
    assert parsed.dst_inc == dst_inc
    assert parsed.payload() == payload


def test_bin_unknown_frame_kind_is_skipped_not_fatal():
    assert BIN_FORMAT.parse_msg(b"\xff whatever") is None


def test_bin_frame_cap_enforced():
    with pytest.raises(CodecError):
        BIN_FORMAT.frame_msg((0, 0), 1, None, b"x" * (MAX_FRAME_BYTES + 1))


# ---------------------------------------------------------------------------
# error paths: the decoder must die loudly, not misread
# ---------------------------------------------------------------------------


def _bin_body(payload) -> bytes:
    return BIN_FORMAT.frame_msg((0, 0), 1, 0, encode_value_bin(payload))[4:]


def test_bin_truncation_every_prefix_raises_or_differs():
    payload = _samples()[18]  # VcFlush: the deepest nesting
    encoded = encode_value_bin(payload)
    for cut in range(len(encoded)):
        with pytest.raises(CodecError):
            decode_value_bin(encoded[:cut])


def test_bin_trailing_bytes_rejected():
    with pytest.raises(CodecError, match="trailing"):
        decode_value_bin(encode_value_bin((1, 2)) + b"\x00")
    body = _bin_body(("x",)) + b"\x00"
    with pytest.raises(CodecError, match="trailing"):
        BIN_FORMAT.parse_msg(body).payload()


def test_bin_unknown_class_id():
    out = bytearray([codec_bin._T_CLASS])
    codec_bin._enc_uvarint(out, 10_000)
    codec_bin._enc_uvarint(out, 0)
    with pytest.raises(CodecError, match="unknown wire payload class id"):
        decode_value_bin(bytes(out))


def test_bin_unknown_value_tag():
    with pytest.raises(CodecError, match="unknown binary value tag"):
        decode_value_bin(b"\x7f")


def test_bin_field_layout_mismatch():
    # A peer whose ProcessId grew a third field: same class id, arity 3.
    table = codec_bin.class_table()
    class_id = table.by_class[ProcessId][0]
    out = bytearray([codec_bin._T_CLASS])
    codec_bin._enc_uvarint(out, class_id)
    codec_bin._enc_uvarint(out, 3)
    for value in (1, 2, 3):
        codec_bin._enc_int(out, value)
    with pytest.raises(CodecError, match="field-layout mismatch"):
        decode_value_bin(bytes(out))


def test_bin_varint_too_long():
    with pytest.raises(CodecError):
        decode_value_bin(bytes([codec_bin._T_INT]) + b"\xff" * 25)


def test_json_truncated_body_raises():
    from repro.realnet.codec import decode_frame_body, encode_frame

    frame = encode_frame({"k": "msg", "p": "hello"})
    with pytest.raises(CodecError):
        decode_frame_body(frame[4:-3])
    with pytest.raises(CodecError):
        decode_frame_body(b"\xff\xfe not json")


def test_split_frames_rejects_oversized_length_prefix():
    from repro.realnet.codec import _LEN
    from repro.realnet.transport import FrameServer

    server = FrameServer("127.0.0.1", 0, lambda msg: None)
    buf = bytearray(_LEN.pack(MAX_FRAME_BYTES + 1) + b"x")
    with pytest.raises(CodecError, match="exceeds cap"):
        server._split_frames(buf)


def test_split_frames_carves_complete_frames_only():
    from repro.realnet.codec import _LEN
    from repro.realnet.transport import FrameServer

    server = FrameServer("127.0.0.1", 0, lambda msg: None)
    whole = _LEN.pack(3) + b"abc" + _LEN.pack(2) + b"de"
    buf = bytearray(whole + _LEN.pack(4) + b"xy")  # third frame truncated
    assert server._split_frames(buf) == [b"abc", b"de"]
    assert bytes(buf) == _LEN.pack(4) + b"xy"  # partial tail kept for next read
    buf += b"zw"
    assert server._split_frames(buf) == [b"xyzw"]
    assert not buf


def test_register_payload_collision_rules():
    # Re-registering the identical class is a no-op ...
    register_payload(ProcessId)
    fingerprint = schema_fingerprint()
    assert fingerprint == schema_fingerprint()

    # ... but a different class under a taken name must raise.
    class ProcessId2:
        pass

    ProcessId2.__name__ = "ProcessId"
    with pytest.raises(CodecError):
        register_payload(ProcessId2)


# ---------------------------------------------------------------------------
# negotiation
# ---------------------------------------------------------------------------


def test_supported_formats_preference_order():
    assert supported_formats("json") == (FORMAT_JSON,)
    assert supported_formats("bin") == (FORMAT_BIN, FORMAT_JSON)
    assert supported_formats("bin1") == (FORMAT_BIN, FORMAT_JSON)
    with pytest.raises(CodecError):
        supported_formats("msgpack")


def test_choose_format_picks_binary_on_schema_match():
    fp = schema_fingerprint()
    accept = supported_formats("bin")
    assert choose_format([FORMAT_BIN, FORMAT_JSON], fp, accept) == FORMAT_BIN
    assert choose_format([FORMAT_JSON, FORMAT_BIN], fp, accept) == FORMAT_JSON


def test_choose_format_schema_mismatch_falls_back_to_json():
    accept = supported_formats("bin")
    assert choose_format([FORMAT_BIN, FORMAT_JSON], "0" * 16, accept) == FORMAT_JSON
    assert choose_format([FORMAT_BIN], None, accept) == FORMAT_JSON


def test_choose_format_json_only_server_never_picks_binary():
    fp = schema_fingerprint()
    accept = supported_formats("json")
    assert choose_format([FORMAT_BIN, FORMAT_JSON], fp, accept) == FORMAT_JSON


def test_choose_format_pre_binary_peer_and_garbage_hellos():
    fp = schema_fingerprint()
    accept = supported_formats("bin")
    assert choose_format(None, fp, accept) == FORMAT_JSON  # pre-binary hello
    assert choose_format("bin1", fp, accept) == FORMAT_JSON  # not a list
    assert choose_format(["gzip", 42], fp, accept) == FORMAT_JSON  # unknown names


def test_schema_fingerprint_is_stable_and_short():
    fp = schema_fingerprint()
    assert fp == schema_fingerprint()
    assert len(fp) == 16
    int(fp, 16)  # hex
