"""Tests for the three example applications and their paper invariants."""

from __future__ import annotations

import pytest

from repro.apps.lock_manager import MajorityLockManager
from repro.apps.replicated_db import ParallelLookupDatabase
from repro.apps.replicated_file import ReplicatedFile
from repro.core.modes import Mode
from repro.errors import ApplicationError
from repro.runtime.cluster import Cluster, ClusterConfig

from tests.conftest import assert_all_properties

PREDICATES = {
    "all": lambda k, v: True,
    "big": lambda k, v: isinstance(k, int) and k >= 5,
}


def file_cluster(n: int = 5, seed: int = 0) -> Cluster:
    votes = {s: 1 for s in range(n)}
    cluster = Cluster(
        n,
        app_factory=lambda pid: ReplicatedFile(votes),
        config=ClusterConfig(seed=seed),
    )
    assert cluster.settle(timeout=500)
    cluster.run_for(150)
    return cluster


def db_cluster(n: int = 4, seed: int = 0) -> Cluster:
    cluster = Cluster(
        n,
        app_factory=lambda pid: ParallelLookupDatabase(PREDICATES),
        config=ClusterConfig(seed=seed),
    )
    assert cluster.settle(timeout=500)
    cluster.run_for(200)
    return cluster


def lock_cluster(n: int = 5, seed: int = 0) -> Cluster:
    cluster = Cluster(
        n,
        app_factory=lambda pid: MajorityLockManager(range(n)),
        config=ClusterConfig(seed=seed),
    )
    assert cluster.settle(timeout=500)
    cluster.run_for(200)
    return cluster


# ---------------------------------------------------------------------------
# Replicated file
# ---------------------------------------------------------------------------


def test_write_commits_with_quorum_acks():
    cluster = file_cluster()
    handle = cluster.apps[0].write("f", "v1")
    cluster.run_for(30)
    assert handle.status == "committed"
    assert handle.acked_votes >= 3


def test_committed_write_visible_everywhere():
    cluster = file_cluster()
    cluster.apps[2].write("f", "content")
    cluster.run_for(30)
    for site in range(5):
        assert cluster.apps[site].read("f") == "content"


def test_single_copy_equivalence_for_writes():
    """Concurrent writes to the same file converge to one value chosen
    identically at every replica."""
    cluster = file_cluster()
    cluster.apps[0].write("f", "from-0")
    cluster.apps[4].write("f", "from-4")
    cluster.run_for(40)
    values = {cluster.apps[s].read("f") for s in range(5)}
    assert len(values) == 1


def test_minority_serves_stale_reads_but_no_writes():
    cluster = file_cluster()
    cluster.apps[0].write("f", "old")
    cluster.run_for(30)
    cluster.partition([[0, 1, 2], [3, 4]])
    assert cluster.settle(timeout=500)
    cluster.run_for(150)
    assert cluster.apps[3].mode is Mode.REDUCED
    assert cluster.apps[3].read("f") == "old"  # stale-allowed read
    assert cluster.apps[3].write("f", "nope").status == "aborted"
    assert cluster.apps[3].stale_reads_possible >= 1


def test_quorum_side_keeps_writing_and_heals():
    cluster = file_cluster()
    cluster.apps[0].write("f", "v1")
    cluster.run_for(30)
    cluster.partition([[0, 1, 2], [3, 4]])
    assert cluster.settle(timeout=500)
    cluster.run_for(150)
    handle = cluster.apps[1].write("f", "v2")
    cluster.run_for(30)
    assert handle.status == "committed"
    cluster.heal()
    assert cluster.settle(timeout=500)
    cluster.run_for(300)
    for site in range(5):
        assert cluster.apps[site].read("f") == "v2"
        assert cluster.apps[site].mode is Mode.NORMAL
    assert_all_properties(cluster.recorder)


def test_file_survives_total_failure_via_stable_storage():
    cluster = file_cluster()
    cluster.apps[0].write("precious", "bits")
    cluster.run_for(30)
    for site in range(5):
        cluster.crash(site)
    cluster.run_for(80)
    for site in range(5):
        cluster.recover(site)
    assert cluster.settle(timeout=600)
    cluster.run_for(350)
    for site in range(5):
        assert cluster.apps[site].read("precious") == "bits"


def test_read_rejected_while_settling():
    cluster = file_cluster()
    app = cluster.apps[0]
    app.automaton.mode = Mode.SETTLING
    with pytest.raises(ApplicationError):
        app.read("f")
    app.automaton.mode = Mode.NORMAL


def test_view_change_aborts_pending_writes():
    cluster = file_cluster()
    handle = cluster.apps[0].write("f", "doomed")
    cluster.crash(4)  # view change before quorum can ack... maybe
    assert cluster.settle(timeout=500)
    cluster.run_for(100)
    assert handle.status in ("committed", "aborted")  # never stuck pending


def test_listing_matches_reads():
    cluster = file_cluster()
    cluster.apps[0].write("a", 1)
    cluster.apps[0].write("b", 2)
    cluster.run_for(30)
    assert cluster.apps[3].listing() == {"a": 1, "b": 2}


# ---------------------------------------------------------------------------
# Parallel-lookup database
# ---------------------------------------------------------------------------


def test_lookup_returns_exactly_matching_records():
    cluster = db_cluster()
    for i in range(10):
        cluster.apps[0].insert(i, f"r{i}")
    cluster.run_for(30)
    handle = cluster.apps[1].lookup("big")
    cluster.run_for(30)
    assert handle.status == "complete"
    assert handle.results == {(i, f"r{i}") for i in range(5, 10)}


def test_responsibility_partition_has_no_gap_or_overlap():
    """The paper's S-mode motivation: a wrong division of responsibility
    would search some buckets twice or not at all."""
    cluster = db_cluster()
    slices = [cluster.apps[s].responsibility() for s in range(4)]
    union = set().union(*slices)
    assert union == set(range(64))  # no gap
    assert sum(len(s) for s in slices) == 64  # no overlap


def test_responsibility_rebalances_after_crash():
    cluster = db_cluster()
    cluster.crash(3)
    assert cluster.settle(timeout=500)
    cluster.run_for(200)
    live = [s for s in range(3)]
    slices = [cluster.apps[s].responsibility() for s in live]
    assert set().union(*slices) == set(range(64))
    assert sum(len(s) for s in slices) == 64


def test_lookup_aborted_while_settling():
    cluster = db_cluster()
    app = cluster.apps[0]
    app.automaton.mode = Mode.SETTLING
    handle = app.lookup("all")
    assert handle.status == "aborted"
    app.automaton.mode = Mode.NORMAL


def test_unknown_predicate_aborts():
    cluster = db_cluster()
    assert cluster.apps[0].lookup("no-such").status == "aborted"


def test_partitions_make_progress_and_merge_by_union():
    cluster = db_cluster()
    cluster.partition([[0, 1], [2, 3]])
    assert cluster.settle(timeout=500)
    cluster.run_for(200)
    cluster.apps[0].insert("L", 1)
    cluster.apps[2].insert("R", 2)
    cluster.run_for(30)
    cluster.heal()
    assert cluster.settle(timeout=500)
    cluster.run_for(300)
    handle = cluster.apps[1].lookup("all")
    cluster.run_for(40)
    assert handle.status == "complete"
    keys = {k for k, _ in handle.results}
    assert {"L", "R"} <= keys


# ---------------------------------------------------------------------------
# Lock manager
# ---------------------------------------------------------------------------


def test_acquire_grant_release_cycle():
    cluster = lock_cluster()
    handle = cluster.apps[1].acquire()
    cluster.run_for(30)
    assert handle.status == "granted"
    assert cluster.apps[1].i_hold_lock()
    cluster.apps[1].release()
    cluster.run_for(30)
    assert all(cluster.apps[s].holder is None for s in range(5))


def test_mutual_exclusion_within_view():
    cluster = lock_cluster()
    first = cluster.apps[1].acquire()
    cluster.run_for(30)
    second = cluster.apps[2].acquire()
    cluster.run_for(30)
    assert first.status == "granted"
    assert second.status == "denied"


def test_lock_state_replicated_to_all():
    cluster = lock_cluster()
    cluster.apps[4].acquire()
    cluster.run_for(30)
    holder = cluster.stack_at(4).pid
    assert all(cluster.apps[s].holder == holder for s in range(5))


def test_no_lock_service_in_minority():
    cluster = lock_cluster()
    cluster.partition([[0, 1, 2], [3, 4]])
    assert cluster.settle(timeout=500)
    cluster.run_for(150)
    assert cluster.apps[3].mode is Mode.REDUCED
    assert cluster.apps[3].manager is None
    assert cluster.apps[3].acquire().status == "aborted"


def test_at_most_one_holder_system_wide_across_partition():
    """Global mutual exclusion: only the majority can grant."""
    cluster = lock_cluster()
    cluster.partition([[0, 1, 2], [3, 4]])
    assert cluster.settle(timeout=500)
    cluster.run_for(150)
    majority_handle = cluster.apps[0].acquire()
    minority_handle = cluster.apps[3].acquire()
    cluster.run_for(50)
    granted = [h for h in (majority_handle, minority_handle) if h.status == "granted"]
    assert len(granted) == 1
    assert majority_handle.status == "granted"


def test_holder_crash_releases_lock_on_view_change():
    cluster = lock_cluster()
    cluster.apps[2].acquire()
    cluster.run_for(30)
    cluster.crash(2)
    assert cluster.settle(timeout=500)
    cluster.run_for(200)
    assert cluster.apps[0].holder is None
    follow_up = cluster.apps[1].acquire()
    cluster.run_for(30)
    assert follow_up.status == "granted"


def test_manager_is_least_member_and_changes_on_its_crash():
    cluster = lock_cluster()
    assert cluster.apps[1].manager == cluster.stack_at(0).pid
    cluster.crash(0)
    assert cluster.settle(timeout=500)
    cluster.run_for(250)
    assert cluster.apps[1].mode is Mode.NORMAL
    assert cluster.apps[1].manager == cluster.stack_at(1).pid


def test_lock_survives_heal_with_transfer():
    cluster = lock_cluster()
    cluster.partition([[0, 1, 2], [3, 4]])
    assert cluster.settle(timeout=500)
    cluster.run_for(150)
    cluster.apps[1].acquire()
    cluster.run_for(30)
    holder = cluster.stack_at(1).pid
    cluster.heal()
    assert cluster.settle(timeout=500)
    cluster.run_for(300)
    assert all(cluster.apps[s].holder == holder for s in range(5))
    assert all(cluster.apps[s].mode is Mode.NORMAL for s in range(5))


def test_db_merge_drops_retired_incarnation_offers():
    """Regression: a retired incarnation's stale offer (carried by a
    donor cluster that never merged it) must not shadow records the
    site's live incarnation overwrote — even when the stale offer
    carries a higher state version."""
    from repro.core.group_object import AppStateOffer
    from repro.types import ProcessId

    db = ParallelLookupDatabase(PREDICATES)
    stale = AppStateOffer(
        ProcessId(3, 0), {"x": "old", "only-old": 1}, version=9, last_epoch=1
    )
    live = AppStateOffer(
        ProcessId(3, 1), {"x": "new"}, version=2, last_epoch=3
    )
    peer = AppStateOffer(ProcessId(0, 0), {"y": 2}, version=5, last_epoch=3)
    merged = db.merge_app_states([stale, live, peer])
    assert merged["x"] == "new"
    assert merged["y"] == 2
    assert "only-old" not in merged


def test_db_crash_recover_partition_merge_keeps_newest_writes():
    """The shadowing schedule end to end: crash, recover, diverge in a
    partition, merge — the recovered incarnation's overwrite wins."""
    cluster = db_cluster()
    cluster.apps[0].insert("x", "v1")
    cluster.run_for(30)
    cluster.partition([[0, 1], [2, 3]])
    assert cluster.settle(timeout=500)
    cluster.run_for(200)
    cluster.crash(3)
    cluster.run_for(100)
    cluster.recover(3)
    assert cluster.settle(timeout=1000)
    cluster.run_for(200)
    cluster.app_at(3).insert("x", "v2")  # the live incarnation overwrites
    cluster.app_at(0).insert("left", 1)
    cluster.run_for(50)
    cluster.heal()
    assert cluster.settle(timeout=2000)
    cluster.run_for(300)
    for site in range(4):
        records = cluster.app_at(site).records
        assert records.get("x") == "v2", f"site {site}: {records.get('x')!r}"
        assert records.get("left") == 1
