"""Direct tests of the e-view manager's state machine."""

from __future__ import annotations

import pytest

from repro.errors import EnrichedViewError
from repro.evs.eview import EvDelta
from repro.evs.messages import EvChange, EvReq
from repro.types import SubviewId, SvSetId, ViewId, ProcessId

from tests.conftest import settled_cluster


def test_out_of_order_changes_are_buffered_until_contiguous():
    cluster = settled_cluster(3)
    stack = cluster.stack_at(1)  # a non-coordinator
    manager = stack.evs
    view_id = stack.current_view_id()
    epoch = view_id.epoch
    ssids = sorted((ss.ssid for ss in manager.structure.svsets), key=str)
    delta2 = EvDelta(2, "svset", frozenset(ssids[:2]),
                     new_svset=SvSetId(epoch, stack.pid, 2))
    delta1 = EvDelta(1, "svset", frozenset(ssids[1:3]),
                     new_svset=SvSetId(epoch, stack.pid, 1))
    manager.on_change(stack.pid, EvChange(view_id, delta2))
    assert manager.applied_seq == 0  # seq 2 waits for seq 1
    manager.on_change(stack.pid, EvChange(view_id, delta1))
    assert manager.applied_seq == 2  # both applied, in order


def test_changes_from_other_views_are_ignored():
    cluster = settled_cluster(3)
    stack = cluster.stack_at(0)
    manager = stack.evs
    foreign = ViewId(999, stack.pid)
    delta = EvDelta(1, "svset", frozenset(),
                    new_svset=SvSetId(999, stack.pid, 1))
    manager.on_change(stack.pid, EvChange(foreign, delta))
    assert manager.applied_seq == 0


def test_suspension_blocks_application_until_replay():
    cluster = settled_cluster(3)
    stack = cluster.stack_at(0)
    manager = stack.evs
    view_id = stack.current_view_id()
    ssids = sorted((ss.ssid for ss in manager.structure.svsets), key=str)
    delta = EvDelta(1, "svset", frozenset(ssids[:2]),
                    new_svset=SvSetId(view_id.epoch, stack.pid, 1))
    manager.suspend()
    manager.on_change(stack.pid, EvChange(view_id, delta))
    assert manager.applied_seq == 0  # suspended: buffered only
    manager.replay((delta,), upto=1)
    assert manager.applied_seq == 1  # the replay applied the tail


def test_replay_is_idempotent_and_bounded():
    cluster = settled_cluster(3)
    stack = cluster.stack_at(0)
    manager = stack.evs
    view_id = stack.current_view_id()
    ssids = sorted((ss.ssid for ss in manager.structure.svsets), key=str)
    d1 = EvDelta(1, "svset", frozenset(ssids[:2]),
                 new_svset=SvSetId(view_id.epoch, stack.pid, 1))
    d2 = EvDelta(2, "subview", frozenset(),
                 new_subview=SubviewId(view_id.epoch, stack.pid, 2))
    manager.suspend()
    manager.replay((d1, d2), upto=1)
    assert manager.applied_seq == 1  # upto bound respected
    manager.replay((d1, d2), upto=1)
    assert manager.applied_seq == 1  # idempotent


def test_requests_are_dropped_by_non_coordinators():
    cluster = settled_cluster(3)
    follower = cluster.stack_at(2)
    assert follower.view.coordinator != follower.pid
    request = EvReq(
        follower.pid,
        follower.current_view_id(),
        "svset",
        frozenset(ss.ssid for ss in follower.eview.structure.svsets),
    )
    before = follower.evs.applied_seq
    follower.evs.on_request(follower.pid, request)  # wrong process: no-op
    cluster.run_for(10)
    assert follower.evs.applied_seq == before


def test_requests_from_stale_views_are_dropped_by_coordinator():
    cluster = settled_cluster(3)
    lead = cluster.stack_at(0)
    stale = EvReq(lead.pid, ViewId(0, lead.pid), "svset", frozenset())
    lead.evs.on_request(lead.pid, stale)
    cluster.run_for(10)
    assert lead.evs.applied_seq == 0


def test_requests_during_flush_are_dropped():
    cluster = settled_cluster(3)
    lead = cluster.stack_at(0)
    lead.evs.suspend()
    request = EvReq(
        lead.pid,
        lead.current_view_id(),
        "svset",
        frozenset(ss.ssid for ss in lead.eview.structure.svsets),
    )
    lead.evs.on_request(lead.pid, request)
    assert lead.evs.applied_seq == 0
    lead.evs.suspended = False  # restore for teardown sanity


def test_flush_snapshot_shape():
    cluster = settled_cluster(3)
    manager = cluster.stack_at(0).evs
    seq, structure, log = manager.flush_snapshot()
    assert seq == 0
    assert log == ()
    structure.validate(cluster.stack_at(0).view.members)


def test_merge_before_first_view_raises():
    from repro.evs.manager import EViewManager

    class FakeStack:
        pid = ProcessId(0)

    manager = EViewManager(FakeStack())  # type: ignore[arg-type]
    with pytest.raises(EnrichedViewError):
        manager.subview_merge([])
    with pytest.raises(EnrichedViewError):
        manager.flush_snapshot()
    with pytest.raises(EnrichedViewError):
        _ = manager.structure
