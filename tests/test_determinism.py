"""Determinism: the same configuration must produce the identical
execution, event for event — the property the whole test methodology
rests on (any failing adversarial run is replayable)."""

from __future__ import annotations

import io

from repro.apps.replicated_file import ReplicatedFile
from repro.bench.harness import run_with_schedule
from repro.runtime.cluster import Cluster, ClusterConfig
from repro.net.latency import UniformLatency
from repro.trace.export import dump_trace
from repro.workload.generator import RandomFaultGenerator


def _run_once(seed: int) -> str:
    gen = RandomFaultGenerator(n_sites=4, seed=seed, duration=250)
    votes = {s: 1 for s in range(4)}
    cluster = run_with_schedule(
        4,
        gen.generate(),
        app_factory=lambda pid: ReplicatedFile(votes),
        config=ClusterConfig(seed=seed, latency=UniformLatency(0.5, 2.5)),
        tail=gen.settle_tail,
    )
    buffer = io.StringIO()
    dump_trace(cluster.recorder, buffer)
    return buffer.getvalue()


def test_identical_seed_identical_trace():
    assert _run_once(3) == _run_once(3)


def test_different_seed_different_trace():
    assert _run_once(3) != _run_once(4)


def test_scheduler_time_identical_across_runs():
    durations = []
    for _ in range(2):
        cluster = Cluster(5, config=ClusterConfig(seed=9))
        cluster.settle(timeout=400)
        cluster.stack_at(0).multicast("x")
        cluster.run_for(50)
        durations.append((cluster.now, cluster.scheduler.events_run))
    assert durations[0] == durations[1]


def test_fault_generator_stable_under_weight_dict_order():
    a = RandomFaultGenerator(
        n_sites=4, seed=5,
        weights={"crash": 1.0, "recover": 1.5, "partition": 1.0, "heal": 1.5},
    ).generate()
    b = RandomFaultGenerator(
        n_sites=4, seed=5,
        weights={"heal": 1.5, "partition": 1.0, "recover": 1.5, "crash": 1.0},
    ).generate()
    assert a.actions == b.actions
