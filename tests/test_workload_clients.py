"""Tests for the client workload drivers."""

from __future__ import annotations

from repro.apps.lock_manager import MajorityLockManager
from repro.apps.replicated_db import ParallelLookupDatabase
from repro.apps.replicated_file import ReplicatedFile
from repro.runtime.cluster import Cluster, ClusterConfig
from repro.workload.clients import (
    FileClient,
    LockClient,
    MulticastClient,
    QueryClient,
)

from tests.conftest import assert_all_properties, settled_cluster


def test_multicast_client_generates_traffic():
    cluster = settled_cluster(3)
    client = MulticastClient(cluster, interval=8.0).start()
    cluster.run_for(100)
    assert client.stats.succeeded > 20
    assert client.stats.success_rate > 0.9
    assert len(cluster.recorder.deliveries()) >= client.stats.succeeded


def test_multicast_client_counts_rejections_during_flush():
    cluster = settled_cluster(3)
    client = MulticastClient(cluster, interval=5.0).start()
    cluster.run_for(30)
    cluster.crash(2)  # triggers flushing windows
    cluster.run_for(100)
    assert client.stats.attempted > client.stats.succeeded or (
        client.stats.rejected == 0
    )
    assert_all_properties(cluster.recorder)


def test_client_stop_halts_traffic():
    cluster = settled_cluster(2)
    client = MulticastClient(cluster, interval=5.0).start()
    cluster.run_for(30)
    count = client.stats.attempted
    client.stop()
    cluster.run_for(50)
    assert client.stats.attempted == count


def test_file_client_commits_and_converges():
    votes = {s: 1 for s in range(4)}
    cluster = Cluster(
        4, app_factory=lambda pid: ReplicatedFile(votes),
        config=ClusterConfig(seed=1),
    )
    assert cluster.settle(timeout=500)
    cluster.run_for(150)
    client = FileClient(cluster, interval=12.0).start()
    cluster.run_for(200)
    client.stop()
    cluster.run_for(80)
    assert client.committed_handles()
    listings = [cluster.apps[s].listing() for s in range(4)]
    assert all(listing == listings[0] for listing in listings)


def test_lock_client_churns_without_violation():
    cluster = Cluster(
        5, app_factory=lambda pid: MajorityLockManager(range(5)),
        config=ClusterConfig(seed=2),
    )
    assert cluster.settle(timeout=500)
    cluster.run_for(150)
    client = LockClient(cluster, interval=10.0).start()
    cluster.run_for(200)
    grants = sum(cluster.apps[s].grants for s in range(5))
    assert grants > 5
    holders = {
        cluster.apps[s].holder for s in range(5)
        if cluster.apps[s].holder is not None
    }
    assert len(holders) <= 1


def test_query_client_completes_lookups():
    cluster = Cluster(
        4,
        app_factory=lambda pid: ParallelLookupDatabase({"all": lambda k, v: True}),
        config=ClusterConfig(seed=3),
    )
    assert cluster.settle(timeout=500)
    cluster.run_for(200)
    client = QueryClient(cluster, interval=14.0).start()
    cluster.run_for(200)
    assert client.stats.succeeded > 5
    assert client.completed_lookups > 3
