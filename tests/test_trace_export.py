"""Tests for trace export/import and the happens-before cut checker."""

from __future__ import annotations

import io

import pytest

from repro.errors import ReproError
from repro.trace.checks import check_cut_consistency, check_view_synchrony
from repro.trace.events import DeliveryEvent, EViewChangeEvent, MulticastEvent
from repro.trace.export import dump_trace, event_from_json, event_to_json, load_trace
from repro.trace.recorder import TraceRecorder
from repro.types import MessageId, ProcessId, SubviewId, SvSetId, ViewId

from tests.conftest import settled_cluster

P0, P1 = ProcessId(0), ProcessId(1)
V1 = ViewId(1, P0)
M1 = MessageId(P0, V1, 1)


def test_round_trip_of_every_event_type():
    cluster = settled_cluster(3)
    cluster.stack_at(0).multicast("payload")
    cluster.run_for(20)
    cluster.crash(2)
    cluster.settle(timeout=500)
    cluster.recover(2)
    cluster.settle(timeout=500)
    buffer = io.StringIO()
    count = dump_trace(cluster.recorder, buffer)
    assert count == len(cluster.recorder.events)
    buffer.seek(0)
    loaded = load_trace(buffer)
    assert len(loaded) == count
    for original, restored in zip(cluster.recorder.events, loaded.events):
        assert type(original) is type(restored)
        assert original.time == restored.time
        assert original.pid == restored.pid


def test_loaded_trace_passes_the_same_checks():
    cluster = settled_cluster(4)
    cluster.stack_at(1).multicast("x")
    cluster.run_for(20)
    cluster.partition([[0, 1], [2, 3]])
    cluster.settle(timeout=500)
    buffer = io.StringIO()
    dump_trace(cluster.recorder, buffer)
    buffer.seek(0)
    loaded = load_trace(buffer)
    for report in check_view_synchrony(loaded):
        assert report.ok, report.violations[:3]
        assert report.checked > 0 or report.name.startswith("Agreement")


def test_identifier_round_trip_exactness():
    event = DeliveryEvent(
        time=1.5, pid=P1, msg_id=M1, view_id=V1, sender_eview_seq=3
    )
    restored = event_from_json(event_to_json(event))
    assert restored == event


def test_structure_snapshot_round_trip():
    event = EViewChangeEvent(
        time=2.0,
        pid=P0,
        view_id=V1,
        eview_seq=1,
        subviews=((SubviewId(1, P0, 0), frozenset({P0, P1})),),
        svsets=((SvSetId(1, P0, 0), frozenset({SubviewId(1, P0, 0)})),),
    )
    restored = event_from_json(event_to_json(event))
    assert restored == event


def test_unknown_event_type_rejected():
    with pytest.raises(ReproError):
        event_from_json('{"type": "NoSuchEvent"}')


def test_blank_lines_ignored():
    rec = TraceRecorder()
    rec.record(MulticastEvent(time=0.0, pid=P0, msg_id=M1))
    buffer = io.StringIO()
    dump_trace(rec, buffer)
    text = "\n" + buffer.getvalue() + "\n\n"
    assert len(load_trace(io.StringIO(text))) == 1


# ---------------------------------------------------------------------------
# Happens-before cut consistency (the stronger 6.2 checker)
# ---------------------------------------------------------------------------


def test_cut_consistency_holds_on_real_runs():
    cluster = settled_cluster(4)
    lead = cluster.stack_at(0)
    lead.sv_set_merge([ss.ssid for ss in lead.eview.structure.svsets])
    lead.multicast("racing")
    cluster.run_for(30)
    report = check_cut_consistency(cluster.recorder)
    assert report.ok
    assert report.checked >= 1


def test_cut_consistency_flags_backward_crossing():
    """Synthetic trace: p0 applies change 1 then multicasts; p1 delivers
    the multicast BEFORE applying change 1 — an inconsistent cut."""
    rec = TraceRecorder()
    sub = ((SubviewId(1, P0, 0), frozenset({P0, P1})),)
    sets = ((SvSetId(1, P0, 0), frozenset({SubviewId(1, P0, 0)})),)
    rec.record(EViewChangeEvent(time=0, pid=P0, view_id=V1, eview_seq=0,
                                subviews=sub, svsets=sets))
    rec.record(EViewChangeEvent(time=0, pid=P1, view_id=V1, eview_seq=0,
                                subviews=sub, svsets=sets))
    rec.record(EViewChangeEvent(time=1, pid=P0, view_id=V1, eview_seq=1,
                                subviews=sub, svsets=sets))
    rec.record(MulticastEvent(time=2, pid=P0, msg_id=M1))
    rec.record(DeliveryEvent(time=3, pid=P1, msg_id=M1, view_id=V1,
                             sender_eview_seq=1))
    rec.record(EViewChangeEvent(time=4, pid=P1, view_id=V1, eview_seq=1,
                                subviews=sub, svsets=sets))
    report = check_cut_consistency(rec)
    assert not report.ok
    assert "crosses the cut" in report.violations[0]


def test_cut_consistency_allows_forward_crossing():
    """A message sent BEFORE the change and delivered after it is fine:
    the cut is still consistent (nothing crosses backwards)."""
    rec = TraceRecorder()
    sub = ((SubviewId(1, P0, 0), frozenset({P0, P1})),)
    sets = ((SvSetId(1, P0, 0), frozenset({SubviewId(1, P0, 0)})),)
    rec.record(EViewChangeEvent(time=0, pid=P0, view_id=V1, eview_seq=0,
                                subviews=sub, svsets=sets))
    rec.record(EViewChangeEvent(time=0, pid=P1, view_id=V1, eview_seq=0,
                                subviews=sub, svsets=sets))
    rec.record(MulticastEvent(time=1, pid=P0, msg_id=M1))
    rec.record(EViewChangeEvent(time=2, pid=P0, view_id=V1, eview_seq=1,
                                subviews=sub, svsets=sets))
    rec.record(EViewChangeEvent(time=3, pid=P1, view_id=V1, eview_seq=1,
                                subviews=sub, svsets=sets))
    rec.record(DeliveryEvent(time=4, pid=P1, msg_id=M1, view_id=V1,
                             sender_eview_seq=0))
    assert check_cut_consistency(rec).ok
