"""Tests for the discrete-event scheduler."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.scheduler import Scheduler


def test_starts_at_time_zero():
    assert Scheduler().now == 0.0


def test_events_run_in_time_order():
    sched = Scheduler()
    seen = []
    sched.at(5.0, seen.append, "b")
    sched.at(1.0, seen.append, "a")
    sched.at(9.0, seen.append, "c")
    sched.run()
    assert seen == ["a", "b", "c"]


def test_same_time_events_run_in_scheduling_order():
    sched = Scheduler()
    seen = []
    for tag in range(10):
        sched.at(3.0, seen.append, tag)
    sched.run()
    assert seen == list(range(10))


def test_now_advances_to_event_time():
    sched = Scheduler()
    times = []
    sched.at(2.5, lambda: times.append(sched.now))
    sched.at(7.0, lambda: times.append(sched.now))
    sched.run()
    assert times == [2.5, 7.0]
    assert sched.now == 7.0


def test_after_is_relative_to_now():
    sched = Scheduler()
    fired = []
    sched.at(10.0, lambda: sched.after(5.0, lambda: fired.append(sched.now)))
    sched.run()
    assert fired == [15.0]


def test_cancelled_event_does_not_fire():
    sched = Scheduler()
    seen = []
    event = sched.at(1.0, seen.append, "x")
    event.cancel()
    sched.run()
    assert seen == []


def test_cancel_is_idempotent():
    sched = Scheduler()
    event = sched.at(1.0, lambda: None)
    event.cancel()
    event.cancel()
    sched.run()


def test_run_until_stops_before_later_events():
    sched = Scheduler()
    seen = []
    sched.at(1.0, seen.append, "early")
    sched.at(100.0, seen.append, "late")
    sched.run(until=50.0)
    assert seen == ["early"]
    assert sched.now == 50.0
    sched.run()
    assert seen == ["early", "late"]


def test_run_for_advances_relative_duration():
    sched = Scheduler()
    sched.run_for(25.0)
    assert sched.now == 25.0
    sched.run_for(10.0)
    assert sched.now == 35.0


def test_run_until_advances_clock_even_when_queue_empty():
    sched = Scheduler()
    sched.run(until=42.0)
    assert sched.now == 42.0


def test_scheduling_into_the_past_raises():
    sched = Scheduler()
    sched.at(5.0, lambda: None)
    sched.run()
    with pytest.raises(SimulationError):
        sched.at(1.0, lambda: None)


def test_negative_delay_raises():
    sched = Scheduler()
    with pytest.raises(SimulationError):
        sched.after(-1.0, lambda: None)


def test_events_can_schedule_more_events():
    sched = Scheduler()
    seen = []

    def chain(n: int) -> None:
        seen.append(n)
        if n < 5:
            sched.after(1.0, chain, n + 1)

    sched.after(1.0, chain, 1)
    sched.run()
    assert seen == [1, 2, 3, 4, 5]
    assert sched.now == 5.0


def test_max_events_guards_against_livelock():
    sched = Scheduler()

    def forever() -> None:
        sched.after(1.0, forever)

    sched.after(1.0, forever)
    with pytest.raises(SimulationError):
        sched.run(max_events=100)


def test_step_returns_false_when_empty():
    sched = Scheduler()
    assert sched.step() is False
    sched.at(1.0, lambda: None)
    assert sched.step() is True
    assert sched.step() is False


def test_pending_counts_only_live_events():
    sched = Scheduler()
    keep = sched.at(1.0, lambda: None)
    drop = sched.at(2.0, lambda: None)
    drop.cancel()
    assert sched.pending == 1
    assert keep is not None


def test_events_run_counter():
    sched = Scheduler()
    for i in range(4):
        sched.at(float(i + 1), lambda: None)
    sched.run()
    assert sched.events_run == 4


def test_args_are_passed_to_callback():
    sched = Scheduler()
    seen = []
    sched.at(1.0, lambda a, b: seen.append((a, b)), 1, "two")
    sched.run()
    assert seen == [(1, "two")]
