"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


def test_demo_command_runs_clean(capsys):
    assert main(["demo", "--sites", "3"]) == 0
    out = capsys.readouterr().out
    assert "group formed" in out
    assert "partitioned" in out
    assert "healed" in out
    assert "OK" in out


def test_run_command_with_file_app(capsys):
    assert main(["run", "--sites", "4", "--seed", "2", "--app", "file",
                 "--duration", "200"]) == 0
    out = capsys.readouterr().out
    assert "run summary" in out
    assert "settled" in out
    assert "VIOLATIONS" not in out


def test_run_command_with_loss(capsys):
    assert main(["run", "--sites", "3", "--seed", "1", "--loss", "0.02",
                 "--duration", "150"]) == 0


def test_check_command(capsys):
    assert main(["check", "--runs", "2", "--sites", "4",
                 "--duration", "150"]) == 0
    out = capsys.readouterr().out
    assert "2/2 seeds clean" in out


def test_experiments_command_lists_all(capsys):
    assert main(["experiments"]) == 0
    out = capsys.readouterr().out
    for exp_id in ("E1", "E5", "E10", "A1-A3"):
        assert exp_id in out


def test_parser_rejects_unknown_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["no-such-command"])


def test_parser_rejects_unknown_app():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "--app", "nope"])


def test_export_and_recheck_round_trip(tmp_path, capsys):
    trace_file = tmp_path / "trace.jsonl"
    assert main(["run", "--sites", "3", "--seed", "4", "--duration", "150",
                 "--export", str(trace_file)]) == 0
    assert trace_file.exists()
    capsys.readouterr()
    assert main(["recheck", str(trace_file)]) == 0
    out = capsys.readouterr().out
    assert "loaded" in out
    assert "VIOLATIONS" not in out


def test_recheck_timeline_option(tmp_path, capsys):
    trace_file = tmp_path / "trace.jsonl"
    assert main(["run", "--sites", "3", "--seed", "5", "--duration", "120",
                 "--export", str(trace_file)]) == 0
    capsys.readouterr()
    assert main(["recheck", str(trace_file), "--timeline"]) == 0
    out = capsys.readouterr().out
    assert "p0.0" in out  # the timeline lanes rendered


def test_run_runtime_sim_output_matches_default(capsys):
    assert main(["run", "--sites", "3", "--seed", "5", "--duration", "150"]) == 0
    default_out = capsys.readouterr().out
    assert main(["run", "--runtime", "sim", "--sites", "3", "--seed", "5",
                 "--duration", "150"]) == 0
    explicit_out = capsys.readouterr().out
    assert explicit_out == default_out  # --runtime sim is the exact default
    assert "virtual time" in default_out


def test_check_accepts_runtime_flag(capsys):
    assert main(["check", "--runtime", "sim", "--runs", "1", "--sites", "3",
                 "--duration", "150"]) == 0
    assert "1/1 seeds clean" in capsys.readouterr().out


def test_parser_rejects_unknown_runtime():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "--runtime", "telepathy"])


def test_run_metrics_export(tmp_path, capsys):
    from tests.prom_parser import parse, validate

    prom = tmp_path / "out.prom"
    jsonl = tmp_path / "out.jsonl"
    assert main(["run", "--sites", "3", "--seed", "6", "--duration", "150",
                 "--metrics", str(prom), "--metrics-jsonl", str(jsonl)]) == 0
    out = capsys.readouterr().out
    assert "exported metrics (Prometheus text)" in out
    assert "exported metrics (JSONL)" in out
    exposition = parse(prom.read_text())
    validate(exposition)
    assert "view_changes_total" in exposition.names()
    assert jsonl.read_text().count("\n") > 1


def test_obs_report_command(tmp_path, capsys):
    from tests.prom_parser import parse, validate

    prom = tmp_path / "fig2.prom"
    assert main(["obs", "report", "--runtime", "sim",
                 "--metrics", str(prom)]) == 0
    out = capsys.readouterr().out
    assert "observability report" in out
    assert "trace vs live metrics" in out
    assert "multicast_delivery_latency" in out
    exposition = parse(prom.read_text())
    validate(exposition)
    assert exposition.helps  # registry help texts travel into the export


def test_obs_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["obs"])


def test_obs_watch_parses_targets():
    args = build_parser().parse_args(
        ["obs", "watch", "127.0.0.1:7400", ":7401", "--count", "1"]
    )
    assert args.func.__name__ == "cmd_obs_watch"
    assert args.targets == ["127.0.0.1:7400", ":7401"]


def test_fuzz_run_command_clean_campaign(tmp_path, capsys):
    corpus = tmp_path / "corpus"
    assert main(["fuzz", "run", "--iterations", "3", "--seed", "1",
                 "--corpus", str(corpus)]) == 0
    out = capsys.readouterr().out
    assert "fuzz campaign" in out
    assert "failing runs" in out
    assert list(corpus.glob("*.json"))  # novel entries persisted


def test_fuzz_corpus_and_replay_roundtrip(tmp_path, capsys):
    corpus = tmp_path / "corpus"
    assert main(["fuzz", "run", "--iterations", "2", "--seed", "5",
                 "--corpus", str(corpus)]) == 0
    capsys.readouterr()
    assert main(["fuzz", "corpus", str(corpus)]) == 0
    out = capsys.readouterr().out
    assert "entries" in out
    entry = sorted(corpus.glob("*.json"))[0]
    assert main(["fuzz", "replay", str(entry)]) == 0
    out = capsys.readouterr().out
    assert "reproduce" in out


def test_fuzz_replay_checked_in_reproducer(capsys):
    from pathlib import Path

    reproducer = (
        Path(__file__).resolve().parents[1]
        / "corpus" / "lost_settlement_min.json"
    )
    assert main(["fuzz", "replay", str(reproducer)]) == 0
    out = capsys.readouterr().out
    assert "LostSettlement" in out


def test_fuzz_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["fuzz"])
