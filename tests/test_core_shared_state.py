"""Tests for the shared-state taxonomy and the three classifiers."""

from __future__ import annotations

import pytest

from repro.core.classify import classify_enriched, classify_flat, ground_truth
from repro.core.shared_state import (
    Diagnosis,
    DiagnosisStats,
    Problem,
    diagnose,
    problems_from_sets,
)
from repro.errors import ClassificationError
from repro.evs.eview import EView, EViewStructure, Subview, SvSet
from repro.gms.view import View
from repro.types import ProcessId, SubviewId, SvSetId, ViewId


def pid(site: int) -> ProcessId:
    return ProcessId(site)


VID = ViewId(10, pid(0))


# ---------------------------------------------------------------------------
# Necessary conditions (Section 4)
# ---------------------------------------------------------------------------


def test_transfer_needs_both_sets_nonempty():
    assert problems_from_sets(True, True, 1) == {Problem.STATE_TRANSFER}


def test_creation_needs_empty_s_n():
    assert problems_from_sets(False, True, 0) == {Problem.STATE_CREATION}


def test_merging_needs_two_clusters():
    assert problems_from_sets(True, False, 2) == {Problem.STATE_MERGING}


def test_merging_and_transfer_can_cooccur():
    """Section 4: 'the state merging and state transfer problems present
    themselves together'."""
    assert problems_from_sets(True, True, 2) == {
        Problem.STATE_MERGING,
        Problem.STATE_TRANSFER,
    }


def test_no_problem_when_single_cluster_and_no_stragglers():
    assert problems_from_sets(True, False, 1) == frozenset()


def test_diagnose_builds_clusters_by_previous_view():
    v_a = ViewId(5, pid(0))
    v_b = ViewId(6, pid(3))
    prev_modes = {pid(0): "N", pid(1): "N", pid(3): "N", pid(4): "R"}
    prev_views = {pid(0): v_a, pid(1): v_a, pid(3): v_b, pid(4): v_b}
    diagnosis = diagnose(VID, prev_modes, prev_views)
    assert diagnosis.s_n == {pid(0), pid(1), pid(3)}
    assert diagnosis.s_r == {pid(4)}
    assert len(diagnosis.clusters) == 2
    assert diagnosis.label == "merging+transfer"


def test_diagnose_settling_processes_count_as_s_r():
    prev_modes = {pid(0): "S", pid(1): "N"}
    prev_views = {pid(0): VID, pid(1): VID}
    diagnosis = diagnose(ViewId(11, pid(0)), prev_modes, prev_views)
    assert pid(0) in diagnosis.s_r
    assert diagnosis.label == "transfer"


def test_diagnosis_label_none():
    prev_modes = {pid(0): "N", pid(1): "N"}
    prev_views = {pid(0): VID, pid(1): VID}
    assert diagnose(ViewId(11, pid(0)), prev_modes, prev_views).label == "none"


def test_stats_aggregation():
    stats = DiagnosisStats()
    stats.add(diagnose(VID, {pid(0): "R"}, {pid(0): VID}))
    stats.add(diagnose(VID, {pid(0): "R"}, {pid(0): VID}))
    assert stats.total == 2
    assert stats.by_label == {"creation": 2}


# ---------------------------------------------------------------------------
# Flat-view classification (ambiguity sets)
# ---------------------------------------------------------------------------


def test_flat_singleton_view_is_decidable():
    assert classify_flat("N", 1) == frozenset({"none"})
    assert classify_flat("R", 1) == frozenset({"creation"})


def test_flat_from_r_cannot_distinguish_transfer_from_creation():
    """The paper's Section 4 example: after R -> S the process knows S_R
    is non-empty but cannot tell whether S_N is."""
    labels = classify_flat("R", 3, exclusive_full=True)
    assert "transfer" in labels
    assert "creation" in labels
    assert len(labels) >= 2


def test_flat_from_n_with_exclusive_quorum_excludes_merging():
    labels = classify_flat("N", 4, exclusive_full=True)
    assert not any("merging" in label for label in labels)
    assert "none" in labels  # everyone might have been N with me
    assert "transfer" in labels


def test_flat_without_exclusive_full_admits_merging():
    labels = classify_flat("N", 4, exclusive_full=False)
    assert any("merging" in label for label in labels)


def test_flat_rejects_garbage():
    with pytest.raises(ClassificationError):
        classify_flat("X", 3)
    with pytest.raises(ClassificationError):
        classify_flat("N", 0)


# ---------------------------------------------------------------------------
# Enriched-view classification (Section 6.2)
# ---------------------------------------------------------------------------


def _eview(subview_groups, svset_grouping=None) -> EView:
    """Build an e-view from site groups, e.g. [(0,1,2), (3,)]."""
    epoch = 10
    subviews = []
    for index, group in enumerate(subview_groups):
        subviews.append(
            Subview(
                SubviewId(epoch, pid(group[0]), index),
                frozenset(pid(s) for s in group),
            )
        )
    if svset_grouping is None:
        svset_grouping = [[i] for i in range(len(subviews))]
    svsets = []
    for index, indices in enumerate(svset_grouping):
        svsets.append(
            SvSet(
                SvSetId(epoch, pid(subview_groups[indices[0]][0]), index),
                frozenset(subviews[i].sid for i in indices),
            )
        )
    members = frozenset(p for sv in subviews for p in sv.members)
    view = View(ViewId(epoch, min(members)), members)
    return EView(view, EViewStructure(tuple(subviews), tuple(svsets)))


def majority_of_five(members) -> bool:
    return 2 * len(members) > 5


def test_enriched_scenario_i_state_transfer():
    """Case (i): a majority subview exists -> S_N identified exactly."""
    eview = _eview([(0, 1, 2), (3,)])
    verdict = classify_enriched(eview, majority_of_five)
    assert verdict.label == "transfer"
    assert verdict.s_n == {pid(0), pid(1), pid(2)}
    assert verdict.s_r == {pid(3)}
    assert len(verdict.donor_subviews) == 1


def test_enriched_scenario_ii_creation_in_progress():
    """Case (ii): no majority subview, but a majority sv-set -> a state
    creation was running; wait for it rather than disturb it."""
    eview = _eview([(0,), (1,), (2,)], svset_grouping=[[0, 1, 2]])
    verdict = classify_enriched(eview, majority_of_five)
    assert verdict.label == "creation"
    assert verdict.in_progress_svset is not None


def test_enriched_scenario_iii_creation_from_scratch():
    """Case (iii): neither subview nor sv-set qualifies -> fresh start."""
    eview = _eview([(0,), (1,), (2,)])
    verdict = classify_enriched(eview, majority_of_five)
    assert verdict.label == "creation"
    assert verdict.in_progress_svset is None


def test_enriched_detects_merging_clusters():
    always = lambda members: bool(members)
    eview = _eview([(0, 1), (2, 3)])
    verdict = classify_enriched(eview, always)
    assert verdict.label == "merging"
    assert len(verdict.donor_subviews) == 2


def test_enriched_merging_plus_transfer():
    always = lambda members: len(members) >= 2
    eview = _eview([(0, 1), (2, 3), (4,)])
    verdict = classify_enriched(eview, always)
    assert verdict.label == "merging+transfer"
    assert verdict.s_r == {pid(4)}


def test_enriched_no_problem_single_full_subview():
    eview = _eview([(0, 1, 2)])
    verdict = classify_enriched(eview, majority_of_five)
    assert verdict.label == "none"
    assert verdict.problems == frozenset()


def test_ground_truth_requires_installers():
    from repro.trace.recorder import TraceRecorder

    with pytest.raises(ClassificationError):
        ground_truth(TraceRecorder(), VID)
