"""Smoke tests: every example script must run clean end to end.

The examples are deliverables, not decoration — each exercises a real
scenario from the paper and asserts its outcome internally, so running
them is a meaningful integration pass.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_is_populated():
    assert len(EXAMPLES) >= 5


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs_clean(name):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples narrate what they do"
