"""Direct tests of the per-view channel machinery."""

from __future__ import annotations

import pytest

from repro.errors import ViewSynchronyError
from repro.types import Message, MessageId, ViewId

from tests.conftest import settled_cluster


def _mk_message(stack, seqno: int, payload="x", eview_seq=0, view_id=None):
    vid = view_id or stack.current_view_id()
    return Message(MessageId(stack.pid, vid, seqno), payload, eview_seq)


def test_future_view_messages_buffer_until_install():
    cluster = settled_cluster(2)
    receiver = cluster.stack_at(0)
    sender = cluster.stack_at(1)
    future_vid = ViewId(receiver.view.epoch + 1, receiver.pid)
    early = Message(MessageId(sender.pid, future_vid, 1), "early")
    receiver.channels.on_app_message(early)
    assert early.msg_id not in receiver.channels.received
    assert future_vid in receiver.channels._future


def test_stale_view_messages_dropped():
    cluster = settled_cluster(2)
    receiver = cluster.stack_at(0)
    sender = cluster.stack_at(1)
    old_vid = ViewId(0, sender.pid)
    stale = Message(MessageId(sender.pid, old_vid, 1), "stale")
    receiver.channels.on_app_message(stale)
    assert stale.msg_id not in receiver.channels.received
    assert not receiver.channels._future


def test_fifo_gap_blocks_delivery_until_filled():
    cluster = settled_cluster(2)
    receiver = cluster.stack_at(0)
    sender = cluster.stack_at(1)
    got = []
    receiver.app.on_message = lambda s, p, m: got.append(p)
    m2 = _mk_message(sender, 2, "second")
    m1 = _mk_message(sender, 1, "first")
    receiver.channels.on_app_message(m2)
    assert got == []  # gap: waiting for seqno 1
    receiver.channels.on_app_message(m1)
    assert got == ["first", "second"]


def test_eview_gate_blocks_until_change_applied():
    cluster = settled_cluster(3)
    receiver = cluster.stack_at(1)
    sender = cluster.stack_at(2)
    got = []
    receiver.app.on_message = lambda s, p, m: got.append(p)
    gated = _mk_message(sender, 1, "gated", eview_seq=5)
    receiver.channels.on_app_message(gated)
    assert got == []  # receiver has applied no e-view changes
    assert gated.msg_id in receiver.channels.received  # held, not lost


def test_suspend_buffers_outgoing_multicasts():
    cluster = settled_cluster(2)
    stack = cluster.stack_at(0)
    stack.channels.suspend()
    assert stack.multicast("held") is None
    assert stack.channels.pending_sends == [("held", None)]
    stack.channels.suspended = False
    stack.channels.flush_pending_sends()
    assert stack.channels.pending_sends == []
    cluster.run_for(10)


def test_deliver_plan_rejects_cross_view_messages():
    cluster = settled_cluster(2)
    stack = cluster.stack_at(0)
    alien_vid = ViewId(stack.view.epoch + 7, stack.pid)
    alien = Message(MessageId(stack.pid, alien_vid, 1), "alien")
    with pytest.raises(ViewSynchronyError):
        stack.channels.deliver_plan((alien,))


def test_deliver_plan_skips_already_delivered():
    cluster = settled_cluster(2)
    stack = cluster.stack_at(0)
    got = []
    stack.app.on_message = lambda s, p, m: got.append(p)
    msg = _mk_message(stack, 1, "once")
    stack.channels.on_app_message(msg)
    assert got == ["once"]
    stack.channels.deliver_plan((msg,))
    assert got == ["once"]  # no duplicate


def test_multicast_before_any_view_raises():
    from repro.vsync.channel import ViewChannels

    class FakeStack:
        pass

    channels = ViewChannels(FakeStack())  # type: ignore[arg-type]
    with pytest.raises(ViewSynchronyError):
        channels.multicast("too-early")


def test_duplicate_receive_is_ignored():
    cluster = settled_cluster(2)
    stack = cluster.stack_at(0)
    got = []
    stack.app.on_message = lambda s, p, m: got.append(p)
    msg = _mk_message(cluster.stack_at(1), 1, "dup")
    stack.channels.on_app_message(msg)
    stack.channels.on_app_message(msg)
    assert got == ["dup"]


def test_install_clears_future_of_superseded_views():
    cluster = settled_cluster(3)
    receiver = cluster.stack_at(0)
    sender = cluster.stack_at(1)
    lower = ViewId(receiver.view.epoch + 1, sender.pid)
    higher = ViewId(receiver.view.epoch + 9, sender.pid)
    receiver.channels.on_app_message(Message(MessageId(sender.pid, lower, 1), "a"))
    receiver.channels.on_app_message(Message(MessageId(sender.pid, higher, 1), "b"))
    assert len(receiver.channels._future) == 2
    # Force a view change (crash someone): installs an epoch above `lower`.
    cluster.crash(2)
    assert cluster.settle(timeout=500)
    assert lower not in receiver.channels._future  # superseded: dropped
