"""Tests for the versioned record store: semantics, durability, merges."""

from __future__ import annotations

import pytest

import repro.apps.versioned_store as vs_mod
from repro.apps.factories import app_factory
from repro.apps.versioned_store import (
    VersionedStore,
    prov_from_tuple,
    prov_tuple,
)
from repro.client.sim import SimStoreClient
from repro.core.versioning import Provenance, VersionEntry
from repro.fuzz.checkers import CheckContext, make_checkers, run_checkers
from repro.runtime.cluster import Cluster, ClusterConfig
from repro.types import ProcessId


def store_cluster(n: int = 5, seed: int = 0) -> Cluster:
    cluster = Cluster(
        n, app_factory=app_factory("store", n), config=ClusterConfig(seed=seed)
    )
    assert cluster.settle(timeout=500)
    cluster.run_for(100)
    return cluster


def provs_at(cluster: Cluster, site: int) -> set[tuple]:
    app = cluster.app_at(site)
    return {
        prov_tuple(e.prov) for chain in app.chains.values() for e in chain
    }


# ---------------------------------------------------------------------------
# Basic semantics through the client tier
# ---------------------------------------------------------------------------


def test_put_commits_with_token_and_reads_back() -> None:
    cluster = store_cluster()
    client = SimStoreClient(cluster, site=0, client_id="alice")
    put = client.put("k", "v1")
    assert put.ok and put.reply.prov is not None
    token = put.reply.prov
    # Read-your-writes against a *different* replica: either the write
    # already replicated there (ok) or the replica must refuse (retry),
    # never silently serve an older version.
    other = SimStoreClient(cluster, site=3, client_id="alice2")
    got = other.get("k", ryw=token)
    assert got.reply.status == "ok" and got.reply.value == "v1"
    assert got.reply.prov == token


def test_put_retry_is_exactly_once() -> None:
    cluster = store_cluster()
    app = cluster.app_at(0)
    done: list = []
    first = app.put("k", "v", client="c9", client_seq=1, on_done=done.append)
    cluster.run_for(100)
    assert first.status == "committed"
    # The client's resubmission of the same (client, client_seq) lands
    # on the original entry: same token, no new chain link.
    again = app.put("k", "v", client="c9", client_seq=1)
    assert again.status == "committed" and again.token == first.token
    assert len(app.chains["k"]) == 1


def test_history_returns_full_chain_oldest_first() -> None:
    cluster = store_cluster()
    client = SimStoreClient(cluster, site=1, client_id="h")
    for i in range(3):
        assert client.put("k", f"v{i}").ok
    res = cluster.app_at(2).history("k")
    assert res.status == "ok"
    assert [e.value for e in res.chain] == ["v0", "v1", "v2"]
    assert [e.prov for e in res.chain] == sorted(e.prov for e in res.chain)
    assert res.value == "v2"  # head doubles as the get() answer


def test_leader_is_least_view_member() -> None:
    cluster = store_cluster()
    assert cluster.app_at(3).leader() == ProcessId(0, 0)
    client = SimStoreClient(cluster, site=3, client_id="l", read_mode="leader")
    client.put("k", "v")
    got = client.get("k")
    # The dialed replica is not the leader: the client must have been
    # redirected there rather than served locally.
    assert got.reply.status == "ok"
    assert "not_leader" in got.retries


def test_prov_tuple_roundtrip() -> None:
    p = Provenance(7, ProcessId(3, 2), 41)
    assert prov_from_tuple(prov_tuple(p)) == p


# ---------------------------------------------------------------------------
# Durability: base + op log
# ---------------------------------------------------------------------------


def test_crash_recover_restores_chains_from_disk() -> None:
    cluster = store_cluster()
    client = SimStoreClient(cluster, site=2, client_id="d")
    tokens = [client.put(f"k{i}", i).reply.prov for i in range(5)]
    assert all(t is not None for t in tokens)
    before = provs_at(cluster, 2)
    cluster.crash(2)
    cluster.run_for(50)
    cluster.recover(2)
    assert cluster.settle(timeout=1000)
    cluster.run_for(100)
    assert provs_at(cluster, 2) >= before


def test_applies_append_to_op_log_not_full_base(monkeypatch) -> None:
    # The serving path must stay O(1) per write: applies append to the
    # op log; the full base is only rewritten at the compaction
    # threshold (or on adoption).
    cluster = store_cluster(n=3)
    app = cluster.app_at(0)
    baseline_base = app.stack.storage.read(vs_mod._CHAINS_KEY)
    client = SimStoreClient(cluster, site=0, client_id="log")
    assert client.put("k", "v").ok
    log = app.stack.storage.read(vs_mod._LOG_KEY)
    assert log and log[-1][0] == "k"
    assert isinstance(log[-1][1], VersionEntry)
    assert app.stack.storage.read(vs_mod._CHAINS_KEY) == baseline_base


def test_compaction_rewrites_base_and_resets_log(monkeypatch) -> None:
    monkeypatch.setattr(vs_mod, "_COMPACT_EVERY", 3)
    cluster = store_cluster(n=3)
    client = SimStoreClient(cluster, site=0, client_id="c")
    for i in range(4):
        assert client.put(f"k{i}", i).ok
    app = cluster.app_at(0)
    assert app._log_len < 3
    base = dict(app.stack.storage.read(vs_mod._CHAINS_KEY))
    assert len(base) >= 3
    # Recovery replays base + whatever the log holds past compaction.
    before = provs_at(cluster, 0)
    cluster.crash(0)
    cluster.run_for(50)
    cluster.recover(0)
    assert cluster.settle(timeout=1000)
    cluster.run_for(100)
    assert provs_at(cluster, 0) >= before


# ---------------------------------------------------------------------------
# Adoption and merge policies
# ---------------------------------------------------------------------------


def _entry(epoch: int, site: int, seq: int, value: str) -> VersionEntry:
    return VersionEntry(value, Provenance(epoch, ProcessId(site, 0), seq))


def test_adopt_state_unions_with_local_chains() -> None:
    # A put can apply between the moment this replica's settlement offer
    # was snapshotted and the moment the decision arrives; adoption must
    # keep it, not clobber it with the (older) decided snapshot.
    store = VersionedStore()
    local = _entry(3, 1, 1, "local-concurrent")
    decided = _entry(2, 0, 1, "decided")
    store.chains = {"k": (local,)}
    store.adopt_state({"k": (decided,), "other": (_entry(1, 2, 1, "x"),)})
    assert store.chains["k"] == (decided, local)
    assert "other" in store.chains
    # Idempotent: adopting the same decision again changes nothing.
    snapshot = dict(store.chains)
    store.adopt_state({"k": (decided,)})
    assert store.chains == snapshot


def test_merge_app_states_drops_retired_incarnations() -> None:
    from repro.core.group_object import AppStateOffer

    store = VersionedStore()
    stale = {"k": (_entry(1, 0, 1, "old"),)}
    live = {"k": (_entry(1, 0, 1, "old"), _entry(2, 0, 2, "new"))}
    other = {"k": (_entry(2, 1, 1, "peer"),)}
    offers = [
        AppStateOffer(ProcessId(0, 0), stale, version=9, last_epoch=1),
        AppStateOffer(ProcessId(0, 1), live, version=2, last_epoch=2),
        AppStateOffer(ProcessId(1, 0), other, version=3, last_epoch=2),
    ]
    merged = store.merge_app_states(offers)
    provs = {e.prov for e in merged["k"]}
    assert provs == {
        _entry(1, 0, 1, "").prov,
        _entry(2, 0, 2, "").prov,
        _entry(2, 1, 1, "").prov,
    }


# ---------------------------------------------------------------------------
# Partitions: provenance survives divergence (satellite property test)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_disjoint_partition_writes_all_survive_merge(seed: int) -> None:
    cluster = store_cluster(seed=seed)
    cluster.partition([[0, 1, 2], [3, 4]])
    cluster.run_for(400)  # let each side install its own view
    majority = SimStoreClient(cluster, site=0, client_id="maj")
    minority = SimStoreClient(cluster, site=3, client_id="min")
    acked: dict[tuple, tuple[str, object]] = {}
    for i in range(4):
        put = majority.put(f"shared{i % 2}", f"maj{i}")
        if put.ok:
            acked[put.reply.prov] = (f"shared{i % 2}", f"maj{i}")
        put = minority.put(f"shared{i % 2}", f"min{i}")
        if put.ok:
            acked[put.reply.prov] = (f"shared{i % 2}", f"min{i}")
    assert acked, "no write was acked in either partition"
    cluster.heal()
    assert cluster.settle(timeout=2000)
    cluster.run_for(300)
    # Every acked write survives on every live replica, with its value
    # recorded under the exact provenance it was acked with.
    for site in range(5):
        app = cluster.app_at(site)
        for prov, (key, value) in acked.items():
            chain = app.chains.get(key, ())
            match = [e for e in chain if prov_tuple(e.prov) == prov]
            assert match and match[0].value == value, (
                f"site {site} lost acked write {prov} on {key!r}"
            )
        for chain in app.chains.values():
            assert list(chain) == sorted(chain, key=lambda e: e.prov)


# ---------------------------------------------------------------------------
# Settlement write-loss regression (the canonical seed-7 schedule)
# ---------------------------------------------------------------------------


def test_no_acked_write_lost_across_crash_recover_partition_merge() -> None:
    from repro.workload.clients import StoreClient

    cluster = Cluster(
        5, app_factory=app_factory("store", 5), config=ClusterConfig(seed=7)
    )
    assert cluster.settle(timeout=500)
    client = StoreClient(cluster, interval=12.0)
    client.start()
    cluster.run_for(100)
    cluster.partition([[0, 1, 2], [3, 4]])
    cluster.run_for(200)
    cluster.crash(4)
    cluster.run_for(100)
    cluster.heal()
    cluster.recover(4)
    assert cluster.settle(timeout=3000)
    cluster.run_for(300)
    client.stop()
    reports = run_checkers(
        cluster.gather_trace(),
        make_checkers(["AckedWriteLoss"]),
        CheckContext(time_scale=cluster.time_scale),
    )
    assert reports and reports[0].checked > 0
    assert not reports[0].violations, reports[0].violations
