"""Tests for uniform (majority-stable) delivery."""

from __future__ import annotations

from typing import Any

from repro.runtime.cluster import Cluster, ClusterConfig
from repro.types import ProcessId
from repro.vsync.events import GroupApplication
from repro.vsync.uniform import UniformDeliveryApp

from tests.conftest import assert_all_properties


class Log(GroupApplication):
    def __init__(self) -> None:
        super().__init__()
        self.got: list[Any] = []

    def on_message(self, sender, payload, msg_id) -> None:
        self.got.append(payload)


def uniform_cluster(n: int = 3, seed: int = 0) -> Cluster:
    cluster = Cluster(
        n,
        app_factory=lambda pid: UniformDeliveryApp(Log()),
        config=ClusterConfig(seed=seed),
    )
    assert cluster.settle(timeout=500)
    return cluster


def test_udelivery_happens_after_majority_acks():
    cluster = uniform_cluster()
    cluster.apps[0].ubcast("stable")
    cluster.run_for(30)
    for site in range(3):
        assert cluster.apps[site].inner.got == ["stable"]
        assert cluster.apps[site].u_delivered == 1
        assert cluster.apps[site].pending_count == 0


def test_plain_multicasts_pass_through():
    cluster = uniform_cluster()
    cluster.stack_at(1).multicast("plain")
    cluster.run_for(20)
    assert "plain" in cluster.apps[0].inner.got


def test_udelivery_not_immediate():
    """Before acks return, the message is pending, not delivered."""
    cluster = uniform_cluster()
    cluster.apps[2].ubcast("later")
    cluster.run_for(1.5)  # the data multicast landed, the acks did not
    receivers_with_pending = sum(
        1 for site in range(3) if cluster.apps[site].pending_count > 0
    )
    assert receivers_with_pending >= 1
    cluster.run_for(30)
    assert all(cluster.apps[s].inner.got == ["later"] for s in range(3))


def test_pending_messages_survive_view_change():
    """A message caught mid-acknowledgement by a view change is
    u-delivered in the next view (flush keeps the data; acks restart)."""
    cluster = uniform_cluster(4, seed=2)
    cluster.apps[0].ubcast("cutover")
    cluster.run_for(1.5)
    cluster.crash(3)  # view change while acks are in flight
    assert cluster.settle(timeout=500)
    cluster.run_for(60)
    for site in range(3):
        assert cluster.apps[site].inner.got == ["cutover"], site
    assert_all_properties(cluster.recorder)


def test_uniformity_across_partition():
    """If any member u-delivers, the surviving majority u-delivers too,
    even when the sender immediately leaves the majority side."""
    cluster = uniform_cluster(5, seed=3)
    cluster.run_for(50)
    cluster.apps[4].ubcast("acted-upon")
    cluster.run_for(30)  # u-delivered everywhere in the full view
    assert cluster.apps[4].inner.got == ["acted-upon"]
    cluster.partition([[0, 1, 2], [3, 4]])
    assert cluster.settle(timeout=500)
    for site in (0, 1, 2):
        assert cluster.apps[site].inner.got == ["acted-upon"]
    assert_all_properties(cluster.recorder)
