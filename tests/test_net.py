"""Tests for the network substrate: topology, latency, delivery, faults."""

from __future__ import annotations

import random

import pytest

from repro.errors import NetworkError, SimulationError
from repro.net.faults import Crash, FaultSchedule, Heal, Partition, Recover
from repro.net.latency import ConstantLatency, SpikeLatency, UniformLatency
from repro.net.network import Network
from repro.net.topology import Topology
from repro.sim.process import Process
from repro.sim.rng import RngStreams
from repro.sim.scheduler import Scheduler
from repro.sim.stable_storage import SiteStorage
from repro.types import ProcessId


# ---------------------------------------------------------------------------
# Topology
# ---------------------------------------------------------------------------


def test_initially_fully_connected():
    topo = Topology(range(4))
    assert topo.connected(0, 3)
    assert topo.components() == [frozenset({0, 1, 2, 3})]


def test_partition_splits_connectivity():
    topo = Topology(range(4))
    topo.partition([(0, 1), (2, 3)])
    assert topo.connected(0, 1)
    assert not topo.connected(1, 2)
    assert topo.components() == [frozenset({0, 1}), frozenset({2, 3})]


def test_unmentioned_sites_become_singletons():
    topo = Topology(range(4))
    topo.partition([(0, 1)])
    assert not topo.connected(2, 3)
    assert topo.component_of(2) == frozenset({2})


def test_heal_restores_full_connectivity():
    topo = Topology(range(4))
    topo.partition([(0,), (1, 2, 3)])
    topo.heal()
    assert topo.connected(0, 3)


def test_isolate_cuts_one_site():
    topo = Topology(range(4))
    topo.isolate(2)
    assert not topo.connected(2, 0)
    assert topo.connected(0, 1)


def test_partition_rejects_overlapping_groups():
    topo = Topology(range(3))
    with pytest.raises(NetworkError):
        topo.partition([(0, 1), (1, 2)])


def test_partition_rejects_unknown_sites():
    topo = Topology(range(3))
    with pytest.raises(NetworkError):
        topo.partition([(0, 99)])


def test_add_site_joins_main_component():
    topo = Topology(range(2))
    topo.add_site(5)
    assert topo.connected(0, 5)
    with pytest.raises(NetworkError):
        topo.add_site(5)


def test_connectivity_query_on_unknown_site_raises():
    topo = Topology(range(2))
    with pytest.raises(NetworkError):
        topo.connected(0, 9)


def test_changes_counter_increments():
    topo = Topology(range(3))
    before = topo.changes
    topo.partition([(0,), (1, 2)])
    topo.heal()
    assert topo.changes == before + 2


def test_empty_topology_rejected():
    with pytest.raises(NetworkError):
        Topology([])


# ---------------------------------------------------------------------------
# Latency models
# ---------------------------------------------------------------------------


def test_constant_latency():
    assert ConstantLatency(3.0).sample(random.Random(0)) == 3.0


def test_uniform_latency_within_bounds():
    model = UniformLatency(1.0, 2.0)
    rng = random.Random(0)
    for _ in range(100):
        assert 1.0 <= model.sample(rng) <= 2.0


def test_spike_latency_produces_both_regimes():
    model = SpikeLatency(base=1.0, spike=50.0, spike_prob=0.2)
    rng = random.Random(0)
    samples = {model.sample(rng) for _ in range(200)}
    assert samples == {1.0, 50.0}


# ---------------------------------------------------------------------------
# Network delivery
# ---------------------------------------------------------------------------


class _Sink(Process):
    def __init__(self, pid, scheduler, storage):
        super().__init__(pid, scheduler, storage)
        self.inbox = []

    def on_network(self, src, payload):
        self.inbox.append((src, payload, self.now))


def _net(n: int = 2, **kwargs) -> tuple[Scheduler, Network, list[_Sink]]:
    sched = Scheduler()
    topo = Topology(range(n))
    net = Network(sched, topo, RngStreams(0), **kwargs)
    procs = []
    for site in range(n):
        proc = _Sink(ProcessId(site), sched, SiteStorage(site))
        net.register(proc)
        procs.append(proc)
    return sched, net, procs


def test_basic_delivery_with_latency():
    sched, net, procs = _net(latency=ConstantLatency(2.0))
    procs[0].send(procs[1].pid, "hello")
    sched.run()
    assert procs[1].inbox == [(procs[0].pid, "hello", 2.0)]


def test_partitioned_send_is_dropped():
    sched, net, procs = _net()
    net.topology.partition([(0,), (1,)])
    procs[0].send(procs[1].pid, "lost")
    sched.run()
    assert procs[1].inbox == []
    assert net.stats.dropped_partition == 1


def test_partition_while_in_flight_drops_message():
    sched, net, procs = _net(latency=ConstantLatency(10.0))
    procs[0].send(procs[1].pid, "doomed")
    sched.at(5.0, net.topology.partition, [(0,), (1,)])
    sched.run()
    assert procs[1].inbox == []
    assert net.stats.dropped_partition == 1


def test_delivery_to_crashed_process_dropped():
    sched, net, procs = _net()
    procs[1].crash()
    procs[0].send(procs[1].pid, "x")
    sched.run()
    assert net.stats.dropped_dead == 1


def test_loss_probability_drops_messages():
    sched, net, procs = _net(loss_prob=1.0)
    procs[0].send(procs[1].pid, "x")
    sched.run()
    assert procs[1].inbox == []
    assert net.stats.dropped_loss == 1


def test_fifo_links_preserve_order_despite_jitter():
    sched, net, procs = _net(latency=UniformLatency(0.1, 5.0), fifo_links=True)
    for i in range(20):
        procs[0].send(procs[1].pid, i)
    sched.run()
    payloads = [p for _, p, _ in procs[1].inbox]
    assert payloads == list(range(20))


def test_non_fifo_links_may_reorder():
    sched, net, procs = _net(latency=UniformLatency(0.1, 5.0), fifo_links=False)
    for i in range(20):
        procs[0].send(procs[1].pid, i)
    sched.run()
    payloads = [p for _, p, _ in procs[1].inbox]
    assert sorted(payloads) == list(range(20))
    assert payloads != list(range(20))  # jitter reorders at least one pair


def test_send_to_site_reaches_latest_incarnation():
    sched, net, procs = _net()
    procs[1].crash()
    fresh = _Sink(ProcessId(1, 1), sched, SiteStorage(1))
    net.register(fresh)
    net.send_to_site(procs[0].pid, 1, "knock")
    sched.run()
    assert fresh.inbox and fresh.inbox[0][1] == "knock"
    assert procs[1].inbox == []


def test_duplicate_registration_rejected():
    sched, net, procs = _net()
    with pytest.raises(NetworkError):
        net.register(procs[0])


def test_stats_record_message_types_when_detailed():
    sched, net, procs = _net(detailed_stats=True)
    procs[0].send(procs[1].pid, "text")
    sched.run()
    assert net.stats.by_type.get("str") == 1
    assert net.stats.sent == 1
    assert net.stats.delivered == 1


def test_stats_by_type_off_by_default():
    sched, net, procs = _net()
    procs[0].send(procs[1].pid, "text")
    sched.run()
    assert net.stats.by_type == {}
    assert net.stats.sent == 1
    assert net.stats.delivered == 1


# ---------------------------------------------------------------------------
# Fault schedules
# ---------------------------------------------------------------------------


class _FakeTarget:
    def __init__(self):
        self.log = []

    def crash(self, site):
        self.log.append(("crash", site))

    def recover(self, site):
        self.log.append(("recover", site))

    def partition(self, groups):
        self.log.append(("partition", tuple(map(tuple, groups))))

    def heal(self):
        self.log.append(("heal",))

    def join(self, site):
        self.log.append(("join", site))


def test_schedule_applies_in_time_order():
    sched = Scheduler()
    target = _FakeTarget()
    schedule = FaultSchedule()
    schedule.add(Heal(30.0))
    schedule.add(Crash(10.0, 1))
    schedule.add(Partition(20.0, ((0,), (1, 2))))
    schedule.add(Recover(25.0, 1))
    schedule.arm(sched, target)
    sched.run()
    assert [entry[0] for entry in target.log] == [
        "crash",
        "partition",
        "recover",
        "heal",
    ]


def test_schedule_validation_rejects_double_crash():
    schedule = FaultSchedule([Crash(1.0, 0), Crash(2.0, 0)])
    with pytest.raises(SimulationError):
        schedule.validate()


def test_schedule_validation_rejects_recover_while_up():
    schedule = FaultSchedule([Recover(1.0, 0)])
    with pytest.raises(SimulationError):
        schedule.validate()


def test_schedule_horizon():
    schedule = FaultSchedule([Crash(5.0, 0), Recover(40.0, 0)])
    assert schedule.horizon == 40.0
    assert FaultSchedule().horizon == 0.0


# ---------------------------------------------------------------------------
# Schedule serialization (fuzz corpus entries must replay byte-identically)
# ---------------------------------------------------------------------------


def _one_of_each() -> FaultSchedule:
    from repro.net.faults import Join, OneWayCut, OneWayHeal

    return FaultSchedule(
        [
            Crash(130.0, 2),
            Recover(185.5, 2),
            Partition(220.0, ((0, 1), (2, 3, 4))),
            Heal(300.0),
            Join(340.0, 5),
            OneWayCut(360.0, 0, 3),
            OneWayHeal(410.0, 0, 3),
        ]
    )


def test_schedule_json_round_trip_covers_every_action_type():
    schedule = _one_of_each()
    assert FaultSchedule.from_json(schedule.to_json()) == schedule
    # Partition groups come back as tuples, not JSON lists.
    back = FaultSchedule.from_json_obj(schedule.to_json_obj())
    partition = next(a for a in back.actions if isinstance(a, Partition))
    assert partition.groups == ((0, 1), (2, 3, 4))


def test_schedule_repr_round_trip():
    from repro.net import faults

    schedule = _one_of_each()
    namespace = {name: getattr(faults, name) for name in faults.ACTION_TYPES}
    namespace["FaultSchedule"] = FaultSchedule
    assert eval(repr(schedule), namespace) == schedule


def test_schedule_json_rejects_unknown_action_type():
    with pytest.raises(SimulationError):
        FaultSchedule.from_json_obj(
            {"actions": [{"type": "Meteor", "time": 1.0}]}
        )


def test_schedule_json_rejects_unknown_fields_and_bad_shape():
    with pytest.raises(SimulationError):
        FaultSchedule.from_json_obj(
            {"actions": [{"type": "Crash", "time": 1.0, "blast_radius": 3}]}
        )
    with pytest.raises(SimulationError):
        FaultSchedule.from_json_obj({"schedule": []})
