"""Incremental chunked state transfer: the announcement-first protocol
(TOffer -> TResume cursor -> ack-paced TChunks), version-range diffs,
resumable persisted cursors, and mixed-protocol interop.

Edge cases per the scaling issue: the empty diff, a single-chunk
stream, a requester crash mid-transfer that resumes from the persisted
cursor, and clusters mixing chunk-capable and legacy whole-blob peers.
"""

from __future__ import annotations

from repro.core.group_object import GroupObject
from repro.core.mode_functions import AlwaysFullModeFunction, QuorumModeFunction
from repro.core.modes import Mode
from repro.core.state_transfer import (
    IncrementalReceiver,
    IncrementalSender,
    TAck,
    TChunk,
    TOffer,
    TResume,
)
from repro.runtime.cluster import Cluster, ClusterConfig
from repro.sim.stable_storage import SiteStorage
from repro.types import ProcessId


class Obj(GroupObject):
    def __init__(self, fn, chunk_size=None, delta_log_cap=512):
        super().__init__(
            fn, transfer_chunk_size=chunk_size, delta_log_cap=delta_log_cap
        )
        self.data = {}

    def snapshot_state(self):
        return dict(self.data)

    def adopt_state(self, state):
        self.data = dict(state)

    def apply_op(self, sender, op, msg_id):
        self.data[op[0]] = op[1]

    def merge_app_states(self, offers):
        merged = {}
        for offer in sorted(offers, key=lambda o: (o.version, o.sender)):
            merged.update(offer.state)
        return merged


def _chunk_totals(cluster):
    """state_transfer_chunks_total by kind, over the whole run."""
    totals: dict[str, float] = {}
    for sample in cluster.metrics_snapshot().samples:
        if sample.name == "state_transfer_chunks_total":
            kind = sample.label_dict().get("kind", "")
            totals[kind] = totals.get(kind, 0.0) + sample.value
    return totals


def _run_heal_scenario(app_factory, n_ops, seed=3):
    """n=5 quorum: isolate the settlement leader, advance the majority,
    heal — the leader must fetch the missed operations remotely."""
    cluster = Cluster(
        5, app_factory=app_factory, config=ClusterConfig(seed=seed)
    )
    assert cluster.settle(timeout=500)
    cluster.run_for(100)
    cluster.partition([[1, 2, 3, 4], [0]])
    assert cluster.settle(timeout=500)
    cluster.run_for(100)
    writer = cluster.apps[1]
    assert writer.mode is Mode.NORMAL
    for i in range(n_ops):
        writer.submit_op((f"k{i}", i))
        cluster.run_for(10)
    cluster.heal()
    assert cluster.settle(timeout=500)
    cluster.run_for(300)
    states = [cluster.apps[site].data for site in range(5)]
    assert all(a.mode is Mode.NORMAL for a in cluster.apps.values())
    assert all(s == states[0] for s in states)
    assert len(states[0]) == n_ops
    return cluster


def test_empty_diff_streams_zero_chunks():
    """Bootstrap creation: every responder's lineage equals the
    leader's (version 0, digest 0), so each offer is an empty diff —
    the cursor-at-end reply completes without a single TChunk."""
    cluster = Cluster(
        3,
        app_factory=lambda pid: Obj(AlwaysFullModeFunction(), chunk_size=4),
        config=ClusterConfig(seed=1),
    )
    assert cluster.settle(timeout=500)
    cluster.run_for(200)
    assert all(a.mode is Mode.NORMAL for a in cluster.apps.values())
    leader = cluster.apps[0]
    assert leader.settlement.stats.sessions_completed >= 1
    assert _chunk_totals(cluster) == {}


def test_diff_transfer_fits_single_chunk():
    """Two missed operations with chunk size 4: the whole diff rides in
    one chunk, finishing the donor on the very first ack."""
    cluster = _run_heal_scenario(
        lambda pid: Obj(QuorumModeFunction.uniform(range(5)), chunk_size=4),
        n_ops=2,
    )
    totals = _chunk_totals(cluster)
    assert totals.get("diff", 0) >= 1
    assert totals.get("snapshot", 0) == 0


def test_trimmed_delta_log_falls_back_to_snapshot_chunks():
    """A delta log shorter than the version gap cannot prove lineage:
    the donor streams a chunked snapshot instead of a diff."""
    cluster = _run_heal_scenario(
        lambda pid: Obj(
            QuorumModeFunction.uniform(range(5)), chunk_size=2, delta_log_cap=2
        ),
        n_ops=6,
    )
    totals = _chunk_totals(cluster)
    assert totals.get("snapshot", 0) >= 1
    assert totals.get("diff", 0) == 0


def test_legacy_requester_with_chunked_donors_gets_whole_blob():
    """accepts_chunks=False (the old request shape) makes every donor
    answer with the legacy single-message StateOffer."""
    cluster = _run_heal_scenario(
        lambda pid: Obj(
            QuorumModeFunction.uniform(range(5)),
            chunk_size=None if pid.site == 0 else 4,
        ),
        n_ops=3,
    )
    assert _chunk_totals(cluster) == {}


def test_chunked_requester_with_legacy_donors_gets_whole_blob():
    """A chunk-capable requester advertising accepts_chunks to donors
    that predate chunking still converges on the whole-blob path."""
    cluster = _run_heal_scenario(
        lambda pid: Obj(
            QuorumModeFunction.uniform(range(5)),
            chunk_size=4 if pid.site == 0 else None,
        ),
        n_ops=3,
    )
    assert _chunk_totals(cluster) == {}


# -- protocol units: cursor persistence across a receiver crash -------------


class _FakeStack:
    """Just enough stack surface for the transfer endpoints: identity,
    stable storage, direct sends and the (absent) obs hooks."""

    def __init__(self, pid, storage):
        self.pid = pid
        self.storage = storage
        self.obs = None
        self.now = 0.0
        self.sent: list[tuple[ProcessId, object]] = []

    def send_direct(self, dst, payload):
        self.sent.append((dst, payload))


def _pump(donor_stack, sender, receiver, donor_pid, rx_stack):
    """Deliver queued messages between the two fake stacks until idle."""
    moved = True
    while moved:
        moved = False
        while donor_stack.sent:
            _, payload = donor_stack.sent.pop(0)
            moved = True
            if isinstance(payload, TOffer):
                receiver.on_offer(donor_pid, payload)
            elif isinstance(payload, TChunk):
                receiver.on_chunk(donor_pid, payload)
        while rx_stack.sent:
            _, payload = rx_stack.sent.pop(0)
            moved = True
            if isinstance(payload, TResume):
                sender.on_resume(payload)
            elif isinstance(payload, TAck):
                sender.on_ack(payload)


def test_receiver_crash_mid_transfer_resumes_from_persisted_cursor():
    donor_pid, rx_pid = ProcessId(1), ProcessId(0)
    donor = _FakeStack(donor_pid, SiteStorage(1))
    storage = SiteStorage(0)  # survives the simulated crash
    chunks = [("ops", (1,)), ("ops", (2,)), ("ops", (3,))]

    def offer_of(tid):
        return TOffer(
            transfer=tid,
            session=("s", 1),
            kind="snapshot",
            total_chunks=len(chunks),
            base_version=-1,
            target_version=3,
            sender=donor_pid,
            last_epoch=1,
        )

    completed: list[tuple[TOffer, list]] = []
    rx_stack = _FakeStack(rx_pid, storage)
    receiver = IncrementalReceiver(rx_stack, lambda o, p: completed.append((o, p)))
    sender = IncrementalSender(donor, rx_pid, offer_of, chunks)
    sender.start()

    # Walk the stream two chunks in, then "crash" the receiver.
    _, offer = donor.sent.pop(0)
    receiver.on_offer(donor_pid, offer)
    _, resume = rx_stack.sent.pop(0)
    assert resume == TResume(offer.transfer, 0)
    sender.on_resume(resume)
    _, chunk0 = donor.sent.pop(0)
    receiver.on_chunk(donor_pid, chunk0)
    _, ack0 = rx_stack.sent.pop(0)
    sender.on_ack(ack0)  # paces chunk 1 out
    _, chunk1 = donor.sent.pop(0)
    receiver.on_chunk(donor_pid, chunk1)
    rx_stack.sent.pop(0)  # ack of chunk 1, dropped with the crash
    assert storage.read("transfer.partial.1")["next"] == 2
    assert not completed

    # Next incarnation: fresh endpoints over the same stable storage.
    # The donor re-answers the restarted session with an equal stream
    # (same kind / target version / chunk count, a new transfer id).
    donor2 = _FakeStack(donor_pid, SiteStorage(1))
    rx_stack2 = _FakeStack(rx_pid, storage)
    receiver2 = IncrementalReceiver(
        rx_stack2, lambda o, p: completed.append((o, p))
    )
    sender2 = IncrementalSender(donor2, rx_pid, offer_of, chunks)
    sender2.start()
    _, offer2 = donor2.sent[0]
    donor2.sent.clear()
    receiver2.on_offer(donor_pid, offer2)
    _, resume2 = rx_stack2.sent[0]
    assert resume2 == TResume(offer2.transfer, 2)  # persisted cursor
    rx_stack2.sent.clear()
    sender2.on_resume(resume2)
    _pump(donor2, sender2, receiver2, donor_pid, rx_stack2)

    assert len(completed) == 1
    done_offer, payloads = completed[0]
    assert done_offer.transfer == offer2.transfer
    assert payloads == chunks
    assert sender2.done
    assert storage.read("transfer.partial.1") is None  # cursor cleared


def test_mismatched_reoffer_discards_the_partial():
    donor_pid, rx_pid = ProcessId(1), ProcessId(0)
    storage = SiteStorage(0)
    storage.write(
        "transfer.partial.1",
        {
            "kind": "snapshot",
            "target_version": 3,
            "total": 3,
            "next": 2,
            "chunks": {0: ("ops", (1,)), 1: ("ops", (2,))},
        },
    )
    rx_stack = _FakeStack(rx_pid, storage)
    receiver = IncrementalReceiver(rx_stack, lambda o, p: None)
    # The donor moved on: a higher target version must restart at 0.
    offer = TOffer(
        transfer=(donor_pid, 99),
        session=("s", 2),
        kind="snapshot",
        total_chunks=4,
        base_version=-1,
        target_version=4,
        sender=donor_pid,
        last_epoch=1,
    )
    receiver.on_offer(donor_pid, offer)
    _, resume = rx_stack.sent[0]
    assert resume == TResume(offer.transfer, 0)
