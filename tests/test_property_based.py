"""Property-based tests (hypothesis) on the core data structures.

These pin down the algebraic invariants the protocols rely on:
structure partitions stay partitions under merges, version-vector
dominance is a preorder compatible with merging, flat classification
always contains the truth, the scheduler is deterministic, and so on.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.classify import classify_flat
from repro.core.group_object import AppStateOffer
from repro.core.shared_state import diagnose
from repro.core.state_merge import LastWriterWins, SetUnionMerge, Versioned
from repro.evs.eview import EvDelta, EViewStructure
from repro.sim.scheduler import Scheduler
from repro.types import MessageId, ProcessId, SubviewId, SvSetId, ViewId

sites = st.integers(min_value=0, max_value=7)
pids = st.builds(ProcessId, sites, st.integers(min_value=0, max_value=2))


# ---------------------------------------------------------------------------
# EViewStructure under random merge sequences
# ---------------------------------------------------------------------------


@st.composite
def members_strategy(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    return frozenset(ProcessId(s) for s in range(n))


@st.composite
def merge_program(draw):
    """A members set plus a random sequence of merge instructions given
    as index pairs into the then-current structure."""
    members = draw(members_strategy())
    steps = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["subview", "svset"]),
                st.integers(min_value=0, max_value=10),
                st.integers(min_value=0, max_value=10),
            ),
            max_size=6,
        )
    )
    return members, steps


@given(merge_program())
@settings(max_examples=120, deadline=None)
def test_structure_stays_valid_partition_under_merges(program):
    members, steps = program
    structure = EViewStructure.singletons(1, members)
    seq = 0
    for kind, i, j in steps:
        seq += 1
        if kind == "svset":
            ssids = [ss.ssid for ss in structure.svsets]
            inputs = frozenset({ssids[i % len(ssids)], ssids[j % len(ssids)]})
            delta = EvDelta(
                seq, "svset", inputs, new_svset=SvSetId(1, min(members), seq)
            )
        else:
            sids = [sv.sid for sv in structure.subviews]
            inputs = frozenset({sids[i % len(sids)], sids[j % len(sids)]})
            delta = EvDelta(
                seq, "subview", inputs, new_subview=SubviewId(1, min(members), seq)
            )
        structure = structure.apply(delta)
        structure.validate(members)  # always a two-level partition


@given(merge_program())
@settings(max_examples=120, deadline=None)
def test_merges_only_coarsen_subviews(program):
    members, steps = program
    structure = EViewStructure.singletons(1, members)
    seq = 0
    for kind, i, j in steps:
        seq += 1
        before = {pid: structure.subview_of(pid).members for pid in members}
        sids = [sv.sid for sv in structure.subviews]
        ssids = [ss.ssid for ss in structure.svsets]
        if kind == "svset":
            delta = EvDelta(
                seq,
                "svset",
                frozenset({ssids[i % len(ssids)], ssids[j % len(ssids)]}),
                new_svset=SvSetId(1, min(members), seq),
            )
        else:
            delta = EvDelta(
                seq,
                "subview",
                frozenset({sids[i % len(sids)], sids[j % len(sids)]}),
                new_subview=SubviewId(1, min(members), seq),
            )
        structure = structure.apply(delta)
        for pid in members:
            assert before[pid] <= structure.subview_of(pid).members


# ---------------------------------------------------------------------------
# Version vectors
# ---------------------------------------------------------------------------


clocks = st.dictionaries(sites, st.integers(min_value=0, max_value=5), max_size=4)


def _versioned(value, clock) -> Versioned:
    return Versioned(value, tuple(sorted(clock.items())))


@given(clocks)
def test_dominance_is_reflexive(clock):
    v = _versioned("x", clock)
    assert v.dominates(v)


@given(clocks, clocks, clocks)
def test_dominance_is_transitive(a, b, c):
    va, vb, vc = _versioned("a", a), _versioned("b", b), _versioned("c", c)
    if va.dominates(vb) and vb.dominates(vc):
        assert va.dominates(vc)


@given(clocks, clocks)
def test_concurrency_is_symmetric(a, b):
    va, vb = _versioned("a", a), _versioned("b", b)
    assert va.concurrent_with(vb) == vb.concurrent_with(va)


@given(clocks, sites)
def test_bump_strictly_dominates(clock, site):
    v = _versioned("x", clock)
    bumped = v.bump(site)
    assert bumped.dominates(v)
    assert not v.dominates(bumped) or v.clock() == bumped.clock()


# ---------------------------------------------------------------------------
# Merge policies
# ---------------------------------------------------------------------------


states = st.dictionaries(
    st.text(alphabet="abc", min_size=1, max_size=2),
    st.integers(min_value=0, max_value=9),
    max_size=4,
)


@given(st.lists(st.tuples(sites, states, st.integers(0, 9)), min_size=1, max_size=4))
def test_lww_is_order_insensitive(entries):
    offers = [
        AppStateOffer(ProcessId(site, i), dict(state), version, 0)
        for i, (site, state, version) in enumerate(entries)
    ]
    merged_fwd = LastWriterWins().merge(offers)
    merged_rev = LastWriterWins().merge(list(reversed(offers)))
    assert merged_fwd == merged_rev


@given(st.lists(st.tuples(sites, states), min_size=1, max_size=4))
def test_set_union_contains_every_input(entries):
    offers = [
        AppStateOffer(ProcessId(site, i), {k: {v} for k, v in state.items()}, 0, 0)
        for i, (site, state) in enumerate(entries)
    ]
    merged = SetUnionMerge().merge(offers)
    for offer in offers:
        for key, values in offer.state.items():
            assert values <= merged[key]


# ---------------------------------------------------------------------------
# Classification consistency
# ---------------------------------------------------------------------------


@st.composite
def s_mode_cut(draw):
    """Random pre-install states for members of a new view."""
    n = draw(st.integers(min_value=1, max_value=6))
    modes = draw(
        st.lists(st.sampled_from(["N", "R", "S"]), min_size=n, max_size=n)
    )
    # Assign previous views: members with mode N get one of up to 2 views.
    prev_choice = draw(st.lists(st.integers(0, 1), min_size=n, max_size=n))
    v_a, v_b = ViewId(5, ProcessId(0)), ViewId(6, ProcessId(3))
    prev_modes = {ProcessId(i): modes[i] for i in range(n)}
    prev_views = {
        ProcessId(i): (v_a if prev_choice[i] == 0 else v_b) for i in range(n)
    }
    return prev_modes, prev_views


@given(s_mode_cut())
@settings(max_examples=200, deadline=None)
def test_ground_truth_label_is_a_flat_candidate(cut):
    """Soundness of the flat classifier: whatever actually happened is
    always among the candidates local reasoning produces."""
    prev_modes, prev_views = cut
    truth = diagnose(ViewId(9, ProcessId(0)), prev_modes, prev_views)
    some_member = sorted(prev_modes)[0]
    labels = classify_flat(
        prev_modes[some_member], len(prev_modes), exclusive_full=False
    )
    assert truth.label in labels


@given(s_mode_cut())
@settings(max_examples=200, deadline=None)
def test_diagnose_partitions_members(cut):
    prev_modes, prev_views = cut
    truth = diagnose(ViewId(9, ProcessId(0)), prev_modes, prev_views)
    assert truth.s_n | truth.s_r == set(prev_modes)
    assert not truth.s_n & truth.s_r
    clustered = set().union(*truth.clusters) if truth.clusters else set()
    assert clustered == truth.s_n


# ---------------------------------------------------------------------------
# Scheduler determinism
# ---------------------------------------------------------------------------


@given(st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=30))
def test_scheduler_executes_in_nondecreasing_time_order(delays):
    sched = Scheduler()
    fired: list[float] = []
    for delay in delays:
        sched.after(delay, lambda: fired.append(sched.now))
    sched.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


# ---------------------------------------------------------------------------
# Identifier ordering
# ---------------------------------------------------------------------------


@given(pids, pids)
def test_process_id_order_matches_tuple_order(a, b):
    assert (a < b) == ((a.site, a.incarnation) < (b.site, b.incarnation))


@given(pids, st.integers(1, 5), st.integers(1, 5))
def test_message_id_orders_by_view_then_seqno(sender, epoch, seqno):
    earlier = MessageId(sender, ViewId(epoch, sender), seqno)
    later_view = MessageId(sender, ViewId(epoch + 1, sender), 1)
    assert earlier < later_view
    if seqno > 1:
        prev = MessageId(sender, ViewId(epoch, sender), seqno - 1)
        assert prev < earlier
