"""Tests for view-synchronous multicast: Properties 2.1-2.3 and the
delivery machinery around them."""

from __future__ import annotations

from typing import Any

from repro.runtime.cluster import Cluster, ClusterConfig
from repro.trace.checks import (
    check_agreement,
    check_integrity,
    check_uniqueness,
)
from repro.types import MessageId, ProcessId
from repro.vsync.events import GroupApplication

from tests.conftest import assert_all_properties, settled_cluster


class Collector(GroupApplication):
    """Remembers everything delivered to it."""

    def __init__(self) -> None:
        super().__init__()
        self.messages: list[tuple[ProcessId, Any]] = []
        self.views: list[Any] = []

    def on_message(self, sender, payload, msg_id) -> None:
        self.messages.append((sender, payload))

    def on_view(self, eview) -> None:
        self.views.append(eview)


def collector_cluster(n: int, seed: int = 0) -> Cluster:
    cluster = Cluster(
        n, app_factory=lambda pid: Collector(), config=ClusterConfig(seed=seed)
    )
    assert cluster.settle(timeout=500)
    return cluster


def test_multicast_reaches_every_member_including_sender():
    cluster = collector_cluster(4)
    cluster.stack_at(1).multicast("ping")
    cluster.run_for(20)
    for site in range(4):
        assert (cluster.stack_at(1).pid, "ping") in cluster.apps[site].messages


def test_fifo_per_sender_within_view():
    cluster = collector_cluster(3)
    for i in range(10):
        cluster.stack_at(0).multicast(i)
    cluster.run_for(30)
    sender = cluster.stack_at(0).pid
    for site in range(3):
        got = [p for s, p in cluster.apps[site].messages if s == sender]
        assert got == list(range(10))


def test_interleaved_senders_all_delivered():
    cluster = collector_cluster(3)
    for i in range(5):
        for site in range(3):
            cluster.stack_at(site).multicast((site, i))
    cluster.run_for(50)
    for site in range(3):
        assert len(cluster.apps[site].messages) == 15


def test_multicast_during_flush_is_buffered_and_resent_in_next_view():
    cluster = collector_cluster(4)
    cluster.crash(3)
    cluster.run_for(18)  # suspicion propagates; flush starts
    sender = cluster.stack_at(0)
    # Force a send while the view change is (likely) in progress.
    sender.membership.flushing = True
    sender.channels.suspend()
    result = sender.multicast("late")
    assert result is None  # buffered
    sender.membership.flushing = False
    assert cluster.settle(timeout=500)
    cluster.run_for(30)
    for site in range(3):
        payloads = [p for _, p in cluster.apps[site].messages]
        assert "late" in payloads
    assert_all_properties(cluster.recorder)


def test_agreement_across_partition_cut():
    """Messages multicast right as a partition forms must be delivered
    consistently: same-install survivors see the same set (2.1)."""
    cluster = collector_cluster(5, seed=2)
    for i in range(3):
        cluster.stack_at(i % 5).multicast(("pre", i))
    cluster.run_for(2)
    cluster.partition([[0, 1, 2], [3, 4]])
    for i in range(3):
        cluster.stack_at(i).multicast(("mid", i))
    assert cluster.settle(timeout=500)
    report = check_agreement(cluster.recorder)
    assert report.ok, report.violations


def test_uniqueness_under_churn():
    cluster = collector_cluster(4, seed=5)
    for round_no in range(3):
        for site in range(4):
            stack = cluster.stacks[site]
            if stack.alive and not stack.is_flushing:
                stack.multicast((round_no, site))
        if round_no == 0:
            cluster.partition([[0, 1], [2, 3]])
        elif round_no == 1:
            cluster.heal()
        cluster.run_for(80)
    cluster.settle(timeout=500)
    assert check_uniqueness(cluster.recorder).ok
    assert check_integrity(cluster.recorder).ok


def test_no_delivery_without_multicast_and_no_duplicates():
    cluster = collector_cluster(3)
    cluster.stack_at(0).multicast("once")
    cluster.run_for(20)
    report = check_integrity(cluster.recorder)
    assert report.ok
    payloads = [p for _, p in cluster.apps[1].messages if p == "once"]
    assert payloads == ["once"]


def test_message_to_old_view_is_dropped_after_install():
    """A message tagged with a superseded view never gets delivered."""
    cluster = collector_cluster(3)
    stack = cluster.stack_at(0)
    old_view_id = stack.current_view_id()
    cluster.crash(2)
    assert cluster.settle(timeout=500)
    deliveries = [
        ev
        for ev in cluster.recorder.deliveries()
        if ev.view_id != ev.msg_id.view
    ]
    assert deliveries == []
    assert stack.current_view_id() != old_view_id


def test_messages_under_loss_still_satisfy_properties():
    cluster = Cluster(
        3,
        app_factory=lambda pid: Collector(),
        config=ClusterConfig(seed=9, loss_prob=0.08),
    )
    assert cluster.settle(timeout=900)
    for i in range(10):
        for site in range(3):
            stack = cluster.stacks[site]
            if stack.alive and not stack.is_flushing:
                stack.multicast((site, i))
        cluster.run_for(15)
    cluster.settle(timeout=900)
    assert_all_properties(cluster.recorder)


def test_message_id_embeds_view_and_orders():
    cluster = collector_cluster(2)
    stack = cluster.stack_at(0)
    first = stack.multicast("a")
    second = stack.multicast("b")
    assert isinstance(first, MessageId)
    assert first.view == stack.current_view_id()
    assert first < second
