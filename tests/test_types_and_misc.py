"""Tests for identifier types, error hierarchy, transition analysis and
stack dispatch corners."""

from __future__ import annotations

import pytest

from repro.analysis import FIGURE_1_EDGES, TransitionMatrix, transition_matrix
from repro.apps.replicated_file import ReplicatedFile
from repro.errors import (
    ApplicationError,
    ClassificationError,
    EnrichedViewError,
    InvariantViolation,
    MembershipError,
    NetworkError,
    ReproError,
    SimulationError,
    ViewSynchronyError,
)
from repro.runtime.cluster import Cluster, ClusterConfig
from repro.types import (
    Message,
    MessageId,
    ProcessId,
    SubviewId,
    SvSetId,
    ViewId,
    min_process,
)

from tests.conftest import settled_cluster


# ---------------------------------------------------------------------------
# Identifier types
# ---------------------------------------------------------------------------


def test_process_id_repr_and_ordering():
    a, b = ProcessId(0, 0), ProcessId(0, 1)
    assert str(a) == "p0.0" and str(b) == "p0.1"
    assert a < b < ProcessId(1, 0)
    assert a.next_incarnation() == b


def test_view_id_repr():
    assert str(ViewId(3, ProcessId(1, 2))) == "v3@p1.2"


def test_message_id_repr_and_message_str():
    mid = MessageId(ProcessId(0), ViewId(1, ProcessId(0)), 7)
    assert "m(" in str(mid)
    assert "eview_seq" in str(Message(mid, "x", 2))


def test_subview_and_svset_id_reprs():
    assert str(SubviewId(1, ProcessId(0), 2)) == "sv(1,p0.0,2)"
    assert str(SvSetId(1, ProcessId(0), 2)) == "ss(1,p0.0,2)"


def test_min_process_rejects_empty():
    with pytest.raises(ValueError):
        min_process(frozenset())


def test_min_process_picks_least():
    pids = {ProcessId(2), ProcessId(0, 1), ProcessId(0, 0)}
    assert min_process(pids) == ProcessId(0, 0)


# ---------------------------------------------------------------------------
# Error hierarchy
# ---------------------------------------------------------------------------


def test_all_errors_derive_from_repro_error():
    for cls in (
        SimulationError,
        NetworkError,
        MembershipError,
        ViewSynchronyError,
        EnrichedViewError,
        ApplicationError,
        InvariantViolation,
        ClassificationError,
    ):
        assert issubclass(cls, ReproError)
        with pytest.raises(ReproError):
            raise cls("boom")


# ---------------------------------------------------------------------------
# Transition analysis
# ---------------------------------------------------------------------------


def test_transition_matrix_conformance_flags():
    matrix = TransitionMatrix()
    matrix.add("Failure", "N", "R")
    assert matrix.conforms
    assert not matrix.complete
    matrix.add("Failure", "R", "N")  # not a Figure-1 edge
    assert not matrix.conforms
    assert ("Failure", "R", "N") in matrix.illegal_edges


def test_transition_matrix_merge_adds_counts():
    a = TransitionMatrix({("Repair", "R", "S"): 2})
    b = TransitionMatrix({("Repair", "R", "S"): 3})
    assert a.merge(b).counts[("Repair", "R", "S")] == 5


def test_live_run_transition_matrix_conforms():
    votes = {s: 1 for s in range(5)}
    cluster = Cluster(
        5, app_factory=lambda pid: ReplicatedFile(votes),
        config=ClusterConfig(seed=0),
    )
    assert cluster.settle(timeout=500)
    cluster.run_for(200)
    cluster.partition([[0, 1, 2], [3, 4]])
    assert cluster.settle(timeout=500)
    cluster.heal()
    assert cluster.settle(timeout=500)
    cluster.run_for(200)
    matrix = transition_matrix(cluster.recorder)
    assert matrix.conforms, matrix.illegal_edges
    assert ("Repair", "R", "S") in matrix.edges
    assert FIGURE_1_EDGES >= matrix.edges


# ---------------------------------------------------------------------------
# Stack dispatch corners
# ---------------------------------------------------------------------------


def test_unknown_payload_goes_to_app_on_direct():
    cluster = settled_cluster(2)
    got = []
    cluster.apps[1].on_direct = lambda src, p: got.append(p)
    # An unwrapped custom object (not a protocol message) via raw send.
    cluster.stack_at(0).send(cluster.stack_at(1).pid, {"raw": True})
    cluster.run_for(10)
    assert got == [{"raw": True}]


def test_send_after_crash_is_noop():
    cluster = settled_cluster(2)
    stack = cluster.stack_at(0)
    cluster.crash(0)
    stack.send_direct(cluster.stack_at(1).pid, "ghost")  # must not raise
    stack.send_site(1, "ghost")
    cluster.run_for(10)


def test_transfer_hook_can_consume_direct_payloads():
    cluster = settled_cluster(2)
    receiver = cluster.stack_at(1)
    seen_by_app = []
    receiver.app.on_direct = lambda src, p: seen_by_app.append(p)

    class Hook:
        def __init__(self):
            self.eaten = []

        def on_direct(self, src, payload):
            if payload == "for-hook":
                self.eaten.append(payload)
                return True
            return False

    hook = Hook()
    receiver.app_transfer_hook = hook
    cluster.stack_at(0).send_direct(receiver.pid, "for-hook")
    cluster.stack_at(0).send_direct(receiver.pid, "for-app")
    cluster.run_for(10)
    assert hook.eaten == ["for-hook"]
    assert seen_by_app == ["for-app"]
