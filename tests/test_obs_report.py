"""Report rendering + merged-trace overflow attribution.

* :func:`repro.obs.report.render_report` puts the live registry values
  side by side with the trace-derived aggregates of
  :mod:`repro.trace.stats`, and the two columns agree on a real run;
* a ring-buffer overflow surfaces as a ``dropped_events`` warning with
  per-node attribution;
* :meth:`TraceRecorder.merge` sums per-node overflow into
  ``dropped_by_source`` without double counting on re-merge.
"""

from __future__ import annotations

import pytest

from repro.obs.report import quantile, render_report
from repro.obs.registry import MetricsRegistry
from repro.obs.snapshot import MetricSample, MetricsSnapshot
from repro.runtime.cluster import Cluster, ClusterConfig
from repro.trace.events import AppEvent
from repro.trace.recorder import TraceRecorder
from repro.trace.stats import summarize
from repro.types import ProcessId

INF = float("inf")


@pytest.fixture(scope="module")
def run() -> Cluster:
    cluster = Cluster(4, config=ClusterConfig(seed=9))
    assert cluster.settle()
    cluster.partition([[0, 1], [2, 3]])
    assert cluster.settle()
    cluster.heal()
    assert cluster.settle()
    for stack in cluster.live_stacks():
        stack.multicast(("w", stack.pid.site))
    cluster.run_for(50.0)
    return cluster


def test_report_trace_and_live_columns_agree(run):
    trace = run.gather_trace()
    text = render_report(run.metrics_snapshot(), trace=trace)
    stats = summarize(trace)
    assert "trace vs live metrics" in text
    for line in text.splitlines():
        if line.strip().startswith("view installs"):
            trace_col, live_col = line.split()[-2:]
            assert trace_col == live_col == str(stats.view_installs)
            break
    else:
        pytest.fail("view installs row missing")
    assert "mode residency N" in text
    assert "spans (histograms" in text
    assert "multicast_delivery_latency" in text
    assert "WARNING" not in text  # nothing dropped in this run


def test_report_without_trace_renders_metrics_only():
    reg = MetricsRegistry(clock=lambda: 10.0, runtime="realnet")
    reg.counter("c_total", "test").labels().inc(4)
    text = render_report(reg.snapshot("node"), trace=None)
    assert "c_total" in text
    assert "trace vs live metrics" not in text


def test_quantile_reads_bucket_upper_bounds():
    sample = MetricSample(
        name="h", kind="histogram", labels=(), value=10.0, count=4,
        buckets=((1.0, 1), (2.0, 3), (4.0, 4), (INF, 4)),
    )
    assert quantile(sample, 0.25) == 1.0
    assert quantile(sample, 0.5) == 2.0
    assert quantile(sample, 0.95) == 4.0
    empty = MetricSample(name="h", kind="histogram", labels=(), value=0.0)
    assert quantile(empty, 0.5) == 0.0


# -- dropped-event attribution (TraceRecorder.merge fix) -------------------


def _overflowed(label: str, events: int, capacity: int) -> TraceRecorder:
    recorder = TraceRecorder(capacity=capacity, label=label)
    pid = ProcessId(0, 0)
    for i in range(events):
        recorder.record(AppEvent(time=float(i), pid=pid, tag="t"))
    assert recorder.dropped == max(0, events - capacity)
    return recorder


def test_merge_attributes_dropped_events_per_source():
    a = _overflowed("site0", events=7, capacity=4)  # drops 3
    b = _overflowed("site1", events=2, capacity=4)  # drops 0
    c = _overflowed("site2", events=9, capacity=4)  # drops 5
    merged = TraceRecorder.merge(a, b, c)
    assert merged.dropped == 8
    assert merged.dropped_by_source == {"site0": 3, "site2": 5}


def test_remerge_does_not_double_count():
    a = _overflowed("site0", events=7, capacity=4)
    b = _overflowed("site1", events=6, capacity=4)
    once = TraceRecorder.merge(a, b)
    env = _overflowed("env", events=5, capacity=4)
    twice = TraceRecorder.merge(once, env)
    assert twice.dropped == 3 + 2 + 1
    assert twice.dropped_by_source == {"site0": 3, "site1": 2, "env": 1}


def test_merge_unlabeled_source_gets_positional_name():
    a = _overflowed("", events=6, capacity=4)
    a.label = None
    merged = TraceRecorder.merge(a)
    assert merged.dropped_by_source == {"source0": 2}


def test_report_warns_on_dropped_events():
    merged = TraceRecorder.merge(
        _overflowed("site0", events=7, capacity=4),
        _overflowed("site1", events=2, capacity=4),
    )
    snap = MetricsSnapshot(source="x", runtime="sim", time=1.0, samples=())
    text = render_report(snap, trace=merged)
    assert "WARNING: dropped_events=3" in text
    assert "site0: 3" in text
    assert "site1" not in text  # clean nodes are not blamed
