"""Realnet client tier: TCP store clients, frame hardening, load smoke."""

from __future__ import annotations

import asyncio

import pytest

from repro.apps.factories import app_factory
from repro.apps.versioned_store import prov_tuple
from repro.client.client import AsyncStoreClient
from repro.client.protocol import ClientRequest, client_request_frame, parse_client_reply
from repro.realnet.cluster import RealCluster, RealClusterConfig
from repro.realnet.codec import _LEN, decode_frame_body, encode_frame
from repro.realnet.codec_bin import WIRE_FORMATS, schema_fingerprint

pytestmark = pytest.mark.realnet

HARD_TIMEOUT = 60.0
SETTLE = 20.0


def run(coro) -> None:
    asyncio.run(asyncio.wait_for(coro, HARD_TIMEOUT))


def store_config(seed: int) -> RealClusterConfig:
    return RealClusterConfig(seed=seed)


def test_tcp_client_put_get_history_ryw():
    async def scenario():
        factory = app_factory("store", 3)
        async with RealCluster(3, app_factory=factory, config=store_config(11)) as cluster:
            assert await cluster.settle(timeout=SETTLE), cluster.views()
            book = dict(cluster.address_book)
            client = AsyncStoreClient(addresses=book, site=0, client_id="alice")
            await client.connect()
            try:
                assert (await client.ping()).status == "ok"
                put = await client.put("k", "v1")
                assert put.status == "ok" and put.prov is not None
                # Read-your-writes from a different replica.
                other = AsyncStoreClient(addresses=book, site=2, client_id="bob")
                await other.connect()
                try:
                    got = await other.get("k", ryw=put.prov)
                    assert got.status == "ok" and got.value == "v1"
                finally:
                    await other.close()
                await client.put("k", "v2")
                hist = await client.history("k")
                assert hist.status == "ok"
                assert [link[0] for link in hist.chain] == ["v1", "v2"]
            finally:
                await client.close()

    run(scenario())


def test_leader_read_follows_redirect():
    async def scenario():
        factory = app_factory("store", 3)
        async with RealCluster(3, app_factory=factory, config=store_config(12)) as cluster:
            assert await cluster.settle(timeout=SETTLE), cluster.views()
            client = AsyncStoreClient(
                addresses=dict(cluster.address_book),
                site=2,  # not the leader: least member serves leader reads
                client_id="lr",
                read_mode="leader",
            )
            await client.connect()
            try:
                put = await client.put("k", "v")
                assert put.status == "ok"
                got = await client.get("k")
                assert got.status == "ok" and got.value == "v"
                # The redirect moved the connection to the leader.
                assert client._connected_site == 0
            finally:
                await client.close()

    run(scenario())


def test_garbage_frame_is_dropped_and_link_survives():
    """A malformed body on the node socket must cost one frame, not the
    connection: the server logs, bumps ``bad_frames`` and keeps serving
    the same link."""

    async def scenario():
        factory = app_factory("store", 3)
        async with RealCluster(3, app_factory=factory, config=store_config(13)) as cluster:
            assert await cluster.settle(timeout=SETTLE), cluster.views()
            host, port = cluster.address_book[0]
            reader, writer = await asyncio.open_connection(host, port)
            try:
                writer.write(
                    encode_frame(
                        {
                            "k": "hello",
                            "src": [-1, 0],
                            "codecs": ["bin1"],
                            "schema": schema_fingerprint(),
                        }
                    )
                )
                await writer.drain()
                prefix = await reader.readexactly(_LEN.size)
                welcome = decode_frame_body(
                    await reader.readexactly(_LEN.unpack(prefix)[0])
                )
                fmt = WIRE_FORMATS[welcome["codec"]]
                assert fmt.binary
                # A well-framed msg-kind body with a truncated header:
                # the codec raises, the server drops the frame, the link
                # lives.
                junk = b"\x01\xfe\xfe\xfe"
                writer.write(_LEN.pack(len(junk)) + junk)
                # Same connection, next frame: a valid ping must answer.
                writer.write(client_request_frame(fmt, ClientRequest(7, "ping")))
                await writer.drain()
                prefix = await reader.readexactly(_LEN.size)
                reply = parse_client_reply(
                    fmt, await reader.readexactly(_LEN.unpack(prefix)[0])
                )
                assert reply is not None
                assert reply.req_id == 7 and reply.status == "ok"
            finally:
                writer.close()
                await writer.wait_closed()
            assert cluster.transport_stats()["bad_frames"] >= 1

    run(scenario())


def test_divergent_partition_writes_survive_merge_realnet():
    """Satellite property on the real wire: writes acked in disjoint
    partitions all survive the heal with their provenance."""

    async def scenario():
        factory = app_factory("store", 5)
        async with RealCluster(5, app_factory=factory, config=store_config(14)) as cluster:
            assert await cluster.settle(timeout=SETTLE), cluster.views()
            book = dict(cluster.address_book)
            cluster.partition([[0, 1, 2], [3, 4]])
            assert await cluster.settle(timeout=SETTLE), cluster.views()
            maj = AsyncStoreClient(addresses=book, site=0, client_id="maj")
            mino = AsyncStoreClient(addresses=book, site=3, client_id="min")
            await maj.connect()
            await mino.connect()
            acked: dict[tuple, tuple[str, str]] = {}
            try:
                for i in range(3):
                    put = await maj.put(f"s{i % 2}", f"maj{i}")
                    if put.status == "ok":
                        acked[put.prov] = (f"s{i % 2}", f"maj{i}")
                    put = await mino.put(f"s{i % 2}", f"min{i}")
                    if put.status == "ok":
                        acked[put.prov] = (f"s{i % 2}", f"min{i}")
            finally:
                await maj.close()
                await mino.close()
            assert acked, "no write acked in either partition"
            cluster.heal()
            assert await cluster.settle(timeout=SETTLE), cluster.views()
            await asyncio.sleep(1.0)  # let the settlement decision fan out
            for site in range(5):
                app = cluster.app_at(site)
                for prov, (key, value) in acked.items():
                    chain = app.chains.get(key, ())
                    match = [e for e in chain if prov_tuple(e.prov) == prov]
                    assert match and match[0].value == value, (
                        f"site {site} lost acked write {prov} on {key!r}"
                    )

    run(scenario())


def test_open_loop_load_with_partition_heal_no_acked_loss():
    """Client-smoke shape: short open-loop load with a mid-run
    partition/heal; zero property violations, parseable SLO metrics."""
    from repro.apps.factories import app_factory as _factory
    from repro.net.faults import FaultSchedule, Heal, Partition
    from repro.ports import make_cluster
    from repro.workload.openloop import LoadSpec
    from repro.workload.runner import run_client_load

    cluster = make_cluster(
        "realnet", 5, app_factory=_factory("store", 5), seed=15
    )
    try:
        scale = cluster.time_scale
        schedule = FaultSchedule()
        schedule.add(Partition(60.0, ((0, 1, 2), (3, 4))))
        schedule.add(Heal(160.0))
        spec = LoadSpec(
            rate=60.0,
            duration=250.0 * scale,
            clients=6,
            n_keys=64,
            read_fraction=0.7,
            seed=15,
        )
        result = run_client_load(cluster, spec, schedule, slo_p99=500.0)
        assert result.load.completed > 0
        assert not result.workload.violations, result.workload.violations
        assert result.verdict.count > 0  # histograms populated
        names = {r.name for r in result.workload.reports}
        assert "AckedWriteLoss" in names
    finally:
        cluster.close()

    assert result.ok
