"""Realnet causal tracing: live trace pulls and identical taxonomies.

Acceptance half of the tracing tentpole that needs real sockets: a
traced :class:`RealCluster` serves its flight recorder over the 0x02
obs frame on the normal listening port (both codecs), the merged dumps
reconstruct the same span taxonomy the simulator produces, and a
traceless node simply never answers the trace request (the poller
yields ``None`` instead of hanging or crashing).
"""

from __future__ import annotations

import asyncio

import pytest

from repro.obs.trace_analysis import build_trees, critical_path
from repro.obs.tracing import TraceDump
from repro.obs.watch import fetch_trace, fetch_traces
from repro.realnet.cluster import RealCluster, RealClusterConfig

pytestmark = pytest.mark.realnet

HARD_TIMEOUT = 60.0
SETTLE = 20.0


def run(coro) -> None:
    asyncio.run(asyncio.wait_for(coro, HARD_TIMEOUT))


@pytest.mark.parametrize("codec", ["bin", "json"])
def test_fetch_trace_pulls_the_flight_recorder_over_each_codec(codec):
    async def scenario():
        config = RealClusterConfig(seed=11, codec=codec, tracing=True)
        async with RealCluster(3, config=config) as cluster:
            assert await cluster.settle(timeout=SETTLE), cluster.views()
            host, port = cluster.address_book[0]
            dump = await fetch_trace(host, port, codec=codec)
            assert isinstance(dump, TraceDump)
            assert dump.runtime == "realnet"
            assert dump.epoch > 0  # wall-clock base for cross-node merge
            names = {event.name for event in dump.events}
            assert "view.change" in names and "view.install" in names

    run(scenario())


def test_traceless_node_yields_none_not_a_hang():
    async def scenario():
        config = RealClusterConfig(seed=12)  # tracing off
        async with RealCluster(2, config=config) as cluster:
            assert await cluster.settle(timeout=SETTLE), cluster.views()
            host, port = cluster.address_book[0]
            dumps = await fetch_traces([(host, port)], timeout=1.0)
            assert dumps == [None]

    run(scenario())


def test_realnet_view_install_tree_matches_sim_taxonomy():
    """The partition/heal view-change tree reconstructs over real
    sockets with the same span vocabulary the sim acceptance test
    checks (tests/test_obs_tracing.py::TAXONOMY)."""
    from tests.test_obs_tracing import TAXONOMY

    from repro.apps.versioned_store import VersionedStore
    from repro.client.client import DriverStoreClient
    from repro.ports import make_cluster

    cluster = make_cluster(
        "realnet", 3, app_factory=lambda pid: VersionedStore(),
        seed=7, tracing=True,
    )
    try:
        assert cluster.settle()
        client = DriverStoreClient(cluster)
        try:
            assert client.put("k", "v").status == "ok"
        finally:
            client.close()
        cluster.partition([[0, 1], [2]])
        assert cluster.settle()
        cluster.heal()
        assert cluster.settle()
        trees = build_trees([rec.dump() for rec in cluster.flight_recorders()])
    finally:
        cluster.close()

    names = {span.name for tree in trees for span in tree.spans()}
    assert names <= TAXONOMY, names - TAXONOMY
    puts = [t for t in trees if t.kind == "client.put"]
    assert puts and puts[0].root.attrs["status"] == "ok"
    full = [
        tree for tree in trees
        if tree.kind == "view.change"
        and {"view.agree", "view.install", "settle.round"}
        <= {span.name for span in tree.spans()}
    ]
    assert full, "no complete view-change tree over realnet"
    path = [span.name for span in critical_path(full[-1])]
    assert path[:3] == ["view.change", "view.agree", "view.install"]
