"""Multi-process cluster driver: one OS process per site over real TCP.

These scenarios spawn real ``python -m repro realnet node --supervised``
child processes and drive them through :class:`ProcRealClusterDriver`'s
synchronous :class:`~repro.ports.ClusterPort` surface, so they live in
the ``realnet`` lane.  Every blocking step carries its own timeout
(process startup, settle polls, control-channel requests), so a wedged
cluster fails the test instead of hanging CI.

Wall time per scenario is dominated by child interpreter startup
(~0.5s per site); the settle budgets absorb loaded shared runners.
"""

from __future__ import annotations

import contextlib

import pytest

from repro.net.faults import Crash, FaultSchedule, Recover
from repro.ports import ClusterPort, make_cluster
from repro.trace.checks import check_enriched_views, check_view_synchrony

pytestmark = pytest.mark.realnet

#: Budget for each individual settle inside a scenario.
SETTLE = 25.0


def proc_cluster(n_sites: int, **kwargs) -> ClusterPort:
    return make_cluster("realnet-proc", n_sites, **kwargs)


def assert_no_violations(cluster: ClusterPort) -> None:
    merged = cluster.gather_trace()
    assert len(merged) > 0
    reports = check_view_synchrony(merged) + check_enriched_views(merged)
    for report in reports:
        assert report.ok, f"{report.name}: {report.violations[:5]}"


def test_proc_cluster_boots_to_a_common_view():
    with contextlib.closing(proc_cluster(3, seed=1)) as cluster:
        assert isinstance(cluster, ClusterPort)
        assert cluster.settle(timeout=SETTLE), cluster.views()
        views = set(cluster.views().values())
        assert len(views) == 1
        assert len(cluster.live_pids()) == 3
        # Real frames crossed real sockets between real processes.
        stats = cluster.network_stats()
        assert stats.delivered > 0
        assert_no_violations(cluster)


def test_proc_cluster_fault_cycle_stays_view_synchronous():
    """crash -> recover -> partition -> heal across process boundaries,
    with application traffic in flight; the merged per-process trace
    passes every checker."""
    with contextlib.closing(proc_cluster(4, seed=3)) as cluster:
        assert cluster.settle(timeout=SETTLE), cluster.views()
        accepted = cluster.mcast_many(0, 4, ("client", 0, 0))
        assert accepted == 4

        cluster.crash(2)
        assert cluster.settle(timeout=SETTLE), cluster.views()
        assert len(cluster.live_pids()) == 3

        stack = cluster.recover(2)  # blocks until the fresh process rejoined
        assert stack.pid.incarnation == 1
        assert cluster.settle(timeout=SETTLE), cluster.views()
        assert stack.pid in cluster.live_pids()

        cluster.partition([(0, 1), (2, 3)])
        assert cluster.settle(timeout=SETTLE), cluster.views()
        assert len(set(cluster.views().values())) == 2
        cluster.mcast_many(3, 4, ("client", 3, 0))

        cluster.heal()
        assert cluster.settle(timeout=SETTLE), cluster.views()
        assert len(set(cluster.views().values())) == 1

        assert cluster.wait_until(
            lambda c: c.delivered_total() > 0, timeout=SETTLE
        )
        assert_no_violations(cluster)


def test_proc_cluster_armed_schedule_and_metrics():
    """FaultSchedule.arm drives the child processes on the wall clock,
    and metrics_snapshot merges per-process registries."""
    with contextlib.closing(proc_cluster(3, seed=5)) as cluster:
        assert cluster.settle(timeout=SETTLE), cluster.views()
        schedule = FaultSchedule()
        schedule.add(Crash(20.0, 1))
        schedule.add(Recover(120.0, 1))
        cluster.arm(schedule)
        assert cluster.wait_until(
            lambda c: not c.stack_at(1).alive, timeout=SETTLE
        )
        assert cluster.wait_until(
            lambda c: c.stack_at(1).alive, timeout=SETTLE
        )
        assert cluster.settle(timeout=SETTLE), cluster.views()
        cluster.mcast_many(0, 3, ("client", 0, 0))
        assert cluster.wait_until(
            lambda c: c.delivered_total() >= 9, timeout=SETTLE
        )
        snapshot = cluster.metrics_snapshot()
        assert snapshot.total("deliveries_total") >= 9
        assert_no_violations(cluster)


def test_proc_cluster_join_grows_the_group():
    with contextlib.closing(proc_cluster(3, seed=2)) as cluster:
        assert cluster.settle(timeout=SETTLE), cluster.views()
        stack = cluster.join(3)
        assert cluster.settle(timeout=SETTLE), cluster.views()
        assert stack.pid in cluster.live_pids()
        assert len(cluster.live_pids()) == 4
        assert len(set(cluster.views().values())) == 1
        assert_no_violations(cluster)


def test_proc_cluster_json_codec_interops():
    with contextlib.closing(proc_cluster(3, seed=4, codec="json")) as cluster:
        assert cluster.settle(timeout=SETTLE), cluster.views()
        assert len(set(cluster.views().values())) == 1
        stats = cluster.transport_stats()
        assert stats["codecs"].get("json", 0) > 0
        assert_no_violations(cluster)


def test_checked_workload_runs_over_processes():
    """The acceptance scenario: the figure-2 schedule plus a multicast
    client drives six OS processes through the port and the merged
    trace passes every view-synchrony check."""
    from repro.workload.clients import MulticastClient
    from repro.workload.runner import run_checked_workload
    from repro.workload.scenarios import figure2_scenario

    with contextlib.closing(proc_cluster(6, seed=11)) as cluster:
        report = run_checked_workload(
            cluster,
            figure2_scenario(),
            client_factories=[lambda c: MulticastClient(c, interval=20.0)],
        )
        assert report.settled, cluster.views()
        assert report.violations == [], report.violations[:5]
        assert report.events_checked > 0
        assert all(c.stats.succeeded > 0 for c in report.clients)
        assert cluster.network_stats().delivered > 0


def test_proc_runtime_rejects_factory_closures():
    with pytest.raises(ValueError, match="process boundary"):
        make_cluster("realnet-proc", 3, app_factory=lambda pid: object())


def test_proc_runtime_app_at_is_unavailable():
    from repro.errors import SimulationError

    with contextlib.closing(proc_cluster(3, seed=6)) as cluster:
        assert cluster.settle(timeout=SETTLE)
        with pytest.raises(SimulationError, match="child process"):
            cluster.app_at(0)
