"""Loopback smoke tests: the unmodified stacks over real TCP sockets.

Everything here binds real localhost sockets and runs on the wall
clock, so these tests live behind the ``realnet`` marker and run in
their own CI lane (``pytest -m realnet tests/realnet``) instead of the
deterministic tier-1 lane.

Every scenario runs under :data:`HARD_TIMEOUT` via ``asyncio.wait_for``
— a wedged cluster fails the test instead of hanging CI.  Typical
wall time per scenario is well under two seconds; the budget is ~30x
that to absorb loaded shared runners.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.net.faults import FaultSchedule, Heal, Partition
from repro.net.latency import UniformLatency
from repro.realnet.cluster import RealCluster, RealClusterConfig
from repro.realnet.demo import partition_merge_demo
from repro.trace.checks import check_enriched_views, check_view_synchrony

pytestmark = pytest.mark.realnet

#: Hard wall-clock budget per scenario (seconds).
HARD_TIMEOUT = 60.0
#: Budget for each individual settle inside a scenario.
SETTLE = 20.0


def run(coro) -> None:
    asyncio.run(asyncio.wait_for(coro, HARD_TIMEOUT))


def assert_no_violations(cluster: RealCluster) -> None:
    reports = check_view_synchrony(cluster.recorder) + check_enriched_views(
        cluster.recorder
    )
    for report in reports:
        assert report.ok, f"{report.name}: {report.violations[:5]}"


def test_three_node_bootstrap_reaches_common_view():
    async def scenario():
        async with RealCluster(3, config=RealClusterConfig(seed=1)) as cluster:
            assert await cluster.settle(timeout=SETTLE), cluster.views()
            views = {s.current_view_id() for s in cluster.live_stacks()}
            assert len(views) == 1
            members = cluster.stack_at(0).view.members
            assert members == cluster.live_pids()
            # Real frames crossed real sockets to get here.
            stats = cluster.network_stats()
            assert stats.delivered > 0
            assert any(n.network.frames_received() > 0 for n in cluster.nodes.values())
            assert_no_violations(cluster)

    run(scenario())


def test_node_kill_triggers_view_change():
    async def scenario():
        async with RealCluster(3, config=RealClusterConfig(seed=2)) as cluster:
            assert await cluster.settle(timeout=SETTLE), cluster.views()
            victim = cluster.stack_at(2).pid
            cluster.crash(2)  # kills the stack AND closes its sockets
            assert await cluster.settle(timeout=SETTLE), cluster.views()
            for stack in cluster.live_stacks():
                assert victim not in stack.view.members
                assert stack.view.members == cluster.live_pids()
            assert_no_violations(cluster)

    run(scenario())


def test_killed_node_recovers_with_fresh_incarnation():
    async def scenario():
        async with RealCluster(3, config=RealClusterConfig(seed=3)) as cluster:
            assert await cluster.settle(timeout=SETTLE), cluster.views()
            cluster.crash(1)
            assert await cluster.settle(timeout=SETTLE), cluster.views()
            await cluster.recover(1)  # fresh incarnation, fresh port
            assert await cluster.settle(timeout=SETTLE), cluster.views()
            fresh = cluster.stack_at(1).pid
            assert fresh.incarnation == 1
            for stack in cluster.live_stacks():
                assert fresh in stack.view.members
            assert_no_violations(cluster)

    run(scenario())


def test_partition_two_eviews_heal_svsetmerge():
    """The acceptance scenario: firewall -> two e-views -> heal -> merge."""

    async def scenario():
        result = await partition_merge_demo(n_sites=3, seed=4, timeout=SETTLE)
        assert len(set(result.partition_views.values())) == 2
        assert result.svsets_after_heal >= 2  # partition scars preserved
        assert result.svsets_after_merge == 1  # SV-SetMerge unified them
        assert result.property_violations == 0
        assert result.dropped_partition > 0  # the firewall really cut frames

    run(scenario())


def test_fault_schedule_applies_to_real_sockets():
    """A declarative FaultSchedule armed on the wall-clock scheduler."""

    async def scenario():
        async with RealCluster(3, config=RealClusterConfig(seed=5)) as cluster:
            assert await cluster.settle(timeout=SETTLE), cluster.views()
            schedule = FaultSchedule()
            base = cluster.now
            schedule.add(Partition(base + 0.1, ((0, 1), (2,))))
            schedule.add(Heal(base + 1.2))
            schedule.arm(cluster.scheduler, cluster)
            split = await cluster.wait_until(
                lambda c: len({s.current_view_id() for s in c.live_stacks()}) == 2,
                timeout=SETTLE,
            )
            assert split, cluster.views()
            # A converged partition already counts as settled, so wait
            # for the post-heal merge explicitly rather than racing the
            # Heal timer with settle().
            merged = await cluster.wait_until(
                lambda c: c.is_settled()
                and len({s.current_view_id() for s in c.live_stacks()}) == 1,
                timeout=SETTLE,
            )
            assert merged, cluster.views()
            assert_no_violations(cluster)

    run(scenario())


def test_bootstrap_survives_injected_loss_and_latency():
    config = RealClusterConfig(
        seed=6,
        loss_prob=0.03,
        latency=UniformLatency(0.0005, 0.004),
        scale=1.5,  # injected latency eats margin; stretch the timers
    )

    async def scenario():
        async with RealCluster(3, config=config) as cluster:
            assert await cluster.settle(timeout=SETTLE), cluster.views()
            stats = cluster.network_stats()
            assert stats.dropped_loss > 0  # the chaos knob really fired
            assert_no_violations(cluster)

    run(scenario())

def test_binary_links_negotiate_and_multicast_delivers():
    """Default (bin) cluster: every link upgrades to bin1 and app
    multicasts cross the wire through the binary data path."""

    async def scenario():
        delivered: list = []

        def factory(pid):
            from repro.vsync.events import GroupApplication

            class App(GroupApplication):
                def on_message(self, sender, payload, msg_id):
                    delivered.append((pid.site, payload))

            return App()

        config = RealClusterConfig(seed=7, codec="bin")
        async with RealCluster(3, app_factory=factory, config=config) as cluster:
            assert await cluster.settle(timeout=SETTLE), cluster.views()
            cluster.stack_at(0).multicast(("bin-payload", 1, 2.5, (3, 4)))
            arrived = await cluster.wait_until(
                lambda c: len(delivered) == 3, timeout=SETTLE
            )
            assert arrived, delivered
            assert all(p == ("bin-payload", 1, 2.5, (3, 4)) for _, p in delivered)
            wire = cluster.transport_stats()
            assert wire["codecs"] == {"bin1": 6}  # every live link upgraded
            assert wire["frames_sent"] > 0
            assert wire["flushes"] > 0
            assert wire["frames_dropped"] == 0
            assert_no_violations(cluster)

    run(scenario())


def test_json_codec_cluster_still_settles():
    """codec="json" keeps the debug/compat data path fully working."""

    async def scenario():
        config = RealClusterConfig(seed=8, codec="json")
        async with RealCluster(3, config=config) as cluster:
            assert await cluster.settle(timeout=SETTLE), cluster.views()
            wire = cluster.transport_stats()
            assert wire["codecs"] == {"json": 6}
            assert_no_violations(cluster)

    run(scenario())


def test_mixed_codec_cluster_interoperates():
    """A JSON-only peer in a binary-capable cluster: hello negotiation
    downgrades exactly the links that touch it, and the group still
    reaches one common view."""

    async def scenario():
        from repro.realnet.node import RealNode
        from repro.realnet.wallclock import WallClockScheduler
        from repro.types import ProcessId

        scheduler = WallClockScheduler()
        address_book: dict[int, tuple[str, int]] = {}
        codecs = {0: "bin", 1: "bin", 2: "json"}
        nodes = {
            site: RealNode(
                ProcessId(site, 0),
                address_book,
                scheduler=scheduler,
                universe=lambda: {0, 1, 2},
                codec=codec,
            )
            for site, codec in codecs.items()
        }
        try:
            for node in nodes.values():
                await node.start_transport()
            for node in nodes.values():
                node.start_stack()

            def settled() -> bool:
                expected = {n.stack.pid for n in nodes.values()}
                return all(
                    n.stack.view is not None
                    and not n.stack.is_flushing
                    and n.stack.view.members == expected
                    for n in nodes.values()
                )

            from repro.realnet.transport import wait_for_condition

            assert await wait_for_condition(settled, SETTLE), {
                site: str(n.stack.view) for site, n in nodes.items()
            }
            negotiated: dict[str, int] = {}
            for node in nodes.values():
                for stats in node.network.link_stats().values():
                    name = stats["codec"]
                    negotiated[name] = negotiated.get(name, 0) + 1
            # 0<->1 upgraded to binary; every link touching the
            # JSON-only site 2 fell back to JSON.
            assert negotiated == {"bin1": 2, "json": 4}
        finally:
            for node in nodes.values():
                await node.stop()

    run(scenario())


def test_demo_reports_transport_stats():
    """The demo surfaces the new link/batch counters."""

    async def scenario():
        result = await partition_merge_demo(n_sites=3, seed=9, timeout=SETTLE)
        assert result.wire_frames > 0
        assert result.wire_flushes > 0
        assert result.wire_bytes > 0
        assert result.codecs.get("bin1", 0) > 0  # default codec is binary

    run(scenario())


# ---------------------------------------------------------------------------
# One harness, two runtimes: the blocking ClusterPort driver
# ---------------------------------------------------------------------------


def test_driver_presents_the_port_over_sockets():
    """RealClusterDriver satisfies ClusterPort with the simulator's
    synchronous contracts — including recover() returning the stack."""
    import contextlib

    from repro.ports import ClusterPort, make_cluster

    with contextlib.closing(make_cluster("realnet", 3, seed=9)) as cluster:
        assert isinstance(cluster, ClusterPort)
        assert cluster.time_scale == pytest.approx(0.01)
        assert cluster.settle(timeout=SETTLE), cluster.views()
        cluster.crash(2)
        assert cluster.settle(timeout=SETTLE), cluster.views()
        stack = cluster.recover(2)  # blocks until the fresh node is up
        assert stack.pid.incarnation == 1
        assert cluster.settle(timeout=SETTLE), cluster.views()
        assert stack.pid in cluster.live_pids()
        fired = []
        cluster.after(0.05, lambda: fired.append(cluster.now))
        assert cluster.wait_until(lambda c: fired, timeout=SETTLE)
        merged = cluster.gather_trace()
        assert len(merged) > 0
        reports = check_view_synchrony(merged) + check_enriched_views(merged)
        assert all(r.ok for r in reports), [r for r in reports if not r.ok]


def test_checked_workload_runs_unchanged_over_realnet():
    """The acceptance scenario: the same figure-2 schedule + client mix
    the simulator runs (tests/test_cluster_port.py) drives six real
    TCP nodes through the port, and the merged per-node trace passes
    every view-synchrony check."""
    import contextlib

    from repro.ports import make_cluster
    from repro.workload.clients import MulticastClient, QueryClient
    from repro.workload.runner import run_checked_workload
    from repro.workload.scenarios import figure2_scenario

    def db_factory(pid):
        from repro.apps.replicated_db import ParallelLookupDatabase

        return ParallelLookupDatabase({"all": lambda k, v: True})

    with contextlib.closing(
        make_cluster("realnet", 6, app_factory=db_factory, seed=10)
    ) as cluster:
        report = run_checked_workload(
            cluster,
            figure2_scenario(),
            client_factories=[
                lambda c: MulticastClient(c, interval=20.0),
                lambda c: QueryClient(c, interval=30.0),
            ],
        )
        assert report.settled, cluster.views()
        assert report.violations == [], report.violations[:5]
        assert report.events_checked > 0
        assert all(c.stats.succeeded > 0 for c in report.clients)
        # Real frames carried the workload: the wire counters moved.
        assert cluster.network_stats().delivered > 0


def test_checked_workload_over_realnet_with_gossip_plane():
    """The figure-2 schedule again, with the failure-detection plane
    switched to gossip digests (full fanout at n=6, so the epidemic
    degenerates to all-to-all and the default one-hop ``fd_timeout``
    stays valid): GossipDigest frames cross real sockets through the
    negotiated codec and the merged trace still passes every check."""
    import contextlib

    from repro.ports import make_cluster
    from repro.workload.clients import MulticastClient
    from repro.workload.runner import run_checked_workload
    from repro.workload.scenarios import figure2_scenario

    with contextlib.closing(
        make_cluster("realnet", 6, seed=10, fd_mode="gossip", gossip_fanout=5)
    ) as cluster:
        report = run_checked_workload(
            cluster,
            figure2_scenario(),
            client_factories=[lambda c: MulticastClient(c, interval=20.0)],
        )
        assert report.settled, cluster.views()
        assert report.violations == [], report.violations[:5]
        assert report.events_checked > 0
        assert cluster.network_stats().delivered > 0


def test_cli_run_realnet_end_to_end(capsys):
    """`python -m repro run --runtime realnet` completes with checks."""
    from repro.cli import main

    assert main(["run", "--runtime", "realnet", "--sites", "3",
                 "--seed", "7", "--duration", "150"]) == 0
    out = capsys.readouterr().out
    assert "runtime=realnet" in out
    assert "wall time (s)" in out
    assert "VIOLATIONS" not in out
