"""Loopback smoke tests over real TCP sockets (marker: realnet)."""
