"""Shrunk fuzz reproducers replay on the real-network runtime.

The acceptance bar for the fuzzer's portability claim: the checked-in
minimal reproducer (shrunk on the simulator) must trigger the same
checker verdict over real TCP sockets.  Runs in the ``realnet`` CI
lane (``pytest -m realnet tests/realnet``).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.fuzz.corpus import CorpusEntry
from repro.fuzz.engine import FuzzConfig, FuzzEngine

pytestmark = pytest.mark.realnet

REPRODUCER = (
    Path(__file__).resolve().parents[2] / "corpus" / "lost_settlement_min.json"
)


def test_checked_in_reproducer_replays_on_realnet():
    entry = CorpusEntry.load(REPRODUCER)
    assert entry.planted_bug == "lost_settlement"
    engine = FuzzEngine(
        FuzzConfig(runtime="realnet", n_sites=entry.workload.n_sites)
    )
    ok, executed = engine.replay(entry)
    assert ok, (
        f"sim-shrunk reproducer did not reproduce on realnet: "
        f"{executed.failing_checkers} / {executed.violations[:3]}"
    )


def test_reproducer_schedule_is_clean_on_realnet_without_the_bug():
    entry = CorpusEntry.load(REPRODUCER)
    from dataclasses import replace

    disarmed = replace(entry, planted_bug=None, failing_checkers=(),
                       violations=(), signature=frozenset())
    engine = FuzzEngine(
        FuzzConfig(runtime="realnet", n_sites=entry.workload.n_sites)
    )
    executed = engine.execute_entry(disarmed)
    assert not executed.failed, executed.violations[:3]
