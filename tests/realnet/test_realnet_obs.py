"""Realnet observability smoke: live snapshots over the link protocol.

``repro obs watch`` clients dial a node's *normal* listening socket,
negotiate a codec like any peer, and poll metric snapshots.  These
tests run an in-process :class:`RealCluster` and fetch snapshots over
both wire codecs, then check the checked-workload path emits the same
named metrics the simulator does (the unified-namespace acceptance
criterion).  Real sockets + wall clock, so they live behind the
``realnet`` marker.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.obs.watch import fetch_snapshot, fetch_snapshots, render_watch
from repro.realnet.cluster import RealCluster, RealClusterConfig

pytestmark = pytest.mark.realnet

HARD_TIMEOUT = 60.0
SETTLE = 20.0

#: Metric names both runtimes must emit for the same workload.
UNIFIED_NAMES = {
    "view_changes_total",
    "view_change_duration",
    "eview_changes_total",
    "multicasts_total",
    "deliveries_total",
    "multicast_delivery_latency",
    "mode_residency",
    "mode_transitions_total",
    "net_messages_sent_total",
    "net_messages_delivered_total",
}


def run(coro) -> None:
    asyncio.run(asyncio.wait_for(coro, HARD_TIMEOUT))


@pytest.mark.parametrize("codec", ["bin", "json"])
def test_watch_fetches_live_snapshot_over_each_codec(codec):
    async def scenario():
        config = RealClusterConfig(seed=11, codec=codec)
        async with RealCluster(3, config=config) as cluster:
            assert await cluster.settle(timeout=SETTLE), cluster.views()
            for stack in cluster.live_stacks():
                stack.multicast(("w", stack.pid.site))
            await asyncio.sleep(0.3)
            host, port = cluster.address_book[0]
            snap = await fetch_snapshot(host, port, codec=codec)
            assert snap.runtime == "realnet"
            assert snap.total("view_changes_total") >= 3
            assert snap.total("multicasts_total") >= 3
            assert snap.total("deliveries_total") >= 9

    run(scenario())


def test_watch_polls_all_nodes_and_renders_console():
    async def scenario():
        async with RealCluster(3, config=RealClusterConfig(seed=12)) as cluster:
            assert await cluster.settle(timeout=SETTLE), cluster.views()
            targets = [cluster.address_book[s] for s in sorted(cluster.address_book)]
            snapshots = await fetch_snapshots(targets)
            assert all(s is not None for s in snapshots)
            frame = render_watch(targets, snapshots)
            lines = frame.splitlines()
            assert len(lines) == 1 + len(targets)  # header + one row per node
            assert "unreachable" not in frame
            # Co-located nodes share one registry: no inflated merged row.
            assert "(merged)" not in frame
            down = targets + [("127.0.0.1", 1)]  # an unreachable target
            snapshots = await fetch_snapshots(down)
            assert snapshots[-1] is None
            assert "unreachable" in render_watch(down, snapshots)

    run(scenario())


def test_realnet_fig2_workload_emits_the_unified_metric_names():
    """Acceptance: the figure-2 checked workload emits the same named
    metrics over real sockets as on the simulator."""
    from repro.apps.replicated_db import ParallelLookupDatabase
    from repro.ports import make_cluster
    from repro.workload.clients import MulticastClient, QueryClient
    from repro.workload.runner import run_checked_workload
    from repro.workload.scenarios import figure2_scenario

    def db_factory(pid):
        return ParallelLookupDatabase({"all": lambda k, v: True})

    cluster = make_cluster("realnet", 6, app_factory=db_factory, seed=7)
    try:
        report = run_checked_workload(
            cluster,
            figure2_scenario(),
            client_factories=[
                lambda c: MulticastClient(c, interval=20.0),
                lambda c: QueryClient(c, interval=30.0),
            ],
        )
    finally:
        cluster.close()
    assert report.settled
    assert report.metrics.runtime == "realnet"
    names = set(report.metrics.names())
    missing = (UNIFIED_NAMES | {
        "settlement_sessions_total",
        "settlement_duration",
    }) - names
    assert not missing, f"realnet snapshot missing {sorted(missing)}"
