"""Metrics registry units + the sim determinism acceptance check.

Tier-1 coverage for :mod:`repro.obs.registry` and
:mod:`repro.obs.snapshot`:

* histogram bucket-boundary assignment under Prometheus ``le``
  (inclusive upper bound) semantics, including exact boundaries and
  the ``+Inf`` overflow slot;
* ``merge_snapshots`` is associative and key-wise correct over mixed
  counter/histogram series;
* two identical seeded simulator runs of the figure-2 checked workload
  produce **byte-identical** Prometheus exports (metric values are a
  deterministic function of the seed);
* the ``metrics=False`` bench mode keeps the registry readable while
  the in-stack hooks stay off the hot path.
"""

from __future__ import annotations

import math

import pytest

from repro.apps.replicated_db import ParallelLookupDatabase
from repro.obs.export import to_prometheus
from repro.obs.registry import DEFAULT_BUCKETS, MetricsRegistry
from repro.obs.snapshot import MetricSample, MetricsSnapshot, merge_snapshots
from repro.ports import make_cluster
from repro.runtime.cluster import Cluster, ClusterConfig
from repro.workload.clients import MulticastClient, QueryClient
from repro.workload.runner import run_checked_workload
from repro.workload.scenarios import figure2_scenario

INF = float("inf")


def _registry() -> MetricsRegistry:
    return MetricsRegistry(clock=lambda: 42.0, runtime="sim")


def _cum(sample: MetricSample) -> dict[float, int]:
    return {le: cum for le, cum in sample.buckets}


# -- histogram bucket assignment -------------------------------------------


def test_default_buckets_are_powers_of_two():
    assert DEFAULT_BUCKETS[0] == 2.0**-10
    assert DEFAULT_BUCKETS[-1] == 2.0**10
    assert len(DEFAULT_BUCKETS) == 21
    assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


def test_histogram_exact_boundary_counts_into_le_bucket():
    reg = _registry()
    fam = reg.histogram("h", "test", ("pid",))
    fam.labels("p0.0").observe(1.0)  # exactly a boundary: le=1.0 holds it
    cum = _cum(reg.snapshot().sample("h", pid="p0.0"))
    assert cum[1.0] == 1
    assert cum[0.5] == 0
    assert cum[2.0] == 1
    assert cum[INF] == 1


def test_histogram_between_boundaries_rounds_up():
    reg = _registry()
    fam = reg.histogram("h", "test")
    fam.labels().observe(1.5)  # strictly between 1.0 and 2.0
    cum = _cum(reg.snapshot().sample("h"))
    assert cum[1.0] == 0
    assert cum[2.0] == 1


def test_histogram_underflow_and_overflow():
    reg = _registry()
    fam = reg.histogram("h", "test")
    child = fam.labels()
    child.observe(0.0)  # below the smallest bound: first bucket
    child.observe(2.0**-10)  # exactly the smallest bound: same bucket
    child.observe(4096.0)  # above the largest bound: only +Inf holds it
    sample = reg.snapshot().sample("h")
    cum = _cum(sample)
    assert cum[2.0**-10] == 2
    assert cum[2.0**10] == 2  # the overflow is in no finite bucket
    assert cum[INF] == 3
    assert sample.count == 3
    assert sample.value == pytest.approx(0.0 + 2.0**-10 + 4096.0)


def test_histogram_cumulative_is_nondecreasing():
    reg = _registry()
    child = reg.histogram("h", "test").labels()
    for v in (0.01, 0.5, 1.0, 3.0, 100.0, 5000.0):
        child.observe(v)
    cum = [c for _le, c in reg.snapshot().sample("h").buckets]
    assert cum == sorted(cum)
    assert cum[-1] == 6


# -- registry surface ------------------------------------------------------


def test_value_reads_counter_histogram_and_callback():
    reg = _registry()
    reg.counter("c", "test", ("pid",)).labels("p0.0").inc(3.0)
    reg.histogram("h", "test").labels().observe(1.0)
    reg.gauge_callback("g", "test", lambda: 7.5)
    assert reg.value("c", "p0.0") == 3.0
    assert reg.value("h") == 1.0  # histograms read as their count
    assert reg.value("g") == 7.5
    with pytest.raises(KeyError):
        reg.value("nope")


def test_reregistration_same_shape_ok_mismatch_raises():
    reg = _registry()
    fam = reg.counter("c", "test", ("pid",))
    assert reg.counter("c", "test", ("pid",)) is fam
    with pytest.raises(ValueError):
        reg.gauge("c", "test", ("pid",))
    with pytest.raises(ValueError):
        reg.counter("c", "test", ("site",))


def test_snapshot_is_sorted_and_immutable_copy():
    reg = _registry()
    fam = reg.counter("z_last", "test", ("pid",))
    fam.labels("p1.0").inc()
    fam.labels("p0.0").inc()
    reg.counter("a_first", "test").labels().inc()
    snap = reg.snapshot("unit")
    names = [(s.name, s.labels) for s in snap.samples]
    assert names == sorted(names)
    assert snap.source == "unit"
    assert snap.time == 42.0
    fam.labels("p0.0").inc(10)  # mutating after the fact
    assert snap.sample("z_last", pid="p0.0").value == 1.0


# -- merge -----------------------------------------------------------------


def _snap(source: str, *samples: MetricSample) -> MetricsSnapshot:
    return MetricsSnapshot(
        source=source, runtime="sim", time=1.0, samples=tuple(samples)
    )


def _counter(name: str, pid: str, value: float) -> MetricSample:
    return MetricSample(
        name=name, kind="counter", labels=(("pid", pid),), value=value
    )


def _hist(name: str, value: float, count: int, buckets) -> MetricSample:
    return MetricSample(
        name=name,
        kind="histogram",
        labels=(),
        value=value,
        count=count,
        buckets=tuple(buckets),
    )


def test_merge_sums_matching_series_and_keeps_distinct_ones():
    a = _snap("a", _counter("c", "p0.0", 2.0), _counter("c", "p1.0", 1.0))
    b = _snap("b", _counter("c", "p0.0", 3.0), _counter("d", "p0.0", 5.0))
    merged = merge_snapshots(a, b)
    assert merged.sample("c", pid="p0.0").value == 5.0
    assert merged.sample("c", pid="p1.0").value == 1.0
    assert merged.sample("d", pid="p0.0").value == 5.0
    assert merged.runtime == "sim"


def test_merge_histograms_adds_buckets_by_bound():
    a = _snap("a", _hist("h", 3.0, 2, [(1.0, 1), (2.0, 2), (INF, 2)]))
    b = _snap("b", _hist("h", 10.0, 3, [(1.0, 0), (2.0, 1), (INF, 3)]))
    merged = merge_snapshots(a, b).sample("h")
    assert merged.value == 13.0
    assert merged.count == 5
    assert _cum(merged) == {1.0: 1, 2.0: 3, INF: 5}


def test_merge_is_associative():
    # Integer-valued series so float addition order cannot differ.
    a = _snap("a", _counter("c", "p0.0", 2.0), _hist("h", 3.0, 2, [(1.0, 2), (INF, 2)]))
    b = _snap("b", _counter("c", "p0.0", 4.0), _counter("c", "p1.0", 8.0))
    c = _snap("c", _hist("h", 5.0, 1, [(1.0, 0), (INF, 1)]))
    left = merge_snapshots(merge_snapshots(a, b), c)
    right = merge_snapshots(a, merge_snapshots(b, c))
    assert left.samples == right.samples
    assert left.time == right.time


def test_merge_mixed_runtime_is_labeled_mixed():
    a = _snap("a", _counter("c", "p0.0", 1.0))
    b = MetricsSnapshot(
        source="b", runtime="realnet", time=2.0,
        samples=(_counter("c", "p0.0", 1.0),),
    )
    merged = merge_snapshots(a, b)
    assert merged.runtime == "mixed"
    assert merged.time == 2.0


# -- sim determinism (acceptance criterion) --------------------------------


def _fig2_prometheus() -> tuple[str, MetricsSnapshot]:
    def db_factory(pid):
        return ParallelLookupDatabase({"all": lambda k, v: True})

    cluster = make_cluster("sim", 6, app_factory=db_factory, seed=7)
    report = run_checked_workload(
        cluster,
        figure2_scenario(),
        client_factories=[
            lambda c: MulticastClient(c, interval=20.0),
            lambda c: QueryClient(c, interval=30.0),
        ],
    )
    assert report.settled and not report.violations
    return to_prometheus(report.metrics), report.metrics


def test_sim_metrics_identical_across_two_seeded_runs():
    text1, snap1 = _fig2_prometheus()
    text2, snap2 = _fig2_prometheus()
    assert text1 == text2  # byte-identical exports
    assert snap1.samples == snap2.samples
    assert snap1.time == snap2.time
    for name in (
        "view_changes_total",
        "settlement_duration",
        "multicast_delivery_latency",
        "mode_residency",
        "view_change_duration",
        "sim_events_total",
    ):
        assert name in snap1.names(), name
    assert snap1.total("view_changes_total") > 0
    assert snap1.total("multicasts_total") > 0


# -- bench mode ------------------------------------------------------------


def test_metrics_off_keeps_registry_readable_but_hooks_silent():
    cluster = Cluster(4, config=ClusterConfig(seed=1, metrics=False))
    assert cluster.settle()
    assert cluster.obs is None
    assert all(s.obs is None for s in cluster.live_stacks())
    # Callback gauges still serve the bench read path...
    assert cluster.metrics.value("sim_events_total") > 0
    assert cluster.metrics.value("net_messages_delivered_total") > 0
    # ...but no stack-hook series exist.
    assert "view_changes_total" not in cluster.metrics_snapshot().names()


def test_metrics_on_wires_stack_hooks():
    cluster = Cluster(4, config=ClusterConfig(seed=1))
    assert cluster.settle()
    assert all(s.obs is cluster.obs for s in cluster.live_stacks())
    snap = cluster.metrics_snapshot()
    assert snap.total("view_changes_total") >= 4  # one install per site
    assert math.isclose(
        snap.total("view_changes_total"),
        len(list(cluster.gather_trace().view_installs())),
    )
