"""Tests for the cluster harness itself: lifecycle guards, joins,
recoveries, total-failure durability of every example application."""

from __future__ import annotations

import pytest

from repro.apps.lock_manager import MajorityLockManager
from repro.apps.replicated_db import ParallelLookupDatabase
from repro.errors import SimulationError
from repro.runtime.cluster import Cluster, ClusterConfig

from tests.conftest import settled_cluster


def test_start_running_site_rejected():
    cluster = settled_cluster(2)
    with pytest.raises(SimulationError):
        cluster.start_site(0)


def test_recover_live_site_rejected():
    cluster = settled_cluster(2)
    with pytest.raises(SimulationError):
        cluster.recover(1)


def test_stack_at_unknown_site_rejected():
    cluster = settled_cluster(2)
    with pytest.raises(SimulationError):
        cluster.stack_at(99)


def test_zero_site_cluster_rejected():
    with pytest.raises(SimulationError):
        Cluster(0)


def test_crash_is_idempotent_on_cluster():
    cluster = settled_cluster(2)
    cluster.crash(1)
    cluster.crash(1)  # second crash is a no-op
    assert not cluster.stacks[1].alive


def test_views_helper_excludes_dead_sites():
    cluster = settled_cluster(3)
    cluster.crash(2)
    views = cluster.views()
    assert 2 not in views
    assert set(views) == {0, 1}


def test_live_pids_tracks_incarnations():
    cluster = settled_cluster(2)
    cluster.crash(0)
    cluster.settle(timeout=400)
    fresh = cluster.recover(0)
    assert fresh.pid in cluster.live_pids()
    assert len(cluster.live_pids()) == 2


def test_join_extends_universe_and_heartbeats_reach_it():
    cluster = settled_cluster(2)
    cluster.join(5)  # non-contiguous site number
    assert cluster.settle(timeout=500)
    assert {p.site for p in cluster.stack_at(0).view.members} == {0, 1, 5}


def test_db_survives_total_failure():
    cluster = Cluster(
        3,
        app_factory=lambda pid: ParallelLookupDatabase({"all": lambda k, v: True}),
        config=ClusterConfig(seed=4),
    )
    assert cluster.settle(timeout=500)
    cluster.run_for(200)
    cluster.apps[0].insert("durable", 42)
    cluster.run_for(30)
    for site in range(3):
        cluster.crash(site)
    cluster.run_for(60)
    for site in range(3):
        cluster.recover(site)
    assert cluster.settle(timeout=600)
    cluster.run_for(300)
    assert cluster.apps[0].records.get("durable") == 42
    handle = cluster.apps[1].lookup("all")
    cluster.run_for(40)
    assert handle.status == "complete"
    assert ("durable", 42) in handle.results


def test_lock_manager_survives_total_failure():
    cluster = Cluster(
        3,
        app_factory=lambda pid: MajorityLockManager(range(3)),
        config=ClusterConfig(seed=5),
    )
    assert cluster.settle(timeout=500)
    cluster.run_for(200)
    cluster.apps[1].acquire()
    cluster.run_for(30)
    for site in range(3):
        cluster.crash(site)
    cluster.run_for(60)
    for site in range(3):
        cluster.recover(site)
    assert cluster.settle(timeout=600)
    cluster.run_for(300)
    # The old holder's incarnation is gone; the lock must be free (the
    # holder was not in the new view) and grantable again.
    assert all(cluster.apps[s].holder is None for s in range(3))
    handle = cluster.apps[2].acquire()
    cluster.run_for(30)
    assert handle.status == "granted"


def test_run_until_predicate():
    cluster = Cluster(3, config=ClusterConfig(seed=0))
    ok = cluster.run_until(lambda c: c.is_settled(), timeout=400)
    assert ok
    assert cluster.is_settled()


def test_run_until_times_out_on_impossible_predicate():
    cluster = settled_cluster(2)
    assert not cluster.run_until(lambda c: False, timeout=30)
