"""Second property-based suite: projections, export codec, schedules,
topology algebra, classifier monotonicity."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.classify import classify_flat
from repro.evs.eview import EvDelta, EViewStructure
from repro.gms.membership import ViewAgreement
from repro.net.faults import Crash, FaultSchedule, Heal, Partition, Recover
from repro.net.topology import Topology
from repro.trace.events import DeliveryEvent, MulticastEvent, ViewInstallEvent
from repro.trace.export import event_from_json, event_to_json
from repro.types import MessageId, ProcessId, SubviewId, SvSetId, ViewId

sites = st.integers(min_value=0, max_value=9)
pids = st.builds(ProcessId, sites, st.integers(min_value=0, max_value=3))
view_ids = st.builds(ViewId, st.integers(min_value=1, max_value=50), pids)


# ---------------------------------------------------------------------------
# Structure projection (the coordinator's 6.3 mechanism)
# ---------------------------------------------------------------------------


@st.composite
def structure_and_survivors(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    members = frozenset(ProcessId(s) for s in range(n))
    structure = EViewStructure.singletons(1, members)
    # Random merges to make the structure interesting.
    seq = 0
    for _ in range(draw(st.integers(0, 4))):
        seq += 1
        ssids = [ss.ssid for ss in structure.svsets]
        i = draw(st.integers(0, len(ssids) - 1))
        j = draw(st.integers(0, len(ssids) - 1))
        structure = structure.apply(
            EvDelta(seq, "svset", frozenset({ssids[i], ssids[j]}),
                    new_svset=SvSetId(1, ProcessId(0), seq))
        )
        seq += 1
        sids = [sv.sid for sv in structure.subviews]
        i = draw(st.integers(0, len(sids) - 1))
        j = draw(st.integers(0, len(sids) - 1))
        structure = structure.apply(
            EvDelta(seq, "subview", frozenset({sids[i], sids[j]}),
                    new_subview=SubviewId(1, ProcessId(0), seq))
        )
    survivor_mask = draw(
        st.lists(st.booleans(), min_size=n, max_size=n)
    )
    survivors = frozenset(
        ProcessId(s) for s in range(n) if survivor_mask[s]
    )
    return structure, members, survivors


@given(structure_and_survivors())
@settings(max_examples=150, deadline=None)
def test_projection_yields_valid_partition_of_survivors(data):
    structure, members, survivors = data
    subviews: list = []
    svsets: list = []
    ViewAgreement._project_structure(structure, survivors, 9, subviews, svsets)
    projected = EViewStructure(tuple(subviews), tuple(svsets))
    projected.validate(survivors) if survivors else None
    # Mates stay mates.
    for pid in survivors:
        old_mates = structure.subview_of(pid).members & survivors
        new_mates = projected.subview_of(pid).members
        assert old_mates <= new_mates


@given(structure_and_survivors())
@settings(max_examples=150, deadline=None)
def test_projection_never_merges_strangers(data):
    structure, members, survivors = data
    subviews: list = []
    svsets: list = []
    ViewAgreement._project_structure(structure, survivors, 9, subviews, svsets)
    projected = EViewStructure(tuple(subviews), tuple(svsets))
    for pid in survivors:
        new_mates = projected.subview_of(pid).members
        old_mates = structure.subview_of(pid).members
        assert new_mates <= old_mates  # projection only removes


# ---------------------------------------------------------------------------
# Export codec totality
# ---------------------------------------------------------------------------


message_ids = st.builds(
    MessageId, pids, view_ids, st.integers(min_value=1, max_value=99)
)


@given(st.floats(min_value=0, max_value=1e6), pids, message_ids)
def test_multicast_event_round_trip(time, pid, msg_id):
    event = MulticastEvent(time=time, pid=pid, msg_id=msg_id)
    assert event_from_json(event_to_json(event)) == event


@given(st.floats(min_value=0, max_value=1e6), pids, message_ids, view_ids,
       st.integers(min_value=0, max_value=20))
def test_delivery_event_round_trip(time, pid, msg_id, vid, seq):
    event = DeliveryEvent(
        time=time, pid=pid, msg_id=msg_id, view_id=vid, sender_eview_seq=seq
    )
    assert event_from_json(event_to_json(event)) == event


@given(st.floats(min_value=0, max_value=1e6), pids, view_ids,
       st.frozensets(pids, min_size=1, max_size=6))
def test_install_event_round_trip(time, pid, vid, members):
    event = ViewInstallEvent(
        time=time, pid=pid, view_id=vid, members=members, prev_view_id=None
    )
    assert event_from_json(event_to_json(event)) == event


# ---------------------------------------------------------------------------
# Fault-schedule validity under arbitrary well-formed action sequences
# ---------------------------------------------------------------------------


@st.composite
def well_formed_actions(draw):
    n_sites = draw(st.integers(min_value=2, max_value=5))
    down: set[int] = set()
    actions = []
    time = 10.0
    for _ in range(draw(st.integers(0, 12))):
        time += draw(st.floats(min_value=1.0, max_value=50.0))
        choice = draw(st.integers(0, 3))
        if choice == 0 and len(down) < n_sites - 1:
            site = draw(st.sampled_from(sorted(set(range(n_sites)) - down)))
            down.add(site)
            actions.append(Crash(time, site))
        elif choice == 1 and down:
            site = draw(st.sampled_from(sorted(down)))
            down.discard(site)
            actions.append(Recover(time, site))
        elif choice == 2:
            actions.append(Partition(time, ((0,), tuple(range(1, n_sites)))))
        else:
            actions.append(Heal(time))
    return FaultSchedule(actions)


@given(well_formed_actions())
@settings(max_examples=100, deadline=None)
def test_well_formed_schedules_validate(schedule):
    schedule.validate()  # must not raise
    assert schedule.horizon >= 0


# ---------------------------------------------------------------------------
# Topology algebra
# ---------------------------------------------------------------------------


@st.composite
def random_partition_spec(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    assignment = draw(
        st.lists(st.integers(0, 2), min_size=n, max_size=n)
    )
    groups: dict[int, list[int]] = {}
    for site, group in enumerate(assignment):
        groups.setdefault(group, []).append(site)
    return n, tuple(tuple(g) for g in groups.values())


@given(random_partition_spec())
@settings(max_examples=150, deadline=None)
def test_components_form_a_partition(spec):
    n, groups = spec
    topo = Topology(range(n))
    topo.partition(groups)
    components = topo.components()
    union = set().union(*components)
    assert union == set(range(n))
    assert sum(len(c) for c in components) == n
    # connected() is the equivalence relation induced by components.
    for component in components:
        for a in component:
            for b in component:
                assert topo.connected(a, b)


@given(random_partition_spec())
@settings(max_examples=100, deadline=None)
def test_heal_is_idempotent_top(spec):
    n, groups = spec
    topo = Topology(range(n))
    topo.partition(groups)
    topo.heal()
    topo.heal()
    assert topo.components() == [frozenset(range(n))]


# ---------------------------------------------------------------------------
# Flat classifier monotonicity
# ---------------------------------------------------------------------------


@given(st.sampled_from(["N", "R", "S"]), st.integers(1, 8), st.booleans())
def test_flat_candidates_grow_with_view_size(mode, n, exclusive):
    smaller = classify_flat(mode, n, exclusive_full=exclusive)
    larger = classify_flat(mode, n + 1, exclusive_full=exclusive)
    assert smaller <= larger  # more members, more possible worlds


@given(st.sampled_from(["N", "R", "S"]), st.integers(1, 8))
def test_exclusive_full_only_removes_candidates(mode, n):
    restricted = classify_flat(mode, n, exclusive_full=True)
    free = classify_flat(mode, n, exclusive_full=False)
    assert restricted <= free
