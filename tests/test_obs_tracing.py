"""Causal tracing end to end on the simulator.

Units for the tracer (deterministic, salted span ids) plus the
acceptance scenarios: a traced sim cluster reconstructs complete causal
trees for (a) one client put and (b) one partition/heal view install,
with the documented span taxonomy; a disk dump replays into the same
trees; eviction of open metric spans is itself metered.
"""

from __future__ import annotations

import pytest

from repro.obs.trace_analysis import (
    breakdown,
    build_trees,
    critical_path,
    perfetto_events,
    render_tree,
    render_trees,
    write_perfetto,
)
from repro.obs.tracing import FlightRecorder, TraceCtx, Tracer, load_dump
from repro.ports import make_cluster

#: The documented span vocabulary (docs/observability.md).
TAXONOMY = {
    "view.change", "view.flush", "view.agree", "view.install",
    "settle.round", "settle.offer", "settle.adopt", "transfer.stream",
    "mcast.send", "mcast.deliver",
    "client.put", "client.get", "client.history",
    "put.route", "put.quorum",
}


# -- tracer units -----------------------------------------------------------


def test_mint_roots_and_children():
    tracer = Tracer(FlightRecorder(), lambda: 1.0, salt=3)
    root = tracer.mint()
    assert root.trace_id == root.span_id and root.parent == 0
    assert root.span_id & 0xFFF == 3  # salted
    child = tracer.mint(root)
    assert child.trace_id == root.trace_id
    assert child.parent == root.span_id
    assert child.span_id != root.span_id


def test_mint_is_deterministic_and_salt_disjoint():
    ids_a = [Tracer(FlightRecorder(), lambda: 0.0, salt=1).mint().span_id
             for _ in range(3)]
    assert len(set(ids_a)) == 1  # same counter start, same ids
    tracer1 = Tracer(FlightRecorder(), lambda: 0.0, salt=1)
    tracer2 = Tracer(FlightRecorder(), lambda: 0.0, salt=2)
    minted1 = {tracer1.mint().span_id for _ in range(100)}
    minted2 = {tracer2.mint().span_id for _ in range(100)}
    assert not minted1 & minted2  # different sites never collide


def test_span_records_event_with_explicit_or_minted_ctx():
    recorder = FlightRecorder()
    tracer = Tracer(recorder, lambda: 2.0)
    ctx = TraceCtx(trace_id=0x9000, span_id=0xA000, parent=0x9000)
    returned = tracer.span("view.agree", "p0.0", 0, 1.0, 2.0, ctx=ctx)
    assert returned is ctx
    fresh = tracer.span("view.flush", "p1.0", 1, 1.5, parent=ctx)
    assert fresh.parent == ctx.span_id and fresh.trace_id == ctx.trace_id
    events = recorder.dump().events
    assert [e.name for e in events] == ["view.agree", "view.flush"]
    assert events[1].t0 == events[1].t1 == 1.5  # instant form


def test_uncaused_roots_are_sampled_caused_spans_always_traced():
    """Workload multicasts hit the 1-in-N gate; parented spans don't."""
    from repro.obs.instrument import ClusterObs
    from repro.obs.registry import MetricsRegistry

    recorder = FlightRecorder()
    tracer = Tracer(recorder, lambda: 0.0, root_sample=4)
    obs = ClusterObs(MetricsRegistry(clock=lambda: 0.0, runtime="sim"), tracer)
    ctxs = [obs.multicast_sent("p0.0", ("m", i), 0.0) for i in range(8)]
    assert [c is not None for c in ctxs] == [True, False, False, False] * 2
    parent = tracer.mint()
    caused = [
        obs.multicast_sent("p0.0", ("c", i), 0.0, parent=parent)
        for i in range(8)
    ]
    assert all(c is not None for c in caused)
    with pytest.raises(ValueError):
        Tracer(recorder, lambda: 0.0, root_sample=0)
    always = Tracer(recorder, lambda: 0.0, root_sample=1)
    assert all(always.sample_root() for _ in range(5))


# -- acceptance: sim causal trees ------------------------------------------


@pytest.fixture(scope="module")
def traced_run():
    """One traced sim run: settle, client put, partition/heal."""
    from repro.apps.versioned_store import VersionedStore
    from repro.client.sim import SimStoreClient

    cluster = make_cluster(
        "sim", 3, app_factory=lambda pid: VersionedStore(),
        seed=7, tracing=True,
    )
    try:
        assert cluster.settle()
        client = SimStoreClient(cluster)
        op = client.put("k", "v")
        assert op.ok, op.reply
        cluster.partition([[0, 1], [2]])
        assert cluster.settle()
        cluster.heal()
        assert cluster.settle()
        dumps = [rec.dump() for rec in cluster.flight_recorders()]
    finally:
        cluster.close()
    return build_trees(dumps)


def _trees_of_kind(trees, kind):
    return [t for t in trees if t.kind == kind]


def test_every_span_uses_the_documented_taxonomy(traced_run):
    names = {span.name for tree in traced_run for span in tree.spans()}
    assert names <= TAXONOMY, names - TAXONOMY


def test_client_put_tree_is_complete(traced_run):
    puts = _trees_of_kind(traced_run, "client.put")
    assert len(puts) == 1
    tree = puts[0]
    root = tree.root
    assert root.attrs["status"] == "ok"
    assert not root.orphan and len(tree.roots) == 1
    child_names = {c.name for c in root.children}
    assert child_names == {"put.route", "put.quorum", "mcast.send"}
    sends = [c for c in root.children if c.name == "mcast.send"]
    deliveries = [g for g in sends[0].children if g.name == "mcast.deliver"]
    assert len(deliveries) == 3  # one per member of the 3-view
    assert {d.event.site for d in deliveries} == {0, 1, 2}
    quorum = next(c for c in root.children if c.name == "put.quorum")
    assert quorum.attrs["status"] == "committed"
    path = [span.name for span in critical_path(tree)]
    assert path[0] == "client.put"
    assert set(path[1:]) <= {"put.quorum", "mcast.send", "mcast.deliver"}


def test_view_install_tree_is_complete(traced_run):
    """The heal's merge view: detect -> agree -> install -> settlement."""
    full = [
        tree for tree in _trees_of_kind(traced_run, "view.change")
        if {"view.agree", "view.install", "settle.round"}
        <= {span.name for span in tree.spans()}
    ]
    assert full, "no complete view-change tree reconstructed"
    tree = full[-1]  # the heal (last merge) is the richest
    root = tree.root
    agree = next(c for c in root.children if c.name == "view.agree")
    installs = [c for c in agree.children if c.name == "view.install"]
    assert len(installs) == 3  # every member installed under the agree
    assert len({i.event.pid for i in installs}) == 3
    settles = [
        span for i in installs for span in i.children
        if span.name == "settle.round"
    ]
    assert settles, "no settlement chained to the install"
    settle_children = {c.name for s in settles for c in s.children}
    assert {"settle.offer", "settle.adopt"} <= settle_children
    path = [span.name for span in critical_path(tree)]
    assert path[:3] == ["view.change", "view.agree", "view.install"]


def test_breakdown_and_renderers_cover_the_trees(traced_run):
    tree = _trees_of_kind(traced_run, "client.put")[0]
    rows = breakdown(tree)
    assert {name for name, _c, _t in rows} == {
        span.name for span in tree.spans()
    }
    assert all(count >= 1 for _n, count, _t in rows)
    text = render_tree(tree)
    assert "client.put" in text and "status=ok" in text
    listing = render_trees(traced_run, limit=2)
    assert "critical path:" in listing
    assert "more trees" in listing


def test_disk_dump_replays_into_the_same_trees(tmp_path, traced_run):
    """Acceptance: a violation dump reconstructs the same causal trees
    as the live rings it snapshotted."""
    from repro.apps.versioned_store import VersionedStore
    from repro.client.sim import SimStoreClient

    cluster = make_cluster(
        "sim", 3, app_factory=lambda pid: VersionedStore(),
        seed=7, tracing=True,
    )
    try:
        assert cluster.settle()
        assert SimStoreClient(cluster).put("k", "v").ok
        live = build_trees([rec.dump() for rec in cluster.flight_recorders()])
        path = cluster.flight.violation_dump("planted: lost write", str(tmp_path))
    finally:
        cluster.close()
    assert path is not None
    replayed = build_trees([load_dump(path)])
    assert [t.trace_id for t in replayed] == [t.trace_id for t in live]
    live_put = _trees_of_kind(live, "client.put")[0]
    replay_put = _trees_of_kind(replayed, "client.put")[0]
    assert [s.event for s in replay_put.spans()] == [
        s.event for s in live_put.spans()
    ]


def test_perfetto_export_is_valid_trace_event_json(tmp_path, traced_run):
    from tests.perfetto_check import validate_perfetto_file

    path = str(tmp_path / "trace.json")
    write_perfetto(path, traced_run)
    stats = validate_perfetto_file(path)
    assert stats["complete"] > 0 and stats["instant"] > 0
    assert stats["names"] <= TAXONOMY
    events = perfetto_events(traced_run)
    span_events = [e for e in events if e["ph"] in ("X", "i")]
    assert all(e["ts"] >= 0 for e in span_events)
    assert all(e["dur"] >= 0 for e in events if e["ph"] == "X")


# -- orphans and merge edge cases ------------------------------------------


def test_orphan_spans_root_their_own_subtree():
    recorder = FlightRecorder()
    tracer = Tracer(recorder, lambda: 0.0)
    root = tracer.mint()
    lost_child = tracer.mint(root)  # parent event never recorded
    tracer.span("mcast.deliver", "p1.0", 1, 1.0, 2.0, ctx=lost_child)
    trees = build_trees([recorder.dump()])
    assert len(trees) == 1
    assert trees[0].roots[0].orphan
    assert trees[0].roots[0].name == "mcast.deliver"


def test_duplicate_span_ids_across_dumps_collapse():
    recorder = FlightRecorder("shared", "realnet")
    tracer = Tracer(recorder, lambda: 0.0)
    tracer.span("view.change", "p0.0", 0, 1.0)
    dump = recorder.dump()
    trees = build_trees([dump, dump])  # same ring pulled twice
    assert len(trees) == 1
    assert len(trees[0].spans()) == 1


def test_epoch_shifts_merge_onto_one_time_base():
    rec_a = FlightRecorder("a", "realnet", epoch=100.0)
    rec_b = FlightRecorder("b", "realnet", epoch=90.0)
    ctx = Tracer(rec_a, lambda: 0.0, salt=1).span("mcast.send", "p0.0", 0, 5.0)
    Tracer(rec_b, lambda: 0.0, salt=2).span(
        "mcast.deliver", "p1.0", 1, 16.0, 17.0, parent=ctx
    )
    (tree,) = build_trees([rec_a.dump(), rec_b.dump()])
    send = tree.root
    (deliver,) = send.children
    assert send.t0 == 105.0  # 100 + 5
    assert deliver.t0 == 106.0  # 90 + 16: later than the send on the
    assert deliver.t0 > send.t0  # shared base despite the bigger local t


# -- SpanMap eviction metering (satellite) ---------------------------------


def test_open_span_evictions_are_metered():
    from repro.obs.instrument import ClusterObs
    from repro.obs.registry import MetricsRegistry

    registry = MetricsRegistry(clock=lambda: 0.0, runtime="sim")
    obs = ClusterObs(registry)
    for i in range(5000):  # SpanMap cap is 4096: the first 904 evict
        obs.multicast_sent(f"p0.0", ("m", i), float(i))
    snap = registry.snapshot("test")
    evicted = [
        s for s in snap.samples
        if s.name == "spans_evicted_total" and ("map", "mcast") in s.labels
    ]
    assert evicted and evicted[0].value == 5000 - 4096
    # Transfer-map evictions land in their own label.
    for i in range(600):
        obs.transfer_started("p0.0", f"peer{i}", float(i))
    snap = registry.snapshot("test")
    transfer = [
        s for s in snap.samples
        if s.name == "spans_evicted_total" and ("map", "transfer") in s.labels
    ]
    assert transfer and transfer[0].value == 600 - 512
