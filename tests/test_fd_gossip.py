"""Tests for the gossip failure-detection plane and the flush
aggregation tree — the scale profile's two dissemination structures
(see docs/scaling.md).

The headline property is the degenerate-regime equivalence: at fanout
>= universe-1 the gossip detector is, by construction, the all-to-all
heartbeat plane (same targets, same schedule, direct evidence only), so
a seeded run must produce *identical* installed-view sequences under
either plane.  CI runs that comparison at n=16 over a partition/heal
cycle.
"""

from __future__ import annotations

from repro.fd.gossip import GossipDetector, GossipDigest, GossipEntry
from repro.gms.membership import MembershipConfig
from repro.runtime.cluster import Cluster, ClusterConfig
from repro.vsync.stack import StackConfig

from tests.conftest import assert_all_properties


def _partition_heal_run(n: int, seed: int = 7, **knobs) -> Cluster:
    """Settle, cut the cluster in half, heal, settle again."""
    cluster = Cluster(n, config=ClusterConfig(seed=seed, **knobs))
    assert cluster.settle(timeout=500.0), cluster.views()
    half = n // 2
    cluster.partition([list(range(half)), list(range(half, n))])
    assert cluster.settle(timeout=500.0), cluster.views()
    cluster.heal()
    assert cluster.settle(timeout=500.0), cluster.views()
    return cluster


def _install_sequences(cluster: Cluster) -> dict:
    """Per-process ordered list of (view id, membership) installs."""
    seqs: dict = {}
    for event in cluster.gather_trace().view_installs():
        seqs.setdefault(event.pid, []).append((event.view_id, event.members))
    return seqs


def test_gossip_full_fanout_matches_heartbeat_install_sequences():
    """Satellite determinism gate: at fanout >= n-1 the gossip plane
    must be indistinguishable from all-to-all heartbeats — identical
    installed-view sequences at every process on a seeded run."""
    for n in (8, 16):
        heartbeat = _partition_heal_run(n, fd_mode="heartbeat")
        gossip = _partition_heal_run(n, fd_mode="gossip", gossip_fanout=n - 1)
        assert _install_sequences(heartbeat) == _install_sequences(gossip)


def test_gossip_sparse_fanout_settles_and_preserves_properties():
    """Fanout 4 at n=32 (a real epidemic regime: each interval reaches
    ~1/8 of the universe directly) still drives the full membership
    life cycle.  fd_timeout must cover an epidemic round trip —
    T*(log n / log(k+1)+2) ~ 21 at n=32, k=4, T=5 — so the scale
    profile's 45 has a 2x margin."""
    cluster = _partition_heal_run(
        32,
        fd_mode="gossip",
        gossip_fanout=4,
        stack=StackConfig(fd_timeout=45.0),
        trace_level="membership",
    )
    members = {p.site for p in cluster.stack_at(0).view.members}
    assert members == set(range(32))


def test_gossip_sparse_fanout_detects_crash_indirectly():
    """A crash must be detected even by sites the victim never gossiped
    to directly: suspicion spreads through the entries of third-party
    digests (the indirect-evidence path)."""
    cluster = Cluster(
        16,
        config=ClusterConfig(
            seed=3,
            fd_mode="gossip",
            gossip_fanout=3,
            stack=StackConfig(fd_timeout=45.0),
        ),
    )
    assert cluster.settle(timeout=500.0), cluster.views()
    victim = cluster.stack_at(5).pid
    cluster.crash(5)
    cluster.run_for(200.0)
    for stack in cluster.live_stacks():
        assert victim not in stack.fd.reachable()
        assert victim not in stack.view.members


def test_gossip_refutation_bumps_counter_once_per_interval():
    """SWIM refutation: seeing ourselves suspected under our live
    incarnation pushes a fresh counter immediately — but at most once
    per interval, so a storm of stale suspicions cannot amplify."""
    cluster = Cluster(
        8, config=ClusterConfig(seed=3, fd_mode="gossip", gossip_fanout=2)
    )
    assert cluster.settle(timeout=500.0)
    stack = cluster.stack_at(0)
    detector = stack.fd
    assert isinstance(detector, GossipDetector)
    src = cluster.stack_at(1).pid
    slander = GossipDigest(
        src,
        None,
        entries=(GossipEntry(0, stack.pid.incarnation, 1, suspect=True),),
    )
    before, sent_before = detector._counter, detector.digests_sent
    detector.on_digest(src, slander)
    assert detector._counter == before + 1
    assert detector.digests_sent > sent_before
    sent_after = detector.digests_sent
    detector.on_digest(src, slander)  # within the same interval: ignored
    assert detector._counter == before + 1
    assert detector.digests_sent == sent_after


def test_gossip_refutation_suppressed_at_full_fanout():
    """At fanout >= n-1 every peer hears us directly each interval, so
    refutation is suppressed (it would also break the bit-for-bit
    heartbeat equivalence the determinism test relies on)."""
    cluster = Cluster(
        4, config=ClusterConfig(seed=3, fd_mode="gossip", gossip_fanout=3)
    )
    assert cluster.settle(timeout=500.0)
    stack = cluster.stack_at(0)
    detector = stack.fd
    src = cluster.stack_at(1).pid
    slander = GossipDigest(
        src,
        None,
        entries=(GossipEntry(0, stack.pid.incarnation, 1, suspect=True),),
    )
    before = detector._counter
    detector.on_digest(src, slander)
    assert detector._counter == before


def test_scale_profile_partition_heal_preserves_properties():
    """The whole scale profile at once — gossip fanout 4 plus the
    fanout-8 flush aggregation tree — through a partition/heal cycle,
    with the Section 2 and Section 6 checkers on the full trace."""
    cluster = _partition_heal_run(
        24,
        fd_mode="gossip",
        gossip_fanout=4,
        tree_fanout=8,
        stack=StackConfig(
            fd_timeout=45.0,
            membership=MembershipConfig(flush_stall_timeout=90.0),
        ),
    )
    assert_all_properties(cluster.gather_trace())
    members = {p.site for p in cluster.stack_at(0).view.members}
    assert members == set(range(24))


def test_figure2_checked_workload_with_gossip():
    """The figure-2 schedule plus a multicast client under the gossip
    plane: every view-synchrony and enriched-view check must pass with
    zero violations, exactly as under heartbeats."""
    from repro.ports import make_cluster
    from repro.workload.clients import MulticastClient
    from repro.workload.runner import run_checked_workload
    from repro.workload.scenarios import figure2_scenario

    cluster = make_cluster(
        "sim", 6, seed=10, fd_mode="gossip", gossip_fanout=5
    )
    report = run_checked_workload(
        cluster,
        figure2_scenario(),
        client_factories=[lambda c: MulticastClient(c, interval=20.0)],
    )
    assert report.settled, cluster.views()
    assert report.violations == [], report.violations[:5]
    assert report.events_checked > 0
