"""Tests for trace statistics and history-form mode functions."""

from __future__ import annotations

from repro.apps.replicated_file import ReplicatedFile
from repro.core.history import History, HistoryModeFunction, history_of
from repro.runtime.cluster import Cluster, ClusterConfig
from repro.trace.events import DeliveryEvent, ViewInstallEvent
from repro.trace.stats import concurrent_view_peak, mode_residency, summarize

from tests.conftest import settled_cluster


def file_cluster() -> Cluster:
    votes = {s: 1 for s in range(5)}
    cluster = Cluster(
        5, app_factory=lambda pid: ReplicatedFile(votes), config=ClusterConfig(seed=0)
    )
    assert cluster.settle(timeout=500)
    cluster.run_for(200)
    return cluster


def test_summary_counts_match_recorder():
    cluster = file_cluster()
    cluster.apps[0].write("f", 1)
    cluster.run_for(30)
    stats = summarize(cluster.recorder)
    assert stats.view_installs == len(cluster.recorder.view_installs())
    assert stats.deliveries == len(cluster.recorder.deliveries())
    assert stats.multicasts == len(cluster.recorder.multicasts())
    assert stats.duration > 0
    assert stats.settlement_sessions >= 1
    assert "Reconcile" in stats.mode_transitions


def test_mode_residency_integrates_to_process_time():
    cluster = file_cluster()
    horizon = cluster.now
    residency = mode_residency(cluster.recorder, until=horizon)
    # Five processes alive the whole run: total residency close to 5x
    # the horizon (minus the pre-first-mode instants, which are 0-width
    # here because modes are set at bootstrap time 0).
    assert residency.total <= 5 * horizon + 1e-6
    assert residency.total >= 4.5 * horizon
    assert residency.fraction("N") > 0.8  # mostly serving


def test_mode_residency_counts_reduced_during_partition():
    cluster = file_cluster()
    cluster.partition([[0, 1, 2], [3, 4]])
    cluster.settle(timeout=500)
    cluster.run_for(300)
    residency = mode_residency(cluster.recorder, until=cluster.now)
    assert residency.reduced > 200  # two processes stuck in R


def test_residency_stops_at_crash():
    cluster = settled_cluster(3)
    cluster.crash(2)
    cluster.run_for(300)
    residency = mode_residency(cluster.recorder)
    # No mode events for plain GroupApplication, so residency is zero —
    # but the call must handle crashes without error.
    assert residency.total == 0.0


def test_concurrent_view_peak_sees_partition():
    cluster = file_cluster()
    assert concurrent_view_peak(cluster.recorder) >= 1
    cluster.partition([[0, 1, 2], [3, 4]])
    cluster.settle(timeout=500)
    assert concurrent_view_peak(cluster.recorder) >= 2


def test_history_mode_function_induces_figure1_modes():
    cluster = file_cluster()
    cluster.partition([[0, 1, 2], [3, 4]])
    cluster.settle(timeout=500)
    cluster.run_for(100)
    history = history_of(cluster.recorder, cluster.stack_at(3).pid)

    def classify(prefix: History) -> str:
        """A quorum-style history predicate: N iff the latest view in
        the prefix holds a majority of five."""
        view_events = [
            e for e in prefix.events if isinstance(e, ViewInstallEvent)
        ]
        if not view_events:
            return "S"
        return "N" if 2 * len(view_events[-1].members) > 5 else "R"

    fn = HistoryModeFunction(classify)
    sequence = fn.mode_sequence(history)
    assert sequence[-1] == "R"  # the minority member ends reduced
    assert "N" in sequence  # it was in the full view before
    transitions = fn.transitions(history)
    assert ("N", "R") in transitions


def test_history_mode_function_prefix_evaluation():
    cluster = settled_cluster(2)
    cluster.stack_at(0).multicast("x")
    cluster.run_for(20)
    history = history_of(cluster.recorder, cluster.stack_at(0).pid)
    deliveries = HistoryModeFunction(
        lambda prefix: "N" if any(
            isinstance(e, DeliveryEvent) for e in prefix.events
        ) else "S"
    )
    sequence = deliveries.mode_sequence(history)
    assert sequence[0] == "S"  # before any delivery
    assert sequence[-1] == "N"


# ---------------------------------------------------------------------------
# Timeline rendering
# ---------------------------------------------------------------------------


def test_timeline_renders_lanes_and_events():
    from repro.trace.timeline import render_timeline

    cluster = file_cluster()
    cluster.crash(2)
    cluster.settle(timeout=400)
    cluster.recover(2)
    cluster.settle(timeout=400)
    text = render_timeline(cluster.recorder)
    assert "p0.0" in text and "p2.0" in text and "p2.1" in text
    assert "CRASH" in text
    assert "UP" in text
    assert "[R:N]" in text  # some Reconcile happened


def test_timeline_empty_trace():
    from repro.trace.recorder import TraceRecorder
    from repro.trace.timeline import render_timeline

    assert render_timeline(TraceRecorder()) == "(empty trace)"


def test_timeline_row_cap():
    from repro.trace.timeline import render_timeline

    cluster = file_cluster()
    cluster.partition([[0, 1, 2], [3, 4]])
    cluster.settle(timeout=400)
    cluster.heal()
    cluster.settle(timeout=400)
    text = render_timeline(cluster.recorder, max_rows=2)
    assert "more rows" in text


def test_timeline_includes_eviews_on_request():
    from repro.trace.timeline import render_timeline

    cluster = file_cluster()
    lead = cluster.stack_at(0)
    lead.sv_set_merge([ss.ssid for ss in lead.eview.structure.svsets])
    cluster.run_for(20)
    text = render_timeline(cluster.recorder, include_eviews=True)
    assert "ev#1" in text
