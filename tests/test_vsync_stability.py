"""Tests for message stability tracking and garbage collection."""

from __future__ import annotations

from repro.runtime.cluster import Cluster, ClusterConfig
from repro.vsync.stack import StackConfig

from tests.conftest import assert_all_properties


def chatty_cluster(n: int = 4, interval: float = 20.0, seed: int = 0) -> Cluster:
    config = ClusterConfig(
        seed=seed, stack=StackConfig(stability_interval=interval)
    )
    cluster = Cluster(n, config=config)
    assert cluster.settle(timeout=500)
    return cluster


def test_stable_messages_are_pruned():
    cluster = chatty_cluster()
    for i in range(40):
        cluster.stack_at(i % 4).multicast(("m", i))
        cluster.run_for(3)
    cluster.run_for(120)  # several stability rounds
    for stack in cluster.live_stacks():
        assert stack.stability.messages_pruned > 0
        # The buffer holds far fewer messages than were sent.
        assert len(stack.channels.received) < 20


def test_buffer_unbounded_without_stability():
    cluster = chatty_cluster(interval=0.0)
    for i in range(40):
        cluster.stack_at(i % 4).multicast(("m", i))
        cluster.run_for(3)
    cluster.run_for(120)
    stack = cluster.stack_at(0)
    assert stack.stability.messages_pruned == 0
    assert len(stack.channels.received) >= 40


def test_pruning_preserves_all_properties():
    cluster = chatty_cluster(interval=15.0, seed=3)
    for i in range(30):
        cluster.stack_at(i % 4).multicast(("m", i))
        cluster.run_for(4)
    cluster.partition([[0, 1], [2, 3]])
    assert cluster.settle(timeout=500)
    for i in range(10):
        cluster.stack_at(0).multicast(("p", i))
        cluster.stack_at(2).multicast(("q", i))
        cluster.run_for(4)
    cluster.heal()
    assert cluster.settle(timeout=500)
    cluster.run_for(100)
    assert_all_properties(cluster.recorder)


def test_no_duplicate_delivery_after_prune():
    """A retransmitted or plan-carried copy of a pruned message must not
    reach the application a second time (Integrity, 2.3)."""
    cluster = chatty_cluster(interval=10.0, seed=1)
    delivered: list = []
    for site in range(4):
        app = cluster.apps[site]
        app.on_message = (
            lambda sender, payload, msg_id, _site=site: delivered.append(
                (_site, msg_id)
            )
        )
    msg_id = cluster.stack_at(0).multicast("once-only")
    cluster.run_for(80)  # deliver + stabilise + prune
    stack = cluster.stack_at(1)
    assert msg_id not in stack.channels.received  # pruned
    # Simulate a duplicate arriving late (e.g. a retransmission).
    from repro.types import Message

    stack.channels.on_app_message(Message(msg_id, "once-only", 0))
    cluster.run_for(10)
    per_site = [m for s, m in delivered if m == msg_id]
    assert len(per_site) == 4  # exactly one delivery per member


def test_stability_vector_tracks_contiguous_prefix():
    cluster = chatty_cluster(interval=0.0)
    stack = cluster.stack_at(0)
    sender = cluster.stack_at(1)
    sender.multicast("a")
    sender.multicast("b")
    cluster.run_for(10)
    prefix = stack.channels.delivered_prefix()
    assert prefix[sender.pid] == 2


def test_stability_resets_across_views():
    cluster = chatty_cluster(interval=12.0, seed=2)
    for i in range(10):
        cluster.stack_at(0).multicast(("x", i))
    cluster.run_for(80)
    cluster.crash(3)
    assert cluster.settle(timeout=500)
    stack = cluster.stack_at(0)
    # New view: fresh stability state, no stale prefixes.
    assert stack.channels.delivered_prefix() == {} or all(
        pid in stack.view.members
        for pid in stack.channels.delivered_prefix()
    )
    cluster.stack_at(1).multicast("post-change")
    cluster.run_for(60)
    assert_all_properties(cluster.recorder)


def test_stability_continues_under_new_coordinator():
    """Crash the view coordinator; the next view's coordinator must keep
    the garbage collection going."""
    cluster = chatty_cluster(n=4, interval=15.0, seed=5)
    for i in range(20):
        cluster.stack_at(1 + i % 3).multicast(("pre", i))
        cluster.run_for(3)
    cluster.run_for(60)
    pruned_before = cluster.stack_at(1).stability.messages_pruned
    assert pruned_before > 0
    cluster.crash(0)  # the coordinator dies
    assert cluster.settle(timeout=500)
    for i in range(20):
        cluster.stack_at(1 + i % 3).multicast(("post", i))
        cluster.run_for(3)
    cluster.run_for(100)
    assert cluster.stack_at(1).stability.messages_pruned > pruned_before
