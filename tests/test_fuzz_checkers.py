"""The fuzzer's pluggable detectors must detect, not just pass.

Mirrors ``test_trace_checks.py``: each test fabricates a synthetic
trace seeded with exactly one bug pattern and asserts the checker flags
it — plus the clean variant that must stay silent.
"""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.fuzz.checkers import (
    CheckContext,
    LostSettlementChecker,
    StaleStateTransferChecker,
    SubviewMergeAtomicityChecker,
    TraceChecker,
    ZombieIncarnationChecker,
    load_checker,
    make_checkers,
    register_checker,
    registered_checkers,
    run_checkers,
)
from repro.trace.events import (
    AppEvent,
    CrashEvent,
    DeliveryEvent,
    EViewChangeEvent,
    ModeChangeEvent,
    RecoverEvent,
    ViewInstallEvent,
)
from repro.trace.recorder import TraceRecorder
from repro.types import MessageId, ProcessId, SubviewId, SvSetId, ViewId

P0, P1, P2 = ProcessId(0), ProcessId(1), ProcessId(2)
V1 = ViewId(1, P0)
V2 = ViewId(2, P0)
CTX = CheckContext(time_scale=1.0, n_sites=3)


def _install(rec, t, pid, vid, members, prev):
    rec.record(
        ViewInstallEvent(
            time=t, pid=pid, view_id=vid,
            members=frozenset(members), prev_view_id=prev,
        )
    )


def _structure(rec, t, pid, vid, seq, groups):
    subviews = tuple(
        (SubviewId(vid.epoch, min(g), i), frozenset(g))
        for i, g in enumerate(groups)
    )
    svsets = tuple(
        (SvSetId(vid.epoch, min(g), i), frozenset({subviews[i][0]}))
        for i, g in enumerate(groups)
    )
    rec.record(
        EViewChangeEvent(
            time=t, pid=pid, view_id=vid, eview_seq=seq,
            subviews=subviews, svsets=svsets,
        )
    )


def _mode(rec, t, pid, old, new, transition):
    rec.record(
        ModeChangeEvent(
            time=t, pid=pid, old_mode=old, new_mode=new,
            transition=transition, view_id=V1,
        )
    )


def _decide(rec, t, pid, kind, versions, chosen):
    rec.record(
        AppEvent(
            time=t, pid=pid, tag="settle_decide",
            data={
                "kind": kind, "offers": len(versions),
                "versions": tuple(versions), "chosen_version": chosen,
            },
        )
    )


# -- StaleStateTransfer -----------------------------------------------------


def test_stale_transfer_flags_adopting_below_best_offer():
    rec = TraceRecorder()
    _decide(rec, 10, P0, "transfer", (3, 7), 3)
    report = StaleStateTransferChecker().run(rec, CTX)
    assert not report.ok
    assert "adopted version 3" in report.violations[0]


def test_stale_transfer_passes_when_best_offer_adopted():
    rec = TraceRecorder()
    _decide(rec, 10, P0, "transfer", (3, 7), 7)
    _decide(rec, 20, P0, "merge", (5, 5), 5)
    report = StaleStateTransferChecker().run(rec, CTX)
    assert report.ok and report.checked == 2


def test_stale_transfer_ignores_creation_and_untagged_decides():
    rec = TraceRecorder()
    # Creation may legitimately prefer an older-versioned snapshot.
    _decide(rec, 10, P0, "creation", (3, 7), 3)
    # A trace from before version accounting carries no chosen_version.
    _decide(rec, 20, P0, "transfer", (3, 7), None)
    report = StaleStateTransferChecker().run(rec, CTX)
    assert report.ok


# -- LostSettlement ---------------------------------------------------------


def _stuck_in_s(rec, *, end=500.0):
    """P0 enters S at t=10, view stable, nothing else happens."""
    _install(rec, 10, P0, V1, {P0, P1}, None)
    _mode(rec, 10, P0, "N", "S", "Failure")
    _mode(rec, 10, P1, "N", "N", "Reconcile")
    rec.record(AppEvent(time=end, pid=P1, tag="tick", data=None))


def test_lost_settlement_flags_stuck_s_mode():
    rec = TraceRecorder()
    _stuck_in_s(rec)
    report = LostSettlementChecker().run(rec, CTX)
    assert not report.ok
    assert "stuck in S-mode" in report.violations[0]


def test_lost_settlement_passes_with_recent_settle_activity():
    rec = TraceRecorder()
    _stuck_in_s(rec)
    rec.record(
        AppEvent(time=450, pid=P1, tag="settle_start", data={"kind": "transfer"})
    )
    assert LostSettlementChecker().run(rec, CTX).ok


def test_lost_settlement_passes_when_parked_on_creation_barrier():
    rec = TraceRecorder()
    _stuck_in_s(rec)
    rec.record(
        AppEvent(
            time=450, pid=P0, tag="settle_wait_all_sites",
            data={"present": 2, "expected": 3},
        )
    )
    assert LostSettlementChecker().run(rec, CTX).ok


def test_lost_settlement_ignores_crashed_and_recent_processes():
    rec = TraceRecorder()
    _stuck_in_s(rec)
    # P2 also hits S but crashes: dead processes settle nothing.
    _mode(rec, 12, P2, "N", "S", "Failure")
    rec.record(CrashEvent(time=20, pid=P2))
    report = LostSettlementChecker().run(rec, CTX)
    assert [v for v in report.violations if "p2" in v] == []
    # A view installed moments ago resets the grace window.
    rec2 = TraceRecorder()
    _install(rec2, 490, P0, V1, {P0, P1}, None)
    _mode(rec2, 490, P0, "N", "S", "Failure")
    rec2.record(AppEvent(time=500, pid=P1, tag="tick", data=None))
    assert LostSettlementChecker().run(rec2, CTX).ok


def test_lost_settlement_grace_scales_with_time_scale():
    # On a wall-clock runtime 500 "units" of quiet is 5 seconds at
    # scale 0.01 — far beyond the scaled grace, still a violation.
    rec = TraceRecorder()
    _install(rec, 0.1, P0, V1, {P0, P1}, None)
    _mode(rec, 0.1, P0, "N", "S", "Failure")
    rec.record(AppEvent(time=5.0, pid=P1, tag="tick", data=None))
    ctx = CheckContext(time_scale=0.01, n_sites=3)
    assert not LostSettlementChecker().run(rec, ctx).ok
    # At sim scale the same numbers are within grace: silent.
    assert LostSettlementChecker().run(rec, CTX).ok


# -- SubviewMergeAtomicity --------------------------------------------------


def test_merge_atomicity_flags_partial_merge():
    rec = TraceRecorder()
    _structure(rec, 0, P0, V1, 0, [[P0], [P1, P2]])
    # {P1,P2} was torn apart: P1 merged into P0's subview, P2 left out.
    _structure(rec, 1, P0, V1, 1, [[P0, P1], [P2]])
    report = SubviewMergeAtomicityChecker().run(rec, CTX)
    assert any("partial subview merge" in v for v in report.violations)


def test_merge_atomicity_passes_whole_merges():
    rec = TraceRecorder()
    _structure(rec, 0, P0, V1, 0, [[P0], [P1, P2]])
    _structure(rec, 1, P0, V1, 1, [[P0, P1, P2]])
    assert SubviewMergeAtomicityChecker().run(rec, CTX).ok


def test_merge_atomicity_flags_survivor_count_disagreement():
    rec = TraceRecorder()
    for pid in (P0, P1):
        _install(rec, 0, pid, V1, {P0, P1}, None)
        _structure(rec, 0, pid, V1, 0, [[P0], [P1]])
    # Only P0 applies the merge, yet both survive into the same view.
    _structure(rec, 1, P0, V1, 1, [[P0, P1]])
    for pid in (P0, P1):
        _install(rec, 2, pid, V2, {P0, P1}, V1)
    report = SubviewMergeAtomicityChecker().run(rec, CTX)
    assert any("different e-view change counts" in v for v in report.violations)


def test_merge_atomicity_unconstrained_across_different_next_views():
    rec = TraceRecorder()
    for pid in (P0, P1):
        _install(rec, 0, pid, V1, {P0, P1}, None)
        _structure(rec, 0, pid, V1, 0, [[P0], [P1]])
    _structure(rec, 1, P0, V1, 1, [[P0, P1]])
    # Different successor views: the survivors rule does not apply.
    _install(rec, 2, P0, V2, {P0}, V1)
    _install(rec, 2, P1, ViewId(2, P1), {P1}, V1)
    assert SubviewMergeAtomicityChecker().run(rec, CTX).ok


# -- ZombieIncarnation ------------------------------------------------------


def test_zombie_flags_event_after_own_crash():
    rec = TraceRecorder()
    m = MessageId(P0, V1, 1)
    rec.record(CrashEvent(time=5, pid=P1))
    rec.record(DeliveryEvent(time=7, pid=P1, msg_id=m, view_id=V1))
    report = ZombieIncarnationChecker().run(rec, CTX)
    assert any("after crashing" in v for v in report.violations)


def test_zombie_flags_delivery_by_superseded_incarnation():
    rec = TraceRecorder()
    m = MessageId(P0, V1, 1)
    fresh = ProcessId(1, 1)
    rec.record(RecoverEvent(time=10, pid=fresh, site=1))
    rec.record(DeliveryEvent(time=12, pid=P1, msg_id=m, view_id=V1))
    report = ZombieIncarnationChecker().run(rec, CTX)
    assert any("retired incarnation" in v for v in report.violations)


def test_zombie_passes_events_before_crash_and_fresh_incarnations():
    rec = TraceRecorder()
    m = MessageId(P0, V1, 1)
    rec.record(DeliveryEvent(time=3, pid=P1, msg_id=m, view_id=V1))
    rec.record(CrashEvent(time=5, pid=P1))
    fresh = ProcessId(1, 1)
    rec.record(RecoverEvent(time=10, pid=fresh, site=1))
    rec.record(DeliveryEvent(time=12, pid=fresh, msg_id=m, view_id=V1))
    assert ZombieIncarnationChecker().run(rec, CTX).ok


# -- registry / plumbing ----------------------------------------------------


def test_registry_has_the_four_seeded_detectors():
    names = set(registered_checkers())
    assert {
        "StaleStateTransfer", "LostSettlement",
        "SubviewMergeAtomicity", "ZombieIncarnation",
    } <= names
    assert sorted(c.name for c in make_checkers()) == sorted(names)


def test_make_checkers_by_name_and_spec():
    (one,) = make_checkers(["LostSettlement"])
    assert isinstance(one, LostSettlementChecker)
    spec = "repro.fuzz.checkers:ZombieIncarnationChecker"
    assert isinstance(load_checker(spec), ZombieIncarnationChecker)
    with pytest.raises(ReproError):
        load_checker("NoSuchChecker")
    with pytest.raises(ReproError):
        load_checker("repro.fuzz.checkers:nope")


def test_run_checkers_survives_a_crashing_checker():
    class Broken(TraceChecker):
        name = "Broken"

        def run(self, rec, ctx):
            raise RuntimeError("boom")

    reports = run_checkers(TraceRecorder(), [Broken(), LostSettlementChecker()])
    by_name = {r.name: r for r in reports}
    assert "checker crashed" in by_name["Broken"].violations[0]
    assert by_name["LostSettlement"].ok


def test_register_checker_requires_a_name():
    with pytest.raises(ReproError):

        @register_checker
        class Nameless(TraceChecker):
            pass


# -- acked write loss -------------------------------------------------------

from repro.fuzz.checkers import AckedWriteLossChecker  # noqa: E402

PROV = (1, 0, 0, 1)


def _app(rec, t, pid, tag, data):
    rec.record(AppEvent(time=t, pid=pid, tag=tag, data=data))


def _ack(rec, t, pid, prov=PROV, key="k"):
    _app(rec, t, pid, "store_ack", {"key": key, "prov": prov, "client": "c", "client_seq": 1})


def _apply(rec, t, pid, prov=PROV, key="k"):
    _app(rec, t, pid, "store_apply", {"key": key, "prov": prov, "client": "c", "client_seq": 1})


def _state(rec, t, pid, provs):
    _app(rec, t, pid, "store_state", {"provs": tuple(provs)})


def test_acked_write_loss_passes_when_any_live_process_retains():
    rec = TraceRecorder()
    _apply(rec, 1.0, P0)
    _apply(rec, 1.1, P1)
    _ack(rec, 1.2, P0)
    # P1 adopts a state without the write, but P0 still holds it.
    _state(rec, 2.0, P1, [])
    report = AckedWriteLossChecker().run(rec, CTX)
    assert report.checked == 1 and report.ok


def test_acked_write_loss_flags_universal_loss():
    rec = TraceRecorder()
    _apply(rec, 1.0, P0)
    _apply(rec, 1.1, P1)
    _ack(rec, 1.2, P0)
    # Every holder adopts a merged state that dropped the acked write —
    # the realnet settlement race this checker exists to catch.
    _state(rec, 2.0, P0, [(1, 0, 0, 7)])
    _state(rec, 2.1, P1, [])
    report = AckedWriteLossChecker().run(rec, CTX)
    assert not report.ok
    assert "no live process retains" in report.violations[0]


def test_acked_write_loss_ignores_holdings_of_crashed_processes():
    rec = TraceRecorder()
    _apply(rec, 1.0, P0)
    _ack(rec, 1.1, P0)
    rec.record(CrashEvent(time=2.0, pid=P0))
    report = AckedWriteLossChecker().run(rec, CTX)
    # The only holder died and nobody else ever applied it: flagged.
    assert not report.ok
    # A recovered incarnation restoring it from disk clears the flag.
    p0b = ProcessId(0, 1)
    rec.record(RecoverEvent(time=2.5, pid=p0b))
    _state(rec, 2.6, p0b, [PROV])
    report = AckedWriteLossChecker().run(rec, CTX)
    assert report.ok


def test_acked_write_loss_replays_states_in_time_order():
    rec = TraceRecorder()
    _ack(rec, 1.0, P0)
    # State reset happens *before* the apply: the write survives.
    _state(rec, 0.5, P0, [])
    _apply(rec, 1.5, P0)
    report = AckedWriteLossChecker().run(rec, CTX)
    assert report.ok


def test_acked_write_loss_silent_without_store_traffic():
    rec = TraceRecorder()
    report = AckedWriteLossChecker().run(rec, CTX)
    assert report.checked == 0 and report.ok
