"""The checkers must *detect* violations, not just pass clean traces.

Each test fabricates a synthetic trace seeded with exactly one defect
and asserts the corresponding checker flags it (and only it).
"""

from __future__ import annotations

from repro.trace.checks import (
    check_agreement,
    check_causal_order,
    check_integrity,
    check_structure,
    check_total_order,
    check_uniqueness,
    check_view_monotonicity,
)
from repro.trace.events import (
    DeliveryEvent,
    EViewChangeEvent,
    MulticastEvent,
    ViewInstallEvent,
)
from repro.trace.recorder import TraceRecorder
from repro.types import MessageId, ProcessId, SubviewId, SvSetId, ViewId

P0, P1, P2 = ProcessId(0), ProcessId(1), ProcessId(2)
V1 = ViewId(1, P0)
V2 = ViewId(2, P0)
V3 = ViewId(3, P0)
M = MessageId(P0, V1, 1)


def _install(rec, t, pid, vid, members, prev):
    rec.record(
        ViewInstallEvent(
            time=t, pid=pid, view_id=vid, members=frozenset(members), prev_view_id=prev
        )
    )


def _structure(rec, t, pid, vid, seq, groups):
    subviews = tuple(
        (SubviewId(vid.epoch, min(g), i), frozenset(g))
        for i, g in enumerate(groups)
    )
    svsets = tuple(
        (SvSetId(vid.epoch, min(g), i), frozenset({subviews[i][0]}))
        for i, g in enumerate(groups)
    )
    rec.record(
        EViewChangeEvent(
            time=t, pid=pid, view_id=vid, eview_seq=seq,
            subviews=subviews, svsets=svsets,
        )
    )


def test_agreement_flags_divergent_delivery_sets():
    rec = TraceRecorder()
    for pid in (P0, P1):
        _install(rec, 0, pid, V1, {P0, P1}, None)
    rec.record(MulticastEvent(time=1, pid=P0, msg_id=M))
    rec.record(DeliveryEvent(time=2, pid=P0, msg_id=M, view_id=V1))
    # P1 never delivers M, yet both survive into V2.
    for pid in (P0, P1):
        _install(rec, 3, pid, V2, {P0, P1}, V1)
    report = check_agreement(rec)
    assert not report.ok
    assert "disagree" in report.violations[0]


def test_agreement_ok_when_survivor_groups_differ():
    rec = TraceRecorder()
    for pid in (P0, P1):
        _install(rec, 0, pid, V1, {P0, P1}, None)
    rec.record(MulticastEvent(time=1, pid=P0, msg_id=M))
    rec.record(DeliveryEvent(time=2, pid=P0, msg_id=M, view_id=V1))
    _install(rec, 3, P0, V2, {P0}, V1)
    _install(rec, 3, P1, V3, {P1}, V1)  # different next view: unconstrained
    assert check_agreement(rec).ok


def test_uniqueness_flags_two_view_delivery():
    rec = TraceRecorder()
    rec.record(MulticastEvent(time=0, pid=P0, msg_id=M))
    rec.record(DeliveryEvent(time=1, pid=P0, msg_id=M, view_id=V1))
    rec.record(DeliveryEvent(time=2, pid=P1, msg_id=M, view_id=V2))
    report = check_uniqueness(rec)
    assert not report.ok


def test_integrity_flags_duplicate_delivery():
    rec = TraceRecorder()
    rec.record(MulticastEvent(time=0, pid=P0, msg_id=M))
    rec.record(DeliveryEvent(time=1, pid=P1, msg_id=M, view_id=V1))
    rec.record(DeliveryEvent(time=2, pid=P1, msg_id=M, view_id=V1))
    report = check_integrity(rec)
    assert any("twice" in v for v in report.violations)


def test_integrity_flags_phantom_message():
    rec = TraceRecorder()
    rec.record(DeliveryEvent(time=1, pid=P1, msg_id=M, view_id=V1))
    report = check_integrity(rec)
    assert any("never-multicast" in v for v in report.violations)


def test_monotonicity_flags_regressing_views():
    rec = TraceRecorder()
    _install(rec, 0, P0, V2, {P0}, None)
    _install(rec, 1, P0, V1, {P0}, V2)
    report = check_view_monotonicity(rec)
    assert not report.ok


def test_total_order_flags_skipped_sequence():
    rec = TraceRecorder()
    _structure(rec, 0, P0, V1, 0, [[P0, P1]])
    _structure(rec, 1, P0, V1, 2, [[P0, P1]])  # skipped seq 1
    report = check_total_order(rec)
    assert not report.ok


def test_total_order_flags_divergent_structures():
    rec = TraceRecorder()
    _structure(rec, 0, P0, V1, 0, [[P0], [P1]])
    _structure(rec, 0, P1, V1, 0, [[P0, P1]])  # same seq, different shape
    report = check_total_order(rec)
    assert any("divergent" in v for v in report.violations)


def test_causal_order_flags_premature_delivery():
    rec = TraceRecorder()
    _structure(rec, 0, P0, V1, 0, [[P0, P1]])
    rec.record(MulticastEvent(time=1, pid=P1, msg_id=M))
    rec.record(
        DeliveryEvent(
            time=2, pid=P0, msg_id=M, view_id=V1, sender_eview_seq=3
        )
    )
    report = check_causal_order(rec)
    assert not report.ok


def test_causal_order_passes_when_change_applied_first():
    rec = TraceRecorder()
    _structure(rec, 0, P0, V1, 0, [[P0, P1]])
    _structure(rec, 1, P0, V1, 1, [[P0, P1]])
    rec.record(
        DeliveryEvent(time=2, pid=P0, msg_id=M, view_id=V1, sender_eview_seq=1)
    )
    assert check_causal_order(rec).ok


def test_structure_flags_split_within_view():
    rec = TraceRecorder()
    _structure(rec, 0, P0, V1, 0, [[P0, P1]])
    _structure(rec, 1, P0, V1, 1, [[P0], [P1]])  # a split: illegal
    report = check_structure(rec)
    assert any("split" in v for v in report.violations)


def test_structure_flags_separated_mates_across_views():
    rec = TraceRecorder()
    for pid in (P0, P1):
        _install(rec, 0, pid, V1, {P0, P1}, None)
        _structure(rec, 0, pid, V1, 0, [[P0, P1]])
    for pid in (P0, P1):
        _install(rec, 1, pid, V2, {P0, P1}, V1)
        _structure(rec, 1, pid, V2, 0, [[P0], [P1]])  # mates separated
    report = check_structure(rec)
    assert any("separated" in v for v in report.violations)


def test_structure_ignores_processes_on_different_chains():
    rec = TraceRecorder()
    for pid in (P0, P1):
        _install(rec, 0, pid, V1, {P0, P1}, None)
        _structure(rec, 0, pid, V1, 0, [[P0, P1]])
    # P0 takes V1 -> V2; P1 skips to V3 directly: pairs unconstrained.
    _install(rec, 1, P0, V2, {P0, P1}, V1)
    _structure(rec, 1, P0, V2, 0, [[P0], [P1]])
    _install(rec, 2, P1, V3, {P0, P1}, V1)
    _structure(rec, 2, P1, V3, 0, [[P0], [P1]])
    assert check_structure(rec).ok


def test_reports_render():
    rec = TraceRecorder()
    report = check_uniqueness(rec)
    assert "Uniqueness" in str(report)
    merged = report.merge(check_integrity(rec))
    assert merged.ok


# ---------------------------------------------------------------------------
# TraceRecorder.merge: per-node recorders -> one coherent global history
# ---------------------------------------------------------------------------


def test_merge_orders_by_time_then_pid_then_seq():
    a, b = TraceRecorder(), TraceRecorder()
    # Same-instant events: P1's (in b) must sort after P0's (in a), and
    # P0's two t=1 events must keep their recorded order.
    a.record(MulticastEvent(time=1, pid=P0, msg_id=M))
    a.record(DeliveryEvent(time=1, pid=P0, msg_id=M, view_id=V1))
    a.record(DeliveryEvent(time=3, pid=P0, msg_id=M, view_id=V1))
    b.record(DeliveryEvent(time=1, pid=P1, msg_id=M, view_id=V1))
    b.record(MulticastEvent(time=2, pid=P1, msg_id=M))
    merged = TraceRecorder.merge(a, b)
    assert [(e.time, e.pid) for e in merged.events] == [
        (1, P0), (1, P0), (1, P1), (2, P1), (3, P0)
    ]
    assert type(merged.events[0]) is MulticastEvent  # stable within P0@t=1
    assert type(merged.events[1]) is DeliveryEvent


def test_merge_sums_loss_counters_and_sources_unchanged():
    a = TraceRecorder(level="membership")
    b = TraceRecorder(capacity=1)
    a.record(MulticastEvent(time=0, pid=P0, msg_id=M))  # filtered out
    _install(a, 1, P0, V1, {P0}, None)
    b.record(DeliveryEvent(time=2, pid=P1, msg_id=M, view_id=V1))
    b.record(DeliveryEvent(time=3, pid=P1, msg_id=M, view_id=V1))  # evicts
    merged = TraceRecorder.merge(a, b)
    assert merged.filtered == 1
    assert merged.dropped == 1
    assert len(merged) == 2
    assert len(a) == 1 and len(b) == 1  # sources untouched


def test_merge_of_nothing_is_empty_full_recorder():
    merged = TraceRecorder.merge()
    assert len(merged) == 0
    assert merged.level == "full"
    assert merged.wants(MulticastEvent)


def test_checkers_see_split_history_whole_after_merge():
    """A per-process split of a healthy history checks clean merged."""
    per_node = {pid: TraceRecorder() for pid in (P0, P1)}
    for pid in (P0, P1):
        _install(per_node[pid], 0, pid, V1, {P0, P1}, None)
    per_node[P0].record(MulticastEvent(time=1, pid=P0, msg_id=M))
    for pid in (P0, P1):
        per_node[pid].record(
            DeliveryEvent(time=2, pid=pid, msg_id=M, view_id=V1)
        )
        _install(per_node[pid], 3, pid, V2, {P0, P1}, V1)
    merged = TraceRecorder.merge(*per_node.values())
    for check in (check_agreement, check_uniqueness, check_integrity,
                  check_view_monotonicity):
        report = check(merged)
        assert report.ok, report.violations


# ---------------------------------------------------------------------------
# Cut consistency and the bundled enriched-view checks: edge cases
# ---------------------------------------------------------------------------


def test_cut_consistency_flags_message_crossing_cut_backwards():
    from repro.trace.checks import check_cut_consistency

    rec = TraceRecorder()
    # P0 applies e-view change (V1, 1), then multicasts...
    _structure(rec, 1, P0, V1, 1, [[P0, P1]])
    rec.record(MulticastEvent(time=2, pid=P0, msg_id=M))
    # ...which P1 delivers before applying the same change: inconsistent cut.
    rec.record(DeliveryEvent(time=3, pid=P1, msg_id=M, view_id=V1))
    _structure(rec, 4, P1, V1, 1, [[P0, P1]])
    report = check_cut_consistency(rec)
    assert not report.ok
    assert "crosses the cut" in report.violations[0]


def test_cut_consistency_clean_when_delivery_respects_cut():
    from repro.trace.checks import check_cut_consistency

    rec = TraceRecorder()
    _structure(rec, 1, P0, V1, 1, [[P0, P1]])
    _structure(rec, 1, P1, V1, 1, [[P0, P1]])
    rec.record(MulticastEvent(time=2, pid=P0, msg_id=M))
    rec.record(DeliveryEvent(time=3, pid=P1, msg_id=M, view_id=V1))
    report = check_cut_consistency(rec)
    assert report.ok and report.checked == 1


def test_enriched_checks_accept_an_empty_trace():
    from repro.trace.checks import all_ok, check_enriched_views

    reports = check_enriched_views(TraceRecorder())
    assert all_ok(reports)
    assert [r.checked for r in reports] == [0, 0, 0, 0]


def test_cut_consistency_skips_the_install_itself():
    from repro.trace.checks import check_cut_consistency

    rec = TraceRecorder()
    # Only seq-0 changes (the install); covered by view semantics, not cuts.
    _structure(rec, 1, P0, V1, 0, [[P0, P1]])
    _structure(rec, 1, P1, V1, 0, [[P0, P1]])
    report = check_cut_consistency(rec)
    assert report.ok and report.checked == 0


def test_enriched_checks_accept_single_site_views():
    from repro.trace.checks import all_ok, check_enriched_views

    rec = TraceRecorder()
    _install(rec, 0, P0, V1, {P0}, None)
    _structure(rec, 0, P0, V1, 0, [[P0]])
    solo = MessageId(P0, V1, 1)
    rec.record(MulticastEvent(time=1, pid=P0, msg_id=solo))
    rec.record(DeliveryEvent(time=2, pid=P0, msg_id=solo, view_id=V1))
    assert all_ok(check_enriched_views(rec))


def test_enriched_checks_keep_incarnations_distinct():
    from repro.trace.checks import all_ok, check_enriched_views

    rec = TraceRecorder()
    old, fresh = ProcessId(1, 0), ProcessId(1, 1)
    # The old incarnation lived in V1 and applied its changes there...
    _install(rec, 0, P0, V1, {P0, old}, None)
    _install(rec, 0, old, V1, {P0, old}, None)
    _structure(rec, 0, P0, V1, 0, [[P0], [old]])
    _structure(rec, 0, old, V1, 0, [[P0], [old]])
    _structure(rec, 1, P0, V1, 1, [[P0, old]])
    _structure(rec, 1, old, V1, 1, [[P0, old]])
    # ...the fresh one starts in V2; its history is independent.
    _install(rec, 5, P0, V2, {P0, fresh}, V1)
    _install(rec, 5, fresh, V2, {P0, fresh}, None)
    _structure(rec, 5, P0, V2, 0, [[P0], [fresh]])
    _structure(rec, 5, fresh, V2, 0, [[P0], [fresh]])
    m2 = MessageId(fresh, V2, 1)
    rec.record(MulticastEvent(time=6, pid=fresh, msg_id=m2))
    rec.record(DeliveryEvent(time=7, pid=fresh, msg_id=m2, view_id=V2))
    rec.record(DeliveryEvent(time=7, pid=P0, msg_id=m2, view_id=V2))
    assert all_ok(check_enriched_views(rec))
