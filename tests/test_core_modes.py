"""Tests for the mode automaton (Figure 1) and the mode functions."""

from __future__ import annotations

import pytest

from repro.core.mode_functions import (
    AlwaysFullModeFunction,
    Capability,
    QuorumModeFunction,
    StaticMajorityModeFunction,
)
from repro.core.modes import (
    LEGAL_TRANSITIONS,
    Mode,
    ModeAutomaton,
    Transition,
)
from repro.errors import ApplicationError
from repro.evs.eview import EView, EViewStructure
from repro.gms.view import View
from repro.types import ProcessId, ViewId


def make_eview(epoch: int, *sites: int) -> EView:
    members = frozenset(ProcessId(s) for s in sites)
    view = View(ViewId(epoch, min(members)), members)
    return EView(view, EViewStructure.singletons(epoch, members))


def quorum5() -> QuorumModeFunction:
    return QuorumModeFunction.uniform(range(5))


# ---------------------------------------------------------------------------
# Mode functions
# ---------------------------------------------------------------------------


def test_quorum_capability_thresholds():
    fn = quorum5()
    assert fn.capability(make_eview(1, 0, 1, 2)) is Capability.FULL
    assert fn.capability(make_eview(1, 0, 1)) is Capability.REDUCED
    assert fn.n_capable(frozenset({ProcessId(0), ProcessId(1), ProcessId(2)}))
    assert not fn.n_capable(frozenset({ProcessId(0)}))


def test_weighted_quorum():
    fn = QuorumModeFunction({0: 3, 1: 1, 2: 1})
    assert fn.n_capable(frozenset({ProcessId(0)}))  # 3 of 5 votes
    assert not fn.n_capable(frozenset({ProcessId(1), ProcessId(2)}))


def test_quorum_rejects_bad_votes():
    with pytest.raises(ValueError):
        QuorumModeFunction({})
    with pytest.raises(ValueError):
        QuorumModeFunction({0: -1})


def test_quorum_needs_settling_only_on_expansion():
    fn = quorum5()
    big = make_eview(1, 0, 1, 2, 3)
    small = make_eview(2, 0, 1, 2)
    assert not fn.needs_settling(big, small)  # pure shrink
    assert fn.needs_settling(small, big)  # expansion
    assert fn.needs_settling(None, small)  # first view


def test_always_full_settles_on_any_membership_change():
    fn = AlwaysFullModeFunction()
    a = make_eview(1, 0, 1)
    b = make_eview(2, 0)
    same = make_eview(3, 0, 1)
    assert fn.capability(b) is Capability.FULL
    assert fn.needs_settling(a, b)  # shrink still redistributes
    assert not fn.needs_settling(a, same)  # same membership: nothing moved


def test_static_majority_counts_universe():
    fn = StaticMajorityModeFunction(range(5))
    assert fn.total == 5


# ---------------------------------------------------------------------------
# Automaton transitions (Figure 1)
# ---------------------------------------------------------------------------


def test_join_enters_settling_when_capable():
    auto = ModeAutomaton(AlwaysFullModeFunction())
    change = auto.on_view(make_eview(1, 0))
    assert change.transition is Transition.JOIN
    assert auto.mode is Mode.SETTLING


def test_join_enters_reduced_without_quorum():
    auto = ModeAutomaton(quorum5())
    auto.on_view(make_eview(1, 0))
    assert auto.mode is Mode.REDUCED


def test_failure_transition_n_to_r():
    auto = ModeAutomaton(quorum5())
    auto.on_view(make_eview(1, 0, 1, 2))
    auto.reconcile()
    assert auto.mode is Mode.NORMAL
    change = auto.on_view(make_eview(2, 0, 1))
    assert change.transition is Transition.FAILURE
    assert (change.old, change.new) == (Mode.NORMAL, Mode.REDUCED)


def test_failure_transition_s_to_r():
    auto = ModeAutomaton(quorum5())
    auto.on_view(make_eview(1, 0, 1, 2))
    assert auto.mode is Mode.SETTLING
    change = auto.on_view(make_eview(2, 0))
    assert change.transition is Transition.FAILURE


def test_repair_transition_r_to_s():
    auto = ModeAutomaton(quorum5())
    auto.on_view(make_eview(1, 0, 1))
    assert auto.mode is Mode.REDUCED
    change = auto.on_view(make_eview(2, 0, 1, 2))
    assert change.transition is Transition.REPAIR
    assert auto.mode is Mode.SETTLING


def test_reconfigure_transition_n_to_s():
    auto = ModeAutomaton(quorum5())
    auto.on_view(make_eview(1, 0, 1, 2))
    auto.reconcile()
    change = auto.on_view(make_eview(2, 0, 1, 2, 3))
    assert change.transition is Transition.RECONFIGURE
    assert auto.mode is Mode.SETTLING


def test_reconfigure_transition_s_to_s():
    """Overlapping reconstruction instances (Section 3)."""
    auto = ModeAutomaton(quorum5())
    auto.on_view(make_eview(1, 0, 1, 2))
    assert auto.mode is Mode.SETTLING
    change = auto.on_view(make_eview(2, 0, 1, 2, 3))
    assert change.transition is Transition.RECONFIGURE
    assert (change.old, change.new) == (Mode.SETTLING, Mode.SETTLING)


def test_reconcile_transition_s_to_n():
    auto = ModeAutomaton(quorum5())
    auto.on_view(make_eview(1, 0, 1, 2))
    change = auto.reconcile()
    assert change.transition is Transition.RECONCILE
    assert auto.mode is Mode.NORMAL


def test_reconcile_outside_settling_raises():
    auto = ModeAutomaton(quorum5())
    auto.on_view(make_eview(1, 0))  # REDUCED
    with pytest.raises(ApplicationError):
        auto.reconcile()


def test_pure_shrink_keeps_normal_without_transition():
    auto = ModeAutomaton(quorum5())
    auto.on_view(make_eview(1, 0, 1, 2, 3))
    auto.reconcile()
    change = auto.on_view(make_eview(2, 0, 1, 2))
    assert change is None
    assert auto.mode is Mode.NORMAL


def test_reduced_stays_reduced_without_transition():
    auto = ModeAutomaton(quorum5())
    auto.on_view(make_eview(1, 0, 1))
    change = auto.on_view(make_eview(2, 0))
    assert change is None
    assert auto.mode is Mode.REDUCED


def test_settling_stays_settling_on_non_expanding_change():
    auto = ModeAutomaton(quorum5())
    auto.on_view(make_eview(1, 0, 1, 2, 3))
    assert auto.mode is Mode.SETTLING
    change = auto.on_view(make_eview(2, 0, 1, 2))
    assert change is None
    assert auto.mode is Mode.SETTLING


def test_legal_transition_table_matches_figure_1():
    """Exactly the six labelled edges of Figure 1."""
    edges = {
        (label, old, new)
        for label, pairs in LEGAL_TRANSITIONS.items()
        for old, new in pairs
    }
    assert edges == {
        (Transition.FAILURE, Mode.NORMAL, Mode.REDUCED),
        (Transition.FAILURE, Mode.SETTLING, Mode.REDUCED),
        (Transition.REPAIR, Mode.REDUCED, Mode.SETTLING),
        (Transition.RECONFIGURE, Mode.NORMAL, Mode.SETTLING),
        (Transition.RECONFIGURE, Mode.SETTLING, Mode.SETTLING),
        (Transition.RECONCILE, Mode.SETTLING, Mode.NORMAL),
    }


def test_change_history_is_recorded():
    auto = ModeAutomaton(quorum5())
    auto.on_view(make_eview(1, 0, 1, 2))
    auto.reconcile()
    auto.on_view(make_eview(2, 0))
    labels = [c.transition for c in auto.changes]
    assert labels == [Transition.JOIN, Transition.RECONCILE, Transition.FAILURE]


def test_on_change_callback_fires():
    seen = []
    auto = ModeAutomaton(quorum5(), on_change=lambda c, e: seen.append(c))
    auto.on_view(make_eview(1, 0, 1, 2))
    assert len(seen) == 1
