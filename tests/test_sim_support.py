"""Tests for RNG streams, processes/timers and stable storage."""

from __future__ import annotations

from repro.sim.process import Process
from repro.sim.rng import RngStreams
from repro.sim.scheduler import Scheduler
from repro.sim.stable_storage import SiteStorage, StableStore
from repro.types import ProcessId


# ---------------------------------------------------------------------------
# RngStreams
# ---------------------------------------------------------------------------


def test_same_seed_same_stream():
    a = RngStreams(7).stream("latency")
    b = RngStreams(7).stream("latency")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_names_are_independent():
    streams = RngStreams(7)
    a = [streams.stream("a").random() for _ in range(5)]
    b = [streams.stream("b").random() for _ in range(5)]
    assert a != b


def test_stream_is_cached():
    streams = RngStreams(0)
    assert streams.stream("x") is streams.stream("x")


def test_new_consumer_does_not_perturb_existing_stream():
    first = RngStreams(3)
    lone = [first.stream("net").random() for _ in range(5)]
    second = RngStreams(3)
    second.stream("workload").random()  # extra consumer
    shared = [second.stream("net").random() for _ in range(5)]
    assert lone == shared


def test_spawn_derives_independent_family():
    parent = RngStreams(3)
    child = parent.spawn("sub")
    assert child.seed != parent.seed
    assert child.stream("x").random() != parent.stream("x").random()


# ---------------------------------------------------------------------------
# Process and timers
# ---------------------------------------------------------------------------


class _Ticker(Process):
    def __init__(self, pid, scheduler, storage):
        super().__init__(pid, scheduler, storage)
        self.ticks = []

    def on_network(self, src, payload):
        pass


def _make_process() -> tuple[Scheduler, _Ticker]:
    sched = Scheduler()
    proc = _Ticker(ProcessId(0), sched, SiteStorage(0))
    return sched, proc


def test_one_shot_timer_fires_once():
    sched, proc = _make_process()
    proc.set_timer(5.0, lambda: proc.ticks.append(sched.now))
    sched.run_for(50.0)
    assert proc.ticks == [5.0]


def test_periodic_timer_fires_repeatedly():
    sched, proc = _make_process()
    proc.set_periodic(10.0, lambda: proc.ticks.append(sched.now))
    sched.run_for(35.0)
    assert proc.ticks == [10.0, 20.0, 30.0]


def test_cancelled_timer_does_not_fire():
    sched, proc = _make_process()
    timer = proc.set_timer(5.0, lambda: proc.ticks.append("x"))
    timer.cancel()
    sched.run_for(10.0)
    assert proc.ticks == []


def test_crash_silences_timers():
    sched, proc = _make_process()
    proc.set_periodic(5.0, lambda: proc.ticks.append(sched.now))
    sched.run_for(11.0)
    proc.crash()
    sched.run_for(50.0)
    assert proc.ticks == [5.0, 10.0]
    assert not proc.alive


def test_crash_is_idempotent():
    _, proc = _make_process()
    hooks = []
    proc.on_crash = lambda: hooks.append(1)  # type: ignore[method-assign]
    proc.crash()
    proc.crash()
    assert hooks == [1]


def test_crashed_process_drops_deliveries():
    _, proc = _make_process()
    seen = []
    proc.on_network = lambda src, payload: seen.append(payload)  # type: ignore[method-assign]
    proc.crash()
    proc.deliver_network(ProcessId(1), "msg")
    assert seen == []


# ---------------------------------------------------------------------------
# Stable storage
# ---------------------------------------------------------------------------


def test_storage_read_returns_default_when_missing():
    storage = SiteStorage(0)
    assert storage.read("nothing") is None
    assert storage.read("nothing", 42) == 42


def test_storage_write_snapshots_value():
    storage = SiteStorage(0)
    data = {"a": [1, 2]}
    storage.write("k", data)
    data["a"].append(3)  # later mutation must not leak into storage
    assert storage.read("k") == {"a": [1, 2]}


def test_storage_read_returns_private_copy():
    storage = SiteStorage(0)
    storage.write("k", [1, 2])
    copy = storage.read("k")
    copy.append(3)
    assert storage.read("k") == [1, 2]


def test_storage_append_builds_log():
    storage = SiteStorage(0)
    storage.append("log", "a")
    storage.append("log", "b")
    assert storage.read("log") == ["a", "b"]


def test_storage_contains_and_keys():
    storage = SiteStorage(0)
    storage.write("k", 1)
    assert "k" in storage
    assert "other" not in storage
    assert list(storage.keys()) == ["k"]


def test_storage_wipe():
    storage = SiteStorage(0)
    storage.write("k", 1)
    storage.wipe()
    assert "k" not in storage


def test_store_returns_same_site_storage():
    store = StableStore()
    assert store.site(3) is store.site(3)
    assert store.site(3) is not store.site(4)


def test_storage_survives_process_crash_boundary():
    """The storage object outlives any process incarnation using it."""
    store = StableStore()
    sched = Scheduler()
    first = _Ticker(ProcessId(0, 0), sched, store.site(0))
    first.storage.write("epoch", 7)
    first.crash()
    second = _Ticker(ProcessId(0, 1), sched, store.site(0))
    assert second.storage.read("epoch") == 7
