"""Trace-context wire fields: both codecs, with and without context.

Every protocol dataclass that grew an optional trailing ``trace`` field
must:

* round-trip identically through both codecs with a context attached;
* round-trip with the context absent (``None``), the tracing-off case;
* cost **zero wire bytes** while absent — the JSON codec elides the
  key entirely, the ``bin1`` codec elides the trailing field from the
  announced arity (so the bytes equal what a pre-tracing peer would
  have produced, which is also why the decoder's ``min_arity``
  tolerance makes the formats interoperable across the change).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.client.protocol import ClientReply, ClientRequest
from repro.core.settlement import StateAdopt, StateOffer, StateRequest
from repro.core.state_transfer import TOffer
from repro.gms.messages import VcInstall, VcPrepare, VcPropose
from repro.gms.view import View
from repro.obs.tracing import TraceCtx
from repro.realnet.codec import decode_value, encode_value
from repro.realnet.codec_bin import decode_value_bin, encode_value_bin
from repro.types import Message, MessageId, ProcessId, ViewId

P0, P1 = ProcessId(0, 0), ProcessId(1, 0)
VID = ViewId(3, P0)
CTX = TraceCtx(trace_id=0x4001, span_id=0x5001, parent=0x4001)


def _traced_samples():
    """One instance per context-carrying wire dataclass, trace unset."""
    from repro.evs.eview import EViewStructure

    view = View(VID, frozenset({P0, P1}))
    structure = EViewStructure.singletons(3, view.members)
    return [
        Message(MessageId(P1, VID, 7), payload={"op": "put"}, eview_seq=2),
        VcPropose(P1, frozenset({P0, P1})),
        VcPrepare((P0, 5), frozenset({P0, P1})),
        VcInstall(round_id=(P0, 5), view=view, structure=structure),
        StateRequest(session=(P0, 2), accepts_chunks=True),
        StateOffer(
            session=(P0, 2), sender=P1, snapshot={"k": "v"}, version=5,
            last_epoch=3,
        ),
        StateAdopt(session=(P0, 2), state={"k": "v"}, view_id=VID),
        TOffer(
            transfer=(P1, 2),
            session=(P0, 2),
            kind="whole",
            total_chunks=2,
            base_version=0,
            target_version=5,
            sender=P1,
            last_epoch=3,
        ),
        ClientRequest(req_id=1, op="put", key="k", value="v", client="c0",
                      client_seq=1),
        ClientReply(req_id=1, status="ok", value="v"),
    ]


def _ids(sample):
    return type(sample).__name__


@pytest.mark.parametrize("sample", _traced_samples(), ids=_ids)
def test_has_trace_field_defaulting_none(sample):
    assert sample.trace is None
    field = {f.name: f for f in dataclasses.fields(sample)}["trace"]
    assert field.default is None


@pytest.mark.parametrize("sample", _traced_samples(), ids=_ids)
def test_roundtrip_with_context_both_codecs(sample):
    traced = dataclasses.replace(sample, trace=CTX)
    via_bin = decode_value_bin(encode_value_bin(traced))
    via_json = decode_value(encode_value(traced))
    assert via_bin == traced and via_json == traced
    assert via_bin.trace == CTX and via_json.trace == CTX


@pytest.mark.parametrize("sample", _traced_samples(), ids=_ids)
def test_roundtrip_without_context_both_codecs(sample):
    via_bin = decode_value_bin(encode_value_bin(sample))
    via_json = decode_value(encode_value(sample))
    assert via_bin == sample and via_json == sample
    assert via_bin.trace is None and via_json.trace is None


@pytest.mark.parametrize("sample", _traced_samples(), ids=_ids)
def test_absent_context_costs_zero_json_bytes(sample):
    encoded = encode_value(sample)
    assert "trace" not in encoded["f"]
    traced = encode_value(dataclasses.replace(sample, trace=CTX))
    assert "trace" in traced["f"]


@pytest.mark.parametrize("sample", _traced_samples(), ids=_ids)
def test_absent_context_costs_zero_bin_bytes(sample):
    bare = encode_value_bin(sample)
    traced = encode_value_bin(dataclasses.replace(sample, trace=CTX))
    # The context itself is ~10 bytes of payload; eliding it must shed
    # at least that much, not merely encode a None placeholder.
    assert len(traced) - len(bare) >= len(encode_value_bin(CTX)) - 2
    # And the elided bytes never mention the context's ids.
    assert decode_value_bin(bare).trace is None


def test_reply_echoes_request_context_shape():
    """The service echoes the root ctx on the reply; both codecs carry
    it as a nested registered dataclass, not an opaque blob."""
    reply = ClientReply(req_id=9, status="ok", trace=CTX)
    for roundtrip in (
        lambda v: decode_value_bin(encode_value_bin(v)),
        lambda v: decode_value(encode_value(v)),
    ):
        back = roundtrip(reply)
        assert isinstance(back.trace, TraceCtx)
        assert back.trace == CTX
