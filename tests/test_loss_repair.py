"""In-view loss repair: messages and e-view changes lost inside a
stable view must be retransmitted (heartbeat-driven NACKs), not wait
for a view change that may never come."""

from __future__ import annotations

from repro.apps.replicated_file import ReplicatedFile
from repro.bench.harness import run_with_schedule
from repro.core.modes import Mode
from repro.net.latency import UniformLatency
from repro.runtime.cluster import Cluster, ClusterConfig
from repro.trace.checks import check_enriched_views, check_view_synchrony
from repro.workload.generator import RandomFaultGenerator

from tests.conftest import assert_all_properties, settled_cluster


def test_lost_multicast_repaired_within_stable_view():
    cluster = settled_cluster(3)
    sender = cluster.stack_at(0)
    victim = cluster.stack_at(2)
    got = []
    victim.app.on_message = lambda s, p, m: got.append(p)
    # Simulate the loss: multicast, then surgically remove the copy the
    # victim received before it could be delivered... easiest honest
    # equivalent: cut the link one-way for the send instant.
    cluster.topology.cut_oneway(0, 2)
    sender.multicast("lost-copy")
    cluster.run_for(3)
    cluster.topology.heal_oneway(0, 2)
    assert got == []  # the copy was lost; no view change is coming
    cluster.run_for(30)  # a few heartbeat rounds
    assert got == ["lost-copy"]  # repaired via retransmission
    assert_all_properties(cluster.recorder)


def test_lost_eview_change_repaired_within_stable_view():
    cluster = settled_cluster(3)
    lead = cluster.stack_at(0)
    victim = cluster.stack_at(2)
    cluster.topology.cut_oneway(0, 2)  # victim misses the EvChange
    lead.sv_set_merge([ss.ssid for ss in lead.eview.structure.svsets])
    cluster.run_for(3)
    cluster.topology.heal_oneway(0, 2)
    assert victim.eview.seq == 0  # it missed the change
    cluster.run_for(30)
    assert victim.eview.seq == 1  # repaired via EvRepairReq
    assert len(victim.eview.structure.svsets) == 1
    assert_all_properties(cluster.recorder)


def test_lost_adopt_does_not_strand_a_member():
    """Regression (found by a loss soak): the settlement's StateAdopt
    copy to one member is lost in an otherwise stable view; the member
    must still reconcile via retransmission."""
    votes = {s: 1 for s in range(5)}
    gen = RandomFaultGenerator(n_sites=5, seed=1704, duration=250)
    cfg = ClusterConfig(
        seed=4, loss_prob=0.05, latency=UniformLatency(0.3, 3.5)
    )
    cluster = run_with_schedule(
        5,
        gen.generate(),
        app_factory=lambda pid: ReplicatedFile(votes),
        config=cfg,
        tail=gen.settle_tail + 400,
        settle_timeout=1200,
    )
    cluster.run_for(400)
    cluster.settle(timeout=900)
    live = [cluster.apps[s] for s in cluster.apps if cluster.stacks[s].alive]
    assert all(a.mode is Mode.NORMAL for a in live)
    assert all(a.fresh for a in live)
    for report in check_view_synchrony(cluster.recorder) + check_enriched_views(
        cluster.recorder
    ):
        assert report.ok, report.violations[:3]


def test_retransmission_respects_stability_pruning():
    """A pruned (stable) message is never re-requested: the stable
    prefix is excluded from gap detection."""
    config = ClusterConfig(seed=0)
    cluster = Cluster(3, config=config)
    assert cluster.settle(timeout=500)
    stack = cluster.stack_at(0)
    for i in range(10):
        stack.multicast(("m", i))
    cluster.run_for(120)  # deliver + stabilise + prune
    receiver = cluster.stack_at(1)
    pruned_floor = receiver.channels._stable.get(stack.pid, 0)
    assert pruned_floor > 0
    before = cluster.network.stats.by_type.get("RetransmitRequest", 0)
    cluster.run_for(60)
    after = cluster.network.stats.by_type.get("RetransmitRequest", 0)
    assert after == before  # nothing stable is ever re-requested
