"""Tests for state transfer chunks, merge policies and creation choice."""

from __future__ import annotations

import pytest

from repro.core.group_object import AppStateOffer
from repro.core.settlement import StateOffer
from repro.core.state_creation import (
    choose_by_last_to_fail,
    creation_is_safe,
    last_to_fail_order,
)
from repro.core.state_merge import (
    LastWriterWins,
    SetUnionMerge,
    Versioned,
    VersionVectorMerge,
    divergence,
)
from repro.core.state_transfer import (
    ChunkReceiver,
    ChunkSender,
    TAck,
    TChunk,
    TwoPieceTransfer,
    split_state,
)
from repro.errors import ApplicationError
from repro.types import ProcessId

from tests.conftest import settled_cluster


def offer(site: int, state, version: int = 0, last_epoch: int = 0) -> AppStateOffer:
    return AppStateOffer(ProcessId(site), state, version, last_epoch)


def raw_offer(site: int, version: int, last_epoch: int) -> StateOffer:
    return StateOffer(
        session=(ProcessId(0), 1),
        sender=ProcessId(site),
        snapshot=f"state-{site}",
        version=version,
        last_epoch=last_epoch,
    )


# ---------------------------------------------------------------------------
# Merge policies
# ---------------------------------------------------------------------------


def test_lww_highest_version_wins():
    merged = LastWriterWins().merge(
        [offer(0, {"k": "old"}, version=1), offer(1, {"k": "new"}, version=5)]
    )
    assert merged == {"k": "new"}


def test_lww_keeps_disjoint_keys():
    merged = LastWriterWins().merge(
        [offer(0, {"a": 1}, 1), offer(1, {"b": 2}, 2)]
    )
    assert merged == {"a": 1, "b": 2}


def test_lww_requires_offers():
    with pytest.raises(ApplicationError):
        LastWriterWins().merge([])


def test_lww_deterministic_on_ties():
    a = LastWriterWins().merge([offer(0, {"k": "x"}, 1), offer(1, {"k": "y"}, 1)])
    b = LastWriterWins().merge([offer(1, {"k": "y"}, 1), offer(0, {"k": "x"}, 1)])
    assert a == b


def test_set_union_merge():
    merged = SetUnionMerge().merge(
        [offer(0, {"s": {1, 2}}), offer(1, {"s": {2, 3}, "t": {9}})]
    )
    assert merged == {"s": {1, 2, 3}, "t": {9}}


def test_versioned_dominance():
    a = Versioned("a").bump(0).bump(0)
    b = Versioned("b").bump(0)
    assert a.dominates(b)
    assert not b.dominates(a)
    assert not a.concurrent_with(b)


def test_versioned_concurrency():
    a = Versioned("a").bump(0)
    b = Versioned("b").bump(1)
    assert a.concurrent_with(b)


def test_version_vector_merge_dominant_wins():
    base = Versioned("v0").bump(0)
    newer = base.with_value("v1").bump(0)
    policy = VersionVectorMerge()
    merged = policy.merge([offer(0, {"k": newer}), offer(1, {"k": base})])
    assert merged["k"].value == "v1"
    assert policy.conflicts == []


def test_version_vector_merge_detects_conflicts():
    left = Versioned("L").bump(0)
    right = Versioned("R").bump(1)
    policy = VersionVectorMerge()
    merged = policy.merge([offer(0, {"k": left}), offer(1, {"k": right})])
    assert policy.conflicts == ["k"]
    # Resolution joins the clocks so the result dominates both inputs.
    assert merged["k"].dominates(left) and merged["k"].dominates(right)


def test_version_vector_custom_resolver():
    left = Versioned("L").bump(0)
    right = Versioned("R").bump(1)
    policy = VersionVectorMerge(resolver=lambda key, a, b: a)
    merged = policy.merge([offer(0, {"k": left}), offer(1, {"k": right})])
    assert merged["k"].value == "L"


def test_divergence_report():
    report = divergence(
        [offer(0, {"a": 1, "b": 2}), offer(1, {"a": 1, "b": 3, "c": 4})]
    )
    assert report == {"agree": 1, "conflict": 1, "partial": 1}


def test_divergence_empty():
    assert divergence([]) == {"agree": 0, "conflict": 0, "partial": 0}


# ---------------------------------------------------------------------------
# State creation (last process to fail)
# ---------------------------------------------------------------------------


def test_last_to_fail_prefers_highest_epoch():
    offers = [raw_offer(0, version=9, last_epoch=3), raw_offer(1, 1, 7)]
    assert choose_by_last_to_fail(offers).sender.site == 1


def test_last_to_fail_ties_break_on_version_then_pid():
    offers = [raw_offer(0, 1, 5), raw_offer(1, 2, 5)]
    assert choose_by_last_to_fail(offers).sender.site == 1
    offers = [raw_offer(0, 2, 5), raw_offer(1, 2, 5)]
    assert choose_by_last_to_fail(offers).sender.site == 1  # larger pid


def test_last_to_fail_order_is_best_first():
    offers = [raw_offer(0, 1, 1), raw_offer(1, 1, 9), raw_offer(2, 5, 4)]
    ordered = last_to_fail_order(offers)
    assert [o.sender.site for o in ordered] == [1, 2, 0]


def test_creation_requires_candidates():
    with pytest.raises(ApplicationError):
        choose_by_last_to_fail([])


def test_creation_is_safe_wants_every_site():
    offers = [raw_offer(0, 1, 1), raw_offer(1, 1, 1)]
    assert creation_is_safe(offers, expected_sites=2)
    assert not creation_is_safe(offers, expected_sites=3)


# ---------------------------------------------------------------------------
# Chunked transfers (over a live cluster's direct messages)
# ---------------------------------------------------------------------------


def test_chunked_transfer_moves_all_chunks_in_order():
    cluster = settled_cluster(2)
    donor, joiner = cluster.stack_at(0), cluster.stack_at(1)
    received: list = []
    receiver = ChunkReceiver(joiner, on_complete=received.extend)
    done = []
    sender = ChunkSender(donor, joiner.pid, ["a", "b", "c"], lambda: done.append(1))

    donor.app.on_direct = lambda src, p: (
        sender.on_ack(p) if isinstance(p, TAck) else None
    )
    joiner.app.on_direct = lambda src, p: (
        receiver.on_chunk(src, p) if isinstance(p, TChunk) else None
    )
    sender.start()
    cluster.run_for(30)
    assert received == ["a", "b", "c"]
    assert done == [1]
    assert sender.done


def test_transfer_time_grows_linearly_with_chunks():
    durations = {}
    for n_chunks in (2, 8):
        cluster = settled_cluster(2)
        donor, joiner = cluster.stack_at(0), cluster.stack_at(1)
        finished = []
        receiver = ChunkReceiver(joiner, on_complete=lambda _: None)
        sender = ChunkSender(
            donor, joiner.pid, list(range(n_chunks)),
            lambda: finished.append(cluster.now),
        )
        donor.app.on_direct = lambda src, p: (
            sender.on_ack(p) if isinstance(p, TAck) else None
        )
        joiner.app.on_direct = lambda src, p: (
            receiver.on_chunk(src, p) if isinstance(p, TChunk) else None
        )
        start = cluster.now
        sender.start()
        cluster.run_for(100)
        durations[n_chunks] = finished[0] - start
    assert durations[8] > 3 * durations[2] * 0.9  # ~linear in chunk count


def test_two_piece_transfer_small_arrives_first():
    from repro.core.state_transfer import TSmallPiece

    cluster = settled_cluster(2)
    donor, joiner = cluster.stack_at(0), cluster.stack_at(1)
    events = []
    receiver = ChunkReceiver(joiner, on_complete=lambda _: events.append("large"))

    def joiner_direct(src, p):
        if isinstance(p, TSmallPiece):
            events.append("small")
        elif isinstance(p, TChunk):
            receiver.on_chunk(src, p)

    transfer = TwoPieceTransfer(donor, joiner.pid, {"meta": 1}, [1, 2, 3, 4])
    donor.app.on_direct = lambda src, p: (
        transfer.sender.on_ack(p) if isinstance(p, TAck) else None
    )
    joiner.app.on_direct = joiner_direct
    transfer.start()
    cluster.run_for(60)
    assert events[0] == "small"
    assert events[-1] == "large"


def test_split_state():
    state = {"meta": 0, **{f"k{i}": i for i in range(10)}}
    small, chunks = split_state(state, {"meta"}, chunk_size=3)
    assert small == {"meta": 0}
    assert sum(len(c) for c in chunks) == 10
    assert all(len(c) <= 3 for c in chunks)


def test_split_state_empty_large_part():
    small, chunks = split_state({"meta": 1}, {"meta"}, chunk_size=4)
    assert chunks == [{}]


def test_chunk_sender_rejects_empty():
    cluster = settled_cluster(2)
    with pytest.raises(ApplicationError):
        ChunkSender(cluster.stack_at(0), cluster.stack_at(1).pid, [])
