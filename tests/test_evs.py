"""Tests for enriched views: data structures, merges, Properties 6.1-6.3."""

from __future__ import annotations

import pytest

from repro.errors import EnrichedViewError
from repro.evs.eview import EvDelta, EView, EViewStructure, Subview, SvSet
from repro.gms.view import View
from repro.trace.checks import (
    check_causal_order,
    check_structure,
    check_total_order,
)
from repro.types import ProcessId, SubviewId, SvSetId, ViewId

from tests.conftest import assert_all_properties, settled_cluster


def pids(*sites: int) -> list[ProcessId]:
    return [ProcessId(s) for s in sites]


# ---------------------------------------------------------------------------
# EViewStructure
# ---------------------------------------------------------------------------


def test_singletons_structure():
    members = frozenset(pids(0, 1, 2))
    structure = EViewStructure.singletons(1, members)
    structure.validate(members)
    assert len(structure.subviews) == 3
    assert len(structure.svsets) == 3
    for pid in members:
        assert structure.subview_of(pid).members == {pid}


def test_degenerate_structure():
    members = frozenset(pids(0, 1, 2))
    structure = EViewStructure.degenerate(1, ProcessId(0), members)
    structure.validate(members)
    assert len(structure.subviews) == 1
    assert len(structure.svsets) == 1
    assert structure.subview_of(ProcessId(2)).members == members


def test_validate_rejects_overlapping_subviews():
    sv1 = Subview(SubviewId(1, ProcessId(0), 0), frozenset(pids(0, 1)))
    sv2 = Subview(SubviewId(1, ProcessId(1), 0), frozenset(pids(1, 2)))
    ss = SvSet(SvSetId(1, ProcessId(0), 0), frozenset({sv1.sid, sv2.sid}))
    structure = EViewStructure((sv1, sv2), (ss,))
    with pytest.raises(EnrichedViewError):
        structure.validate(frozenset(pids(0, 1, 2)))


def test_validate_rejects_uncovered_members():
    sv = Subview(SubviewId(1, ProcessId(0), 0), frozenset(pids(0)))
    ss = SvSet(SvSetId(1, ProcessId(0), 0), frozenset({sv.sid}))
    structure = EViewStructure((sv,), (ss,))
    with pytest.raises(EnrichedViewError):
        structure.validate(frozenset(pids(0, 1)))


def test_validate_rejects_subview_in_two_svsets():
    sv = Subview(SubviewId(1, ProcessId(0), 0), frozenset(pids(0)))
    ss1 = SvSet(SvSetId(1, ProcessId(0), 0), frozenset({sv.sid}))
    ss2 = SvSet(SvSetId(1, ProcessId(0), 1), frozenset({sv.sid}))
    with pytest.raises(EnrichedViewError):
        EViewStructure((sv,), (ss1, ss2)).validate(frozenset(pids(0)))


def _three_singleton_structure() -> EViewStructure:
    return EViewStructure.singletons(1, frozenset(pids(0, 1, 2)))


def test_svset_merge_delta():
    structure = _three_singleton_structure()
    inputs = frozenset(ss.ssid for ss in structure.svsets)
    delta = EvDelta(1, "svset", inputs, new_svset=SvSetId(1, ProcessId(0), 1))
    merged = structure.apply(delta)
    merged.validate(frozenset(pids(0, 1, 2)))
    assert len(merged.svsets) == 1
    assert len(merged.subviews) == 3  # subviews untouched


def test_subview_merge_requires_common_svset():
    """Section 6.1: SubviewMerge has no effect if the input subviews do
    not initially belong to the same sv-set."""
    structure = _three_singleton_structure()
    inputs = frozenset(sv.sid for sv in structure.subviews[:2])
    delta = EvDelta(1, "subview", inputs, new_subview=SubviewId(1, ProcessId(0), 1))
    unchanged = structure.apply(delta)
    assert unchanged is structure


def test_subview_merge_within_svset():
    structure = _three_singleton_structure()
    all_ssids = frozenset(ss.ssid for ss in structure.svsets)
    structure = structure.apply(
        EvDelta(1, "svset", all_ssids, new_svset=SvSetId(1, ProcessId(0), 1))
    )
    sv_inputs = frozenset(sv.sid for sv in structure.subviews[:2])
    new_sid = SubviewId(1, ProcessId(0), 2)
    merged = structure.apply(EvDelta(2, "subview", sv_inputs, new_subview=new_sid))
    merged.validate(frozenset(pids(0, 1, 2)))
    assert len(merged.subviews) == 2
    merged_sv = merged.subview_by_id(new_sid)
    assert len(merged_sv.members) == 2
    # The merged subview stays in the enclosing sv-set.
    assert merged.svset_of_subview(new_sid).ssid == SvSetId(1, ProcessId(0), 1)


def test_merge_with_unknown_inputs_is_noop():
    structure = _three_singleton_structure()
    ghost = frozenset({SubviewId(9, ProcessId(9), 9)})
    assert structure.apply(
        EvDelta(1, "subview", ghost, new_subview=SubviewId(1, ProcessId(0), 5))
    ) is structure


def test_svset_members_query():
    structure = _three_singleton_structure()
    all_ssids = frozenset(ss.ssid for ss in structure.svsets)
    new_id = SvSetId(1, ProcessId(0), 1)
    merged = structure.apply(EvDelta(1, "svset", all_ssids, new_svset=new_id))
    assert merged.svset_members(new_id) == frozenset(pids(0, 1, 2))


def test_eview_accessors():
    members = frozenset(pids(0, 1))
    view = View(ViewId(1, ProcessId(0)), members)
    eview = EView(view, EViewStructure.singletons(1, members))
    assert eview.members == members
    assert eview.view_id == view.view_id
    assert eview.subview_of(ProcessId(1)).members == {ProcessId(1)}
    assert eview.svset_of(ProcessId(0)) is not None


# ---------------------------------------------------------------------------
# Live merge calls and properties (through clusters)
# ---------------------------------------------------------------------------


def test_fresh_join_appears_as_singleton_subview_in_singleton_svset():
    cluster = settled_cluster(3)
    cluster.join(3)
    assert cluster.settle(timeout=500)
    eview = cluster.stack_at(0).eview
    joiner = cluster.stack_at(3).pid
    assert eview.subview_of(joiner).members == {joiner}
    assert eview.structure.svset_of(joiner).subviews == {
        eview.subview_of(joiner).sid
    }


def test_sv_set_merge_then_subview_merge_figure3():
    """The Figure 3 sequence: one SV-SetMerge then one SubviewMerge,
    both totally ordered within the view."""
    cluster = settled_cluster(4)
    stack = cluster.stack_at(0)
    before = stack.eview
    stack.sv_set_merge([ss.ssid for ss in before.structure.svsets])
    cluster.run_for(15)
    mid = stack.eview
    assert mid.seq == 1
    assert len(mid.structure.svsets) == 1
    stack.subview_merge([sv.sid for sv in mid.structure.subviews[:2]])
    cluster.run_for(15)
    after = cluster.stack_at(3).eview  # check a non-coordinator
    assert after.seq == 2
    sizes = sorted(len(sv.members) for sv in after.structure.subviews)
    assert sizes == [1, 1, 2]
    assert check_total_order(cluster.recorder).ok
    assert check_causal_order(cluster.recorder).ok


def test_eview_changes_are_identical_at_all_members():
    cluster = settled_cluster(5)
    stack = cluster.stack_at(2)
    stack.sv_set_merge([ss.ssid for ss in stack.eview.structure.svsets])
    cluster.run_for(15)
    snapshots = {
        tuple(s.eview.structure.as_tuples()[1]) for s in cluster.live_stacks()
    }
    assert len(snapshots) == 1


def test_structure_projection_across_partition():
    """Figure 2: subview/sv-set groupings survive the view changes."""
    cluster = settled_cluster(4)
    stack = cluster.stack_at(0)
    stack.sv_set_merge([ss.ssid for ss in stack.eview.structure.svsets])
    cluster.run_for(15)
    stack.subview_merge([sv.sid for sv in stack.eview.structure.subviews])
    cluster.run_for(15)
    assert len(stack.eview.structure.subviews) == 1
    cluster.partition([[0, 1], [2, 3]])
    assert cluster.settle(timeout=500)
    left = cluster.stack_at(0).eview
    assert len(left.structure.subviews) == 1
    assert left.subview_of(cluster.stack_at(0).pid).members == left.members
    cluster.heal()
    assert cluster.settle(timeout=500)
    merged = cluster.stack_at(0).eview
    # The two sides arrive as two intact subviews, not four singletons.
    assert len(merged.structure.subviews) == 2
    assert {len(sv.members) for sv in merged.structure.subviews} == {2}
    assert check_structure(cluster.recorder).ok
    assert_all_properties(cluster.recorder)


def test_merge_requests_from_non_coordinator_are_sequenced():
    cluster = settled_cluster(3)
    follower = cluster.stack_at(2)
    follower.sv_set_merge([ss.ssid for ss in follower.eview.structure.svsets])
    cluster.run_for(15)
    assert len(cluster.stack_at(0).eview.structure.svsets) == 1


def test_concurrent_merge_requests_get_distinct_sequence_numbers():
    cluster = settled_cluster(4)
    s1, s2 = cluster.stack_at(1), cluster.stack_at(2)
    ssids = [ss.ssid for ss in s1.eview.structure.svsets]
    s1.sv_set_merge(ssids[:2])
    s2.sv_set_merge(ssids[2:])
    cluster.run_for(20)
    assert cluster.stack_at(0).eview.seq == 2
    assert check_total_order(cluster.recorder).ok


def test_stale_merge_request_from_old_view_ignored():
    cluster = settled_cluster(3)
    stack = cluster.stack_at(0)
    old_ssids = [ss.ssid for ss in stack.eview.structure.svsets]
    cluster.crash(2)
    assert cluster.settle(timeout=500)
    seq_before = stack.eview.seq
    stack.sv_set_merge(old_ssids)  # ids refer to departed structure
    cluster.run_for(20)
    # The request may apply (ids projected) or no-op, but never crashes
    # nor violates the properties.
    assert stack.eview.seq in (seq_before, seq_before + 1)
    assert_all_properties(cluster.recorder)


def test_messages_gated_on_eview_changes():
    """Property 6.2 operationally: a message multicast after an e-view
    change is never delivered before that change at any member."""
    cluster = settled_cluster(4)
    stack = cluster.stack_at(0)
    stack.sv_set_merge([ss.ssid for ss in stack.eview.structure.svsets])
    stack.multicast("after-change")  # sent in the same scheduler turn
    cluster.run_for(20)
    assert check_causal_order(cluster.recorder).ok


def test_format_structure_notation():
    from repro.evs.render import format_eview, format_structure

    cluster = settled_cluster(3)
    stack = cluster.stack_at(0)
    text = format_structure(stack.eview.structure)
    assert text.count("[") == 3 and text.count("{") == 3  # singletons
    stack.sv_set_merge([ss.ssid for ss in stack.eview.structure.svsets])
    cluster.run_for(15)
    text = format_structure(stack.eview.structure)
    assert text.count("[") == 1 and text.count("{") == 3
    flat = format_structure(stack.eview.structure, with_svsets=False)
    assert "[" not in flat
    assert "seq=1" in format_eview(stack.eview)
