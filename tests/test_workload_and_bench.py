"""Tests for workload generators, canned scenarios and the bench harness."""

from __future__ import annotations

import pytest

from repro.bench.harness import Table, run_with_schedule
from repro.net.faults import Crash, Heal, Join, Partition, Recover
from repro.workload.generator import RandomFaultGenerator
from repro.workload.scenarios import (
    cascade_scenario,
    clean_scenario,
    figure2_scenario,
    join_wave_scenario,
    partition_heal_scenario,
    total_failure_scenario,
)

from tests.conftest import assert_all_properties


# ---------------------------------------------------------------------------
# Scenarios
# ---------------------------------------------------------------------------


def test_clean_scenario_is_empty():
    assert clean_scenario().actions == []


def test_partition_heal_scenario_shape():
    schedule = partition_heal_scenario(6, split_at=100, heal_at=300, minority=2)
    kinds = [type(a).__name__ for a in schedule.actions]
    assert kinds == ["Partition", "Heal"]
    partition = schedule.actions[0]
    assert partition.groups == ((0, 1, 2, 3), (4, 5))


def test_cascade_scenario_validates():
    schedule = cascade_scenario(5, crashes=3)
    schedule.validate()
    assert sum(isinstance(a, Crash) for a in schedule.actions) == 3
    assert sum(isinstance(a, Recover) for a in schedule.actions) == 3


def test_total_failure_scenario_crashes_everyone_then_recovers():
    schedule = total_failure_scenario(4)
    schedule.validate()
    crashes = [a for a in schedule.actions if isinstance(a, Crash)]
    recovers = [a for a in schedule.actions if isinstance(a, Recover)]
    assert {a.site for a in crashes} == {0, 1, 2, 3}
    assert {a.site for a in recovers} == {0, 1, 2, 3}
    assert max(a.time for a in crashes) < min(a.time for a in recovers)


def test_join_wave_scenario_sites_are_new():
    schedule = join_wave_scenario(3, joiners=2)
    joins = [a for a in schedule.actions if isinstance(a, Join)]
    assert [a.site for a in joins] == [3, 4]


def test_figure2_scenario():
    schedule = figure2_scenario()
    assert isinstance(schedule.actions[0], Partition)
    assert isinstance(schedule.actions[1], Heal)


# ---------------------------------------------------------------------------
# Random generator
# ---------------------------------------------------------------------------


def test_generator_is_deterministic_per_seed():
    a = RandomFaultGenerator(n_sites=5, seed=42).generate()
    b = RandomFaultGenerator(n_sites=5, seed=42).generate()
    assert a.actions == b.actions


def test_generator_different_seeds_differ():
    a = RandomFaultGenerator(n_sites=5, seed=1).generate()
    b = RandomFaultGenerator(n_sites=5, seed=2).generate()
    assert a.actions != b.actions


@pytest.mark.parametrize("seed", range(8))
def test_generated_schedules_are_valid(seed):
    schedule = RandomFaultGenerator(n_sites=6, seed=seed).generate()
    schedule.validate()  # raises on up/down inconsistencies


def test_generator_ends_with_everyone_up_and_healed():
    for seed in range(5):
        schedule = RandomFaultGenerator(n_sites=4, seed=seed).generate()
        down: set[int] = set()
        partitioned = False
        for action in sorted(schedule.actions, key=lambda a: a.time):
            if isinstance(action, Crash):
                down.add(action.site)
            elif isinstance(action, Recover):
                down.discard(action.site)
            elif isinstance(action, Partition):
                partitioned = True
            elif isinstance(action, Heal):
                partitioned = False
        assert not down
        assert not partitioned


def test_generator_respects_max_down_fraction():
    gen = RandomFaultGenerator(n_sites=4, seed=0, max_down_fraction=0.5)
    schedule = gen.generate()
    down: set[int] = set()
    for action in sorted(schedule.actions, key=lambda a: a.time):
        if isinstance(action, Crash):
            down.add(action.site)
            assert len(down) <= 2
        elif isinstance(action, Recover):
            down.discard(action.site)


# ---------------------------------------------------------------------------
# Bench harness
# ---------------------------------------------------------------------------


def test_table_renders_aligned():
    table = Table("demo", ["name", "value"])
    table.add("alpha", 1)
    table.add("b", 123.456)
    text = table.render()
    assert "demo" in text
    assert "alpha" in text
    assert "123.46" in text


def test_table_rejects_bad_rows():
    table = Table("demo", ["a", "b"])
    with pytest.raises(ValueError):
        table.add(1)


def test_run_with_schedule_end_to_end():
    schedule = partition_heal_scenario(4, split_at=120, heal_at=280, minority=1)
    cluster = run_with_schedule(4, schedule, tail=250)
    assert cluster.is_settled()
    assert_all_properties(cluster.recorder)


# ---------------------------------------------------------------------------
# Asymmetric generation and weight validation
# ---------------------------------------------------------------------------


def test_generator_rejects_unknown_weight_keys():
    with pytest.raises(ValueError, match="unknown fault weights"):
        RandomFaultGenerator(n_sites=4, weights={"crash": 1.0, "crsh": 2.0})


def test_asymmetric_flag_enables_oneway_cuts():
    from repro.net.faults import OneWayCut, OneWayHeal
    from repro.workload.generator import DEFAULT_ONEWAY_WEIGHT

    gen = RandomFaultGenerator(n_sites=5, seed=0, asymmetric=True)
    assert gen.weights["oneway"] == DEFAULT_ONEWAY_WEIGHT
    cuts = 0
    for seed in range(6):
        schedule = RandomFaultGenerator(
            n_sites=5, seed=seed, asymmetric=True
        ).generate()
        schedule.validate()
        cut_actions = [a for a in schedule.actions if isinstance(a, OneWayCut)]
        cuts += len(cut_actions)
        # Every cut is eventually repaired: matching OneWayHeal or a
        # trailing Heal (which clears one-way cuts too).
        if cut_actions:
            healed = {
                (a.src, a.dst)
                for a in schedule.actions
                if isinstance(a, OneWayHeal)
            }
            last_heal = max(
                (a.time for a in schedule.actions if isinstance(a, Heal)),
                default=None,
            )
            for cut in cut_actions:
                assert (cut.src, cut.dst) in healed or (
                    last_heal is not None and last_heal > cut.time
                )
    assert cuts > 0  # the flag actually changes the mix


def test_asymmetric_off_by_default_and_explicit_weight_wins():
    schedule = RandomFaultGenerator(n_sites=5, seed=0).generate()
    from repro.net.faults import OneWayCut

    assert not any(isinstance(a, OneWayCut) for a in schedule.actions)
    gen = RandomFaultGenerator(
        n_sites=5, seed=0, asymmetric=True, weights={"oneway": 2.5}
    )
    assert gen.weights["oneway"] == 2.5
