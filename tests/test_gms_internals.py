"""Targeted tests of view-agreement branches that only fire under
specific races: nacks/abdication, round timeouts, stale installs,
propose expansion, incarnation filtering."""

from __future__ import annotations

from repro.gms.messages import VcInstall, VcNack, VcPrepare, VcPropose
from repro.runtime.cluster import Cluster, ClusterConfig
from repro.types import ProcessId

from tests.conftest import assert_all_properties, settled_cluster


def test_prepare_from_larger_coordinator_is_nacked():
    """A prepare from a non-least candidate draws a VcNack pointing at
    the better coordinator."""
    cluster = settled_cluster(3)
    p2 = cluster.stack_at(2)
    member = cluster.stack_at(1)
    sent: list = []
    original_send = member.send
    member.send = lambda dst, payload: (sent.append((dst, payload)), original_send(dst, payload))
    prepare = VcPrepare((p2.pid, 99), frozenset(cluster.live_pids()))
    member.membership.on_prepare(p2.pid, prepare)
    nacks = [p for _, p in sent if isinstance(p, VcNack)]
    assert nacks and nacks[0].better == cluster.stack_at(0).pid


def test_nack_makes_coordinator_abdicate():
    cluster = settled_cluster(3)
    p1 = cluster.stack_at(1)
    # Make p1 coordinate a round (bypassing the least-id rule by hand).
    p1.membership._round_counter += 1
    from repro.gms.membership import _Round

    rid = (p1.pid, p1.membership._round_counter)
    p1.membership._round = _Round(rid, frozenset(cluster.live_pids()))
    sent: list = []
    original_send = p1.send
    p1.send = lambda dst, payload: (sent.append((dst, payload)), original_send(dst, payload))
    p1.membership.on_nack(
        cluster.stack_at(2).pid, VcNack(rid, cluster.stack_at(0).pid)
    )
    assert p1.membership._round is None  # abdicated
    proposals = [p for _, p in sent if isinstance(p, VcPropose)]
    assert proposals  # handed the membership estimate to the better one


def test_stale_install_is_ignored():
    cluster = settled_cluster(3)
    member = cluster.stack_at(1)
    current = member.view
    from repro.evs.eview import EViewStructure
    from repro.gms.view import View
    from repro.types import ViewId

    bogus_view = View(
        ViewId(current.epoch + 5, member.pid), frozenset({member.pid})
    )
    structure = EViewStructure.singletons(bogus_view.epoch, bogus_view.members)
    install = VcInstall((member.pid, 12345), bogus_view, structure, {})
    member.membership.on_install(member.pid, install)
    assert member.view == current  # round id never flushed: rejected


def test_regressing_install_is_ignored_even_for_flushed_round():
    cluster = settled_cluster(3)
    member = cluster.stack_at(1)
    current = member.view
    from repro.evs.eview import EViewStructure
    from repro.gms.view import View
    from repro.types import ViewId

    member.membership._flushed_round = (member.pid, 7)
    old_view = View(ViewId(1, member.pid), frozenset({member.pid}))
    structure = EViewStructure.singletons(1, old_view.members)
    install = VcInstall((member.pid, 7), old_view, structure, {})
    member.membership.on_install(member.pid, install)
    assert member.view == current
    member.membership._flushed_round = None


def test_round_timeout_drops_silent_members():
    """If a member never answers prepares, the coordinator re-runs the
    round without it rather than blocking forever."""
    config = ClusterConfig(seed=5)
    cluster = Cluster(3, config=config)
    assert cluster.settle(timeout=500)
    # Mute site 2's membership handling but keep its heartbeats: the
    # failure detector keeps believing in it, flush replies never come.
    mute = cluster.stack_at(2)
    mute.membership.on_prepare = lambda src, msg: None  # type: ignore[method-assign]
    cluster.join(3)
    # Convergence: the coordinator eventually gives up on site 2 for the
    # round and installs something that includes the joiner.
    deadline = cluster.now + 900
    while cluster.now < deadline:
        cluster.run_for(25)
        members = {p.site for p in cluster.stack_at(0).view.members}
        if 3 in members:
            break
    assert 3 in {p.site for p in cluster.stack_at(0).view.members}
    assert_all_properties(cluster.recorder)


def test_propose_forwarding_to_better_candidate():
    cluster = settled_cluster(3)
    p1 = cluster.stack_at(1)
    sent: list = []
    original_send = p1.send
    p1.send = lambda dst, payload: (sent.append((dst, payload)), original_send(dst, payload))
    proposal = VcPropose(cluster.stack_at(2).pid, frozenset(cluster.live_pids()))
    p1.membership.on_propose(cluster.stack_at(2).pid, proposal)
    forwarded = [
        (dst, p) for dst, p in sent if isinstance(p, VcPropose)
    ]
    assert forwarded and forwarded[0][0] == cluster.stack_at(0).pid


def test_stale_incarnation_heartbeats_ignored():
    cluster = settled_cluster(3)
    cluster.crash(2)
    assert cluster.settle(timeout=500)
    fresh = cluster.recover(2)
    assert cluster.settle(timeout=500)
    observer = cluster.stack_at(0)
    # A late message from the dead incarnation must not resurrect it.
    observer.fd.heard(ProcessId(2, 0))
    assert ProcessId(2, 0) not in observer.fd.reachable()
    assert fresh.pid in observer.fd.reachable()


def test_min_initiate_gap_rate_limits_rounds():
    cluster = settled_cluster(3)
    membership = cluster.stack_at(0).membership
    first = membership._last_initiate
    membership._initiate()
    membership._initiate()  # immediately again: suppressed
    assert membership._last_initiate >= first


def test_views_installed_counter():
    cluster = settled_cluster(3)
    count = cluster.stack_at(0).membership.views_installed
    assert count >= 2  # singleton bootstrap + merge
    cluster.crash(2)
    assert cluster.settle(timeout=500)
    assert cluster.stack_at(0).membership.views_installed > count
