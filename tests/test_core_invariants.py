"""Tests for the invariant monitor and its stock predicates."""

from __future__ import annotations

import pytest

from repro.apps.lock_manager import MajorityLockManager
from repro.apps.replicated_db import ParallelLookupDatabase
from repro.apps.replicated_file import ReplicatedFile
from repro.core.invariants import (
    InvariantMonitor,
    at_most_one_lock_holder,
    replicas_converged,
    responsibility_exact,
)
from repro.errors import InvariantViolation
from repro.runtime.cluster import Cluster, ClusterConfig


def test_monitor_records_samples_and_stays_clean():
    cluster = Cluster(3, config=ClusterConfig(seed=0))
    monitor = (
        InvariantMonitor(cluster, interval=10.0)
        .declare("always-true", lambda c: True)
        .start()
    )
    cluster.run_for(100)
    assert monitor.samples("always-true") >= 9
    monitor.assert_clean()


def test_monitor_captures_violations_with_detail():
    cluster = Cluster(2, config=ClusterConfig(seed=0))
    flag = {"bad": False}
    monitor = (
        InvariantMonitor(cluster, interval=5.0)
        .declare("flag-off", lambda c: not flag["bad"])
        .start()
    )
    cluster.run_for(20)
    flag["bad"] = True
    cluster.run_for(20)
    assert monitor.violations
    assert monitor.violations[0].name == "flag-off"
    with pytest.raises(InvariantViolation):
        monitor.assert_clean()


def test_monitor_assertion_error_counts_as_violation():
    cluster = Cluster(2, config=ClusterConfig(seed=0))

    def angry(c):
        assert False, "boom"

    monitor = InvariantMonitor(cluster, interval=5.0).declare("angry", angry).start()
    cluster.run_for(10)
    assert monitor.violations
    assert "boom" in str(monitor.violations[0])


def test_settled_only_predicates_skip_turbulence():
    cluster = Cluster(4, config=ClusterConfig(seed=0))
    monitor = (
        InvariantMonitor(cluster, interval=5.0)
        .declare("settled-ok", lambda c: c.is_settled(), settled_only=True)
        .start()
    )
    cluster.run_for(50)
    cluster.partition([[0, 1], [2, 3]])
    cluster.run_for(60)
    cluster.heal()
    cluster.run_for(100)
    monitor.assert_clean()  # never sampled while unsettled


def test_lock_mutual_exclusion_predicate_live():
    cluster = Cluster(
        5,
        app_factory=lambda pid: MajorityLockManager(range(5)),
        config=ClusterConfig(seed=1),
    )
    monitor = (
        InvariantMonitor(cluster, interval=7.0)
        .declare("mutex", at_most_one_lock_holder)
        .start()
    )
    assert cluster.settle(timeout=500)
    cluster.run_for(150)
    cluster.apps[1].acquire()
    cluster.run_for(50)
    cluster.partition([[0, 1, 2], [3, 4]])
    cluster.settle(timeout=500)
    cluster.run_for(100)
    cluster.heal()
    cluster.settle(timeout=500)
    cluster.run_for(150)
    monitor.assert_clean()
    assert monitor.samples("mutex") > 10


def test_replica_convergence_predicate_live():
    votes = {s: 1 for s in range(4)}
    cluster = Cluster(
        4,
        app_factory=lambda pid: ReplicatedFile(votes),
        config=ClusterConfig(seed=2),
    )
    monitor = (
        InvariantMonitor(cluster, interval=9.0)
        .declare(
            "convergence",
            replicas_converged(lambda app: app.listing()),
            settled_only=True,
        )
        .start()
    )
    assert cluster.settle(timeout=500)
    cluster.run_for(150)
    cluster.apps[0].write("f", "v1")
    cluster.run_for(100)
    monitor.assert_clean()


def test_responsibility_predicate_live():
    cluster = Cluster(
        4,
        app_factory=lambda pid: ParallelLookupDatabase({"all": lambda k, v: True}),
        config=ClusterConfig(seed=3),
    )
    monitor = (
        InvariantMonitor(cluster, interval=9.0)
        .declare("slices", responsibility_exact, settled_only=True)
        .start()
    )
    assert cluster.settle(timeout=500)
    cluster.run_for(200)
    cluster.crash(3)
    cluster.settle(timeout=500)
    cluster.run_for(200)
    monitor.assert_clean()
    assert monitor.samples("slices") > 5


def test_assert_eventually():
    cluster = Cluster(2, config=ClusterConfig(seed=0))
    monitor = InvariantMonitor(cluster)
    cluster.settle(timeout=400)
    monitor.assert_eventually("settled", lambda c: c.is_settled())
    with pytest.raises(InvariantViolation):
        monitor.assert_eventually("impossible", lambda c: False)


def test_unknown_invariant_name_raises():
    cluster = Cluster(2, config=ClusterConfig(seed=0))
    monitor = InvariantMonitor(cluster)
    with pytest.raises(KeyError):
        monitor.samples("nope")
