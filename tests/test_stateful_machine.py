"""Hypothesis stateful testing of the whole stack.

A rule-based state machine drives a live cluster through arbitrary
interleavings of crashes, recoveries, partitions, repairs, multicasts
and time — and after every command asserts the paper's safety
properties on the trace so far.  Shrinking then minimises any failing
command sequence automatically.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.runtime.cluster import Cluster, ClusterConfig
from repro.trace.checks import (
    check_integrity,
    check_structure,
    check_total_order,
    check_uniqueness,
)

N_SITES = 3


class StackMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        self.cluster: Cluster | None = None
        self.commands = 0

    @initialize(seed=st.integers(min_value=0, max_value=2**16))
    def build(self, seed: int) -> None:
        self.cluster = Cluster(N_SITES, config=ClusterConfig(seed=seed))
        self.cluster.run_for(30)

    # -- commands ------------------------------------------------------------

    @rule(site=st.integers(0, N_SITES - 1))
    def crash(self, site: int) -> None:
        self.cluster.crash(site)
        self.commands += 1

    @rule(site=st.integers(0, N_SITES - 1))
    def recover(self, site: int) -> None:
        stack = self.cluster.stacks.get(site)
        if stack is not None and not stack.alive:
            self.cluster.recover(site)
        self.commands += 1

    @rule(cut=st.integers(1, N_SITES - 1))
    def partition(self, cut: int) -> None:
        left = tuple(range(cut))
        right = tuple(range(cut, N_SITES))
        self.cluster.partition([left, right])
        self.commands += 1

    @rule()
    def heal(self) -> None:
        self.cluster.heal()
        self.commands += 1

    @rule(site=st.integers(0, N_SITES - 1), payload=st.integers(0, 99))
    def multicast(self, site: int, payload: int) -> None:
        stack = self.cluster.stacks.get(site)
        if stack is not None and stack.alive and not stack.is_flushing:
            stack.multicast(("sm", payload))
        self.commands += 1

    @rule(site=st.integers(0, N_SITES - 1))
    def merge_svsets(self, site: int) -> None:
        stack = self.cluster.stacks.get(site)
        if stack is not None and stack.alive and stack.eview is not None:
            ssids = [ss.ssid for ss in stack.eview.structure.svsets]
            if len(ssids) >= 2:
                stack.sv_set_merge(ssids[:2])
        self.commands += 1

    @rule(duration=st.floats(min_value=1.0, max_value=60.0))
    def advance(self, duration: float) -> None:
        self.cluster.run_for(duration)
        self.commands += 1

    # -- safety, continuously ---------------------------------------------------

    @invariant()
    def safety_properties_hold(self) -> None:
        if self.cluster is None:
            return
        rec = self.cluster.recorder
        for report in (
            check_uniqueness(rec),
            check_integrity(rec),
            check_total_order(rec),
            check_structure(rec),
        ):
            assert report.ok, f"{report.name}: {report.violations[:3]}"

    def teardown(self) -> None:
        # End-of-sequence liveness probe: once faults stop and the
        # network heals, the group must converge again.
        if self.cluster is not None and self.commands:
            self.cluster.heal()
            for site in range(N_SITES):
                stack = self.cluster.stacks.get(site)
                if stack is not None and not stack.alive:
                    self.cluster.recover(site)
            assert self.cluster.settle(timeout=900), self.cluster.views()


StackMachine.TestCase.settings = settings(
    max_examples=12, stateful_step_count=12, deadline=None
)
TestStackMachine = StackMachine.TestCase
