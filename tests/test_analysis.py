"""Tests for the shared-state problem log analysis."""

from __future__ import annotations

from repro.analysis import classification_score, diagnose_run
from repro.apps.lock_manager import MajorityLockManager
from repro.core.shared_state import Problem
from repro.runtime.cluster import Cluster, ClusterConfig


def lock_cluster(seed: int = 0) -> Cluster:
    cluster = Cluster(
        5,
        app_factory=lambda pid: MajorityLockManager(range(5)),
        config=ClusterConfig(seed=seed),
    )
    assert cluster.settle(timeout=500)
    cluster.run_for(200)
    return cluster


def majority(members) -> bool:
    return 2 * len(members) > 5


def test_partition_heal_produces_transfer_diagnoses():
    cluster = lock_cluster()
    cluster.partition([[0, 1, 2], [3, 4]])
    assert cluster.settle(timeout=500)
    cluster.run_for(150)
    cluster.heal()
    assert cluster.settle(timeout=500)
    cluster.run_for(200)
    entries = diagnose_run(cluster.recorder, majority)
    assert entries
    transfer_entries = [
        e for e in entries if Problem.STATE_TRANSFER in e.truth.problems
    ]
    assert transfer_entries
    # The enriched verdict nails them; flat never does.
    for entry in transfer_entries:
        assert entry.enriched_exact
        assert not entry.flat_exact
        assert len(entry.flat_candidates) >= 2


def test_every_entry_has_all_three_classifications():
    cluster = lock_cluster(seed=1)
    cluster.crash(4)
    assert cluster.settle(timeout=500)
    cluster.recover(4)
    assert cluster.settle(timeout=500)
    cluster.run_for(200)
    for entry in diagnose_run(cluster.recorder, majority):
        assert entry.truth.label
        assert entry.flat_candidates
        assert entry.enriched.label
        assert entry.transition in ("Repair", "Reconfigure")


def test_classification_score_shape():
    cluster = lock_cluster(seed=2)
    cluster.partition([[0, 1, 2], [3, 4]])
    assert cluster.settle(timeout=500)
    cluster.heal()
    assert cluster.settle(timeout=500)
    cluster.run_for(200)
    entries = diagnose_run(cluster.recorder, majority)
    score = classification_score(entries)
    assert score["events"] == len(entries)
    assert 0.0 <= score["flat_exact"] <= score["enriched_exact"] <= 1.0
    assert score["avg_flat_candidates"] >= 1.0


def test_empty_log_scores_cleanly():
    score = classification_score([])
    assert score["events"] == 0
    assert score["enriched_exact"] == 0.0
