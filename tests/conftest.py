"""Shared fixtures and assertion helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.runtime.cluster import Cluster, ClusterConfig
from repro.trace.checks import check_enriched_views, check_view_synchrony
from repro.trace.recorder import TraceRecorder


def assert_all_properties(recorder: TraceRecorder) -> None:
    """Assert Properties 2.1-2.3 and 6.1-6.3 hold on a recorded trace."""
    for report in check_view_synchrony(recorder) + check_enriched_views(recorder):
        assert report.ok, f"{report.name}: {report.violations[:5]}"


def settled_cluster(
    n_sites: int,
    app_factory=None,
    seed: int = 0,
    timeout: float = 500.0,
) -> Cluster:
    """A cluster that has bootstrapped into one agreed view."""
    cluster = Cluster(
        n_sites, app_factory=app_factory, config=ClusterConfig(seed=seed)
    )
    assert cluster.settle(timeout=timeout), cluster.views()
    return cluster


@pytest.fixture
def cluster3() -> Cluster:
    return settled_cluster(3)


@pytest.fixture
def cluster5() -> Cluster:
    return settled_cluster(5)
