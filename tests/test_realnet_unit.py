"""Socket-free realnet units: ports conformance, codec, wall clock.

These run in the default (tier-1) lane — no sockets, sub-second wall
time.  The loopback smoke tests that exercise real TCP live in
``tests/realnet/`` behind the ``realnet`` marker.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import CodecError
from repro.evs.eview import EvDelta, EViewStructure
from repro.evs.messages import EvChange, EvReq
from repro.fd.heartbeat import Heartbeat
from repro.gms.messages import PredecessorPlan, VcFlush, VcInstall, VcPrepare
from repro.gms.view import View
from repro.net.network import Network
from repro.net.topology import Topology
from repro.ports import NetworkPort, SchedulerPort
from repro.realnet.codec import (
    MAX_FRAME_BYTES,
    decode_frame_body,
    decode_value,
    encode_frame,
    encode_value,
    registered_payloads,
)
from repro.realnet.wallclock import WallClockScheduler
from repro.sim.rng import RngStreams
from repro.sim.scheduler import Scheduler
from repro.types import Message, MessageId, ProcessId, SubviewId, SvSetId, ViewId
from repro.vsync.stability import StabilityReport
from repro.vsync.stack import DirectPayload, SubviewScoped


# ---------------------------------------------------------------------------
# Ports: both backends satisfy the same explicit contracts
# ---------------------------------------------------------------------------


def test_sim_scheduler_satisfies_scheduler_port():
    assert isinstance(Scheduler(), SchedulerPort)


def test_wallclock_scheduler_satisfies_scheduler_port():
    async def check():
        assert isinstance(WallClockScheduler(), SchedulerPort)

    asyncio.run(check())


def test_sim_network_satisfies_network_port():
    network = Network(Scheduler(), Topology(range(2)), RngStreams(0))
    assert isinstance(network, NetworkPort)


def test_real_network_satisfies_network_port():
    from repro.realnet.network import RealNetwork

    async def check():
        network = RealNetwork(WallClockScheduler(), 0, {})
        assert isinstance(network, NetworkPort)

    asyncio.run(check())


# ---------------------------------------------------------------------------
# Codec: every wire payload round-trips
# ---------------------------------------------------------------------------


def _pid(site: int, inc: int = 0) -> ProcessId:
    return ProcessId(site, inc)


def _sample_payloads():
    p0, p1, p2 = _pid(0), _pid(1), _pid(2, 3)
    vid = ViewId(4, p0)
    view = View(vid, frozenset({p0, p1, p2}))
    structure = EViewStructure.singletons(4, view.members)
    delta = EvDelta(
        seq=1,
        kind="svset",
        inputs=frozenset({SvSetId(4, p0, 0), SvSetId(4, p1, 0)}),
        new_svset=SvSetId(4, p0, 1),
    )
    msg = Message(MessageId(p1, vid, 7), payload={"op": "put", "k": [1, 2]}, eview_seq=2)
    return [
        p2,
        vid,
        view,
        structure,
        delta,
        msg,
        Heartbeat(p1, vid, last_seqno=9, eview_seq=2),
        VcPrepare((p0, 5), frozenset({p0, p1})),
        VcFlush(
            round_id=(p0, 5),
            sender=p1,
            view_id=vid,
            max_epoch=4,
            received=(msg,),
            eview_seq=2,
            structure=structure,
            evlog=(delta,),
            reachable=frozenset({p0, p1}),
        ),
        VcInstall(
            round_id=(p0, 5),
            view=view,
            structure=structure,
            predecessors={vid: PredecessorPlan(messages=(msg,), evlog=(delta,), eview_seq=2)},
        ),
        EvReq(p1, vid, "subview", frozenset({SubviewId(4, p0, 0)})),
        EvChange(vid, delta),
        StabilityReport(vid, p1, ((p0, 3), (p1, 9))),
        DirectPayload({"blob": "x" * 10}),
        SubviewScoped(frozenset({p0, p1}), ["nested", {"deep": (1, 2.5)}]),
    ]


@pytest.mark.parametrize("payload", _sample_payloads(), ids=lambda p: type(p).__name__)
def test_codec_roundtrip(payload):
    encoded = encode_value(payload)
    decoded = decode_value(encoded)
    assert decoded == payload
    assert type(decoded) is type(payload)


def test_codec_roundtrip_through_json_frame():
    payload = _sample_payloads()[9]  # VcInstall: the deepest nesting
    frame = encode_frame({"k": "msg", "p": encode_value(payload)})
    body = decode_frame_body(frame[4:])
    assert decode_value(body["p"]) == payload


def test_codec_scalar_and_container_tags():
    value = {
        "ints": (1, -2, 0),
        "floats": [1.5, float("inf"), float("-inf")],
        "set": {1, 2},
        "none": None,
        ("tuple", "key"): frozenset({"a"}),
    }
    decoded = decode_value(encode_value(value))
    assert decoded["ints"] == (1, -2, 0)
    assert decoded["floats"][1] == float("inf")
    assert decoded["set"] == {1, 2}
    assert decoded[("tuple", "key")] == frozenset({"a"})
    nan = decode_value(encode_value(float("nan")))
    assert nan != nan  # NaN survives the trip as NaN


def test_codec_int_float_distinction_survives():
    assert decode_value(encode_value(3)) == 3
    assert isinstance(decode_value(encode_value(3)), int)
    assert isinstance(decode_value(encode_value(3.0)), float)


def test_codec_rejects_unregistered_dataclass():
    from dataclasses import dataclass

    @dataclass(frozen=True)
    class NotOnTheWire:
        x: int = 1

    with pytest.raises(CodecError):
        encode_value(NotOnTheWire())


def test_codec_rejects_unknown_type_tag_and_unknown_fields():
    with pytest.raises(CodecError):
        decode_value({"__c__": "EvilClass", "f": {}})
    with pytest.raises(CodecError):
        decode_value({"__c__": "ProcessId", "f": {"site": 0, "bogus": 1}})
    with pytest.raises(CodecError):
        decode_value({"untagged": 1})


def test_codec_rejects_arbitrary_objects():
    with pytest.raises(CodecError):
        encode_value(object())


def test_frame_cap_enforced():
    with pytest.raises(CodecError):
        encode_frame({"p": "x" * (MAX_FRAME_BYTES + 1)})


def test_registry_covers_the_stack_vocabulary():
    names = set(registered_payloads())
    for required in (
        "Heartbeat", "Message", "VcPropose", "VcPrepare", "VcFlush", "VcNack",
        "VcInstall", "VcAbort", "Leave", "EvReq", "EvChange", "EvRepairReq",
        "StabilityReport", "StabilityNotice", "RetransmitRequest",
        "DirectPayload", "SubviewScoped", "PredecessorPlan",
    ):
        assert required in names


# ---------------------------------------------------------------------------
# WallClockScheduler
# ---------------------------------------------------------------------------


def test_wallclock_fires_in_order_and_cancels():
    async def scenario():
        sched = WallClockScheduler()
        fired: list[str] = []
        sched.fire_after(0.02, fired.append, "b")
        sched.fire_after(0.0, fired.append, "a")
        handle = sched.after(0.01, fired.append, "cancelled")
        keep = sched.after(0.01, fired.append, "kept")
        handle.cancel()
        handle.cancel()  # idempotent
        await asyncio.sleep(0.06)
        keep.cancel()  # after firing: harmless
        assert fired == ["a", "kept", "b"]
        assert sched.events_run == 3

    asyncio.run(asyncio.wait_for(scenario(), 5))


def test_wallclock_equal_deadlines_all_fire():
    # asyncio does not promise insertion order on equal deadlines (the
    # protocols are seqno-guarded against that), but nothing may be lost.
    async def scenario():
        sched = WallClockScheduler()
        fired: list[int] = []
        for i in range(5):
            sched.fire_at(0.01, fired.append, i)
        await asyncio.sleep(0.05)
        assert sorted(fired) == [0, 1, 2, 3, 4]

    asyncio.run(asyncio.wait_for(scenario(), 5))


def test_wallclock_clamps_the_past_instead_of_raising():
    async def scenario():
        sched = WallClockScheduler()
        fired: list[str] = []
        sched.at(-100.0, fired.append, "past")
        sched.after(-5.0, fired.append, "negative-delay")
        await asyncio.sleep(0.02)
        assert sorted(fired) == ["negative-delay", "past"]

    asyncio.run(asyncio.wait_for(scenario(), 5))


def test_wallclock_contains_callback_exceptions():
    async def scenario():
        caught: list[BaseException] = []
        sched = WallClockScheduler(on_error=caught.append)
        fired: list[str] = []

        def boom():
            raise RuntimeError("protocol bug")

        sched.fire_after(0.0, boom)
        sched.fire_after(0.01, fired.append, "still-running")
        await asyncio.sleep(0.03)
        assert fired == ["still-running"]
        assert sched.errors == 1
        assert isinstance(caught[0], RuntimeError)

    asyncio.run(asyncio.wait_for(scenario(), 5))


def test_wallclock_now_advances():
    async def scenario():
        sched = WallClockScheduler()
        start = sched.now
        await asyncio.sleep(0.02)
        assert sched.now >= start + 0.015

    asyncio.run(asyncio.wait_for(scenario(), 5))
