"""Flight-recorder bounds and dump-on-violation semantics.

The black box must honor two hard guarantees:

* the ring never exceeds its byte budget, no matter the workload — a
  crash-storm simulation included;
* a tripped checker writes **exactly one** dump per distinct violation
  per recorder, however many times the violation is reported.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.obs.tracing import (
    FlightRecorder,
    SpanEvent,
    TraceDump,
    _event_cost,
    dump_on_violations,
    load_dump,
    write_dump_file,
)


def _event(i: int, name: str = "mcast.send", attrs: tuple = ()) -> SpanEvent:
    return SpanEvent(
        trace_id=i, span_id=i, parent=0, name=name, pid=f"p{i % 5}.0",
        site=i % 5, t0=float(i), t1=float(i) + 0.5, attrs=attrs,
    )


def test_append_flood_never_exceeds_budget():
    recorder = FlightRecorder("n0", "sim", budget=4096)
    for i in range(10_000):
        recorder.append(_event(i))
        assert recorder.bytes <= 4096
    assert recorder.high_water <= 4096
    assert recorder.dropped > 0
    assert len(recorder) > 0
    # FIFO eviction: the survivors are the most recent events.
    events = recorder.dump().events
    assert events[-1].span_id == 9_999
    assert [e.span_id for e in events] == sorted(e.span_id for e in events)


def test_pathological_single_event_is_dropped_whole():
    recorder = FlightRecorder("n0", "sim", budget=128)
    recorder.append(_event(1))
    kept = len(recorder)
    huge = _event(2, attrs=tuple(("k" * 50, "v" * 50) for _ in range(10)))
    assert _event_cost(huge) > 128
    recorder.append(huge)
    assert len(recorder) == kept  # the ring was not flushed for it
    assert recorder.dropped == 1


def test_zero_or_negative_budget_rejected():
    with pytest.raises(ValueError):
        FlightRecorder(budget=0)


def test_crash_storm_workload_stays_inside_budget():
    """End-to-end bound: a traced sim cluster under a crash/recover
    storm keeps its recorder inside a deliberately tiny budget."""
    from repro.ports import make_cluster

    budget = 2048
    cluster = make_cluster("sim", 4, seed=3, tracing=True, flight_budget=budget)
    try:
        cluster.settle()
        for round_no in range(6):
            cluster.crash(round_no % 4)
            cluster.settle()
            cluster.recover(round_no % 4)
            cluster.settle()
            assert cluster.flight.bytes <= budget
        assert cluster.flight.high_water <= budget
        assert cluster.flight.dropped > 0  # the storm overflowed the ring
        assert len(cluster.flight) > 0
    finally:
        cluster.close()


def test_violation_dump_fires_exactly_once_per_violation(tmp_path):
    recorder = FlightRecorder("n0", "sim", budget=4096)
    recorder.append(_event(1))
    first = recorder.violation_dump("order violated at v3", str(tmp_path))
    assert first is not None and os.path.exists(first)
    for _ in range(50):  # checker re-reports the same violation
        assert recorder.violation_dump("order violated at v3", str(tmp_path)) is None
    other = recorder.violation_dump("loss at v4", str(tmp_path))
    assert other is not None and other != first
    assert len(list(tmp_path.iterdir())) == 2
    loaded = load_dump(first)
    assert loaded.node == "n0"
    assert [e.span_id for e in loaded.events] == [1]
    with open(first, encoding="utf-8") as fh:
        assert json.load(fh)["reason"] == "order violated at v3"


def test_dump_file_roundtrip_and_format_guard(tmp_path):
    recorder = FlightRecorder("n7", "realnet", budget=4096, epoch=123.5)
    recorder.append(_event(3, attrs=(("view", "v2@p0.0"),)))
    path = str(tmp_path / "dump.json")
    write_dump_file(path, recorder.dump(), reason="on demand")
    loaded = load_dump(path)
    assert loaded == recorder.dump()
    bogus = tmp_path / "bogus.json"
    bogus.write_text('{"format": "not-a-flight-dump"}')
    with pytest.raises(ValueError):
        load_dump(str(bogus))


def test_from_dump_rehydrates_events_and_drop_count():
    recorder = FlightRecorder("site2", "realnet", budget=4096, epoch=55.0)
    for i in range(10):
        recorder.append(_event(i))
    recorder.dropped = 4  # pretend the child ring overflowed earlier
    twin = FlightRecorder.from_dump(recorder.dump())
    assert twin.dump() == recorder.dump()
    assert twin.node == "site2" and twin.epoch == 55.0
    assert twin.dropped == 4


class _FakeCluster:
    def __init__(self, recorders):
        self._recorders = recorders

    def flight_recorders(self):
        return self._recorders


def test_dump_on_violations_writes_per_recorder_and_violation(tmp_path):
    recorders = [FlightRecorder(f"n{i}", "sim", budget=4096) for i in range(2)]
    for recorder in recorders:
        recorder.append(_event(1))
    cluster = _FakeCluster(recorders)
    paths = dump_on_violations(
        cluster, ["viol-a", "viol-b"], out_dir=str(tmp_path)
    )
    assert len(paths) == 4  # 2 recorders x 2 distinct violations
    # Re-reporting the same violations is a no-op.
    assert dump_on_violations(cluster, ["viol-a"], out_dir=str(tmp_path)) == []


def test_dump_on_violations_noop_without_recorders(tmp_path):
    assert dump_on_violations(object(), ["v"], out_dir=str(tmp_path)) == []
    assert dump_on_violations(_FakeCluster([]), ["v"], out_dir=str(tmp_path)) == []
    assert not list(tmp_path.iterdir())
