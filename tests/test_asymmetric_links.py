"""Asymmetric (one-way) link failures.

The paper's asynchronous model attributes unreachability to crashes,
slowness, or "the communication path may have been disconnected"
(Section 1) — and real paths fail asymmetrically.  Safety (the six
properties) must survive one-way cuts; liveness/convergence is only
required again once symmetry is restored.
"""

from __future__ import annotations

from repro.runtime.cluster import Cluster, ClusterConfig

from tests.conftest import assert_all_properties, settled_cluster


def test_oneway_cut_drops_only_one_direction():
    cluster = settled_cluster(2)
    cluster.topology.cut_oneway(0, 1)
    a, b = cluster.stack_at(0), cluster.stack_at(1)
    got = []
    a.app.on_direct = lambda src, p: got.append(("a", p))
    b.app.on_direct = lambda src, p: got.append(("b", p))
    a.send_direct(b.pid, "a->b")  # cut: lost
    b.send_direct(a.pid, "b->a")  # open: arrives
    cluster.run_for(10)
    assert got == [("a", "b->a")]


def test_heal_oneway_restores_direction():
    cluster = settled_cluster(2)
    cluster.topology.cut_oneway(0, 1)
    cluster.topology.heal_oneway(0, 1)
    got = []
    cluster.stack_at(1).app.on_direct = lambda src, p: got.append(p)
    cluster.stack_at(0).send_direct(cluster.stack_at(1).pid, "again")
    cluster.run_for(10)
    assert got == ["again"]


def test_global_heal_clears_oneway_cuts():
    cluster = settled_cluster(3)
    cluster.topology.cut_oneway(0, 1)
    cluster.heal()
    assert cluster.topology.allows(0, 1)


def test_safety_holds_under_asymmetric_failure():
    """A one-way cut between two members: the failure detectors see it
    asymmetrically (one side suspects, the other does not).  Whatever
    views result, the six properties must hold."""
    cluster = settled_cluster(4, seed=2)
    for i in range(5):
        cluster.stack_at(i % 4).multicast(("pre", i))
    cluster.run_for(10)
    cluster.topology.cut_oneway(3, 0)  # p3's messages to p0 vanish
    cluster.run_for(200)
    for i in range(5):
        stack = cluster.stack_at(i % 4)
        if stack.alive and not stack.is_flushing:
            stack.multicast(("mid", i))
    cluster.run_for(200)
    # Repair the asymmetry; the group must re-converge fully.
    cluster.topology.heal_oneway(3, 0)
    assert cluster.settle(timeout=900), cluster.views()
    assert_all_properties(cluster.recorder)


def test_convergence_after_asymmetric_churn():
    cluster = Cluster(5, config=ClusterConfig(seed=7))
    assert cluster.settle(timeout=500)
    cluster.topology.cut_oneway(1, 2)
    cluster.topology.cut_oneway(4, 0)
    cluster.run_for(300)
    cluster.heal()
    assert cluster.settle(timeout=900), cluster.views()
    assert_all_properties(cluster.recorder)


def test_oneway_fault_actions_in_schedules():
    from repro.net.faults import FaultSchedule, OneWayCut, OneWayHeal

    cluster = settled_cluster(3)
    schedule = FaultSchedule()
    base = cluster.now
    schedule.add(OneWayCut(base + 20.0, 1, 2))
    schedule.add(OneWayHeal(base + 120.0, 1, 2))
    schedule.arm(cluster.scheduler, cluster)
    cluster.run_for(60)
    assert not cluster.topology.allows(1, 2)
    assert cluster.topology.allows(2, 1)
    cluster.run_for(120)
    assert cluster.topology.allows(1, 2)
    assert cluster.settle(timeout=600)
    assert_all_properties(cluster.recorder)


def test_random_schedules_with_oneway_cuts_stay_safe():
    from repro.bench.harness import run_with_schedule
    from repro.workload.generator import RandomFaultGenerator

    for seed in range(4):
        gen = RandomFaultGenerator(
            n_sites=4,
            seed=seed,
            duration=300,
            weights={
                "crash": 0.5, "recover": 1.0,
                "partition": 0.7, "heal": 1.2, "oneway": 1.0,
            },
        )
        schedule = gen.generate()
        cluster = run_with_schedule(
            4, schedule, config=ClusterConfig(seed=seed),
            tail=gen.settle_tail + 200, settle_timeout=900,
        )
        assert cluster.is_settled(), (seed, cluster.views())
        assert_all_properties(cluster.recorder)
