"""Tests for the fast-path simulation core: scheduler fast lane and
compaction, ``Network.multicast``, trace filtering/ring buffer,
copy-on-write stable storage, and heartbeat phase staggering."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.fd.heartbeat import HeartbeatDetector
from repro.net.latency import ConstantLatency, UniformLatency
from repro.net.network import Network
from repro.net.topology import Topology
from repro.runtime.cluster import Cluster, ClusterConfig
from repro.sim.process import Process
from repro.sim.rng import RngStreams
from repro.sim.scheduler import Scheduler
from repro.sim.stable_storage import SiteStorage, snapshot
from repro.trace.events import DeliveryEvent, MulticastEvent, ViewInstallEvent
from repro.trace.recorder import TraceRecorder
from repro.types import MessageId, ProcessId, ViewId


# ---------------------------------------------------------------------------
# Scheduler: fast lane, O(1) pending, compaction
# ---------------------------------------------------------------------------


def test_fast_lane_runs_in_time_and_seq_order():
    sched = Scheduler()
    seen = []
    sched.fire_at(2.0, seen.append, "b")
    sched.fire_after(1.0, seen.append, "a")
    sched.at(2.0, seen.append, "c")  # same instant: scheduling order wins
    sched.run()
    assert seen == ["a", "b", "c"]


def test_fast_lane_rejects_past_and_negative():
    sched = Scheduler()
    sched.at(5.0, lambda: None)
    sched.run()
    with pytest.raises(SimulationError):
        sched.fire_at(1.0, lambda: None)
    with pytest.raises(SimulationError):
        sched.fire_after(-0.5, lambda: None)


def test_pending_counts_live_events_only():
    sched = Scheduler()
    events = [sched.at(float(i + 1), lambda: None) for i in range(5)]
    sched.fire_at(10.0, lambda: None)
    assert sched.pending == 6
    events[0].cancel()
    events[0].cancel()  # idempotent: counted once
    assert sched.pending == 5
    sched.run(until=3.0)
    assert sched.pending == 3
    sched.run()
    assert sched.pending == 0


def test_cancel_after_fire_does_not_corrupt_pending():
    sched = Scheduler()
    event = sched.at(1.0, lambda: None)
    sched.at(2.0, lambda: None)
    sched.run(until=1.5)
    event.cancel()  # already fired: must be a no-op
    assert sched.pending == 1
    sched.run()
    assert sched.pending == 0


def test_heavy_cancellation_compacts_the_heap():
    sched = Scheduler()
    survivors = []
    keep = sched.at(500.0, survivors.append, "kept")
    cancelled = [sched.at(float(i + 1), lambda: None) for i in range(400)]
    for event in cancelled:
        event.cancel()
    # Dead entries outnumber live ones by far: compaction must have
    # purged them rather than leaving 400 tombstones buried.
    assert len(sched._heap) < 100
    assert sched.pending == 1
    sched.run()
    assert survivors == ["kept"]
    assert keep.cancelled is False


# ---------------------------------------------------------------------------
# Network.multicast
# ---------------------------------------------------------------------------


class _Sink(Process):
    def __init__(self, pid, scheduler, storage):
        super().__init__(pid, scheduler, storage)
        self.inbox = []

    def on_network(self, src, payload):
        self.inbox.append((src, payload, self.now))


def _net(n=4, **kwargs):
    sched = Scheduler()
    net = Network(sched, Topology(range(n)), RngStreams(kwargs.pop("seed", 0)), **kwargs)
    procs = []
    for site in range(n):
        proc = _Sink(ProcessId(site), sched, SiteStorage(site))
        net.register(proc)
        procs.append(proc)
    return sched, net, procs


def test_multicast_reaches_every_destination():
    sched, net, procs = _net(latency=ConstantLatency(1.0))
    net.multicast(procs[0].pid, [p.pid for p in procs[1:]], "hi")
    sched.run()
    assert all(p.inbox == [(procs[0].pid, "hi", 1.0)] for p in procs[1:])
    assert net.stats.sent == 3
    assert net.stats.delivered == 3


def test_multicast_matches_send_loop_under_fixed_seed():
    """A seeded multicast is observationally identical to the
    per-destination send loop it replaced (same RNG draw order)."""

    def run(use_multicast):
        sched, net, procs = _net(
            latency=UniformLatency(0.5, 4.0), loss_prob=0.3, seed=42
        )
        dsts = [p.pid for p in procs[1:]]
        for _ in range(20):
            if use_multicast:
                net.multicast(procs[0].pid, dsts, "x")
            else:
                for dst in dsts:
                    net.send(procs[0].pid, dst, "x")
        sched.run()
        arrivals = [p.inbox for p in procs]
        return arrivals, net.stats.dropped_loss, net.stats.delivered

    assert run(True) == run(False)


def test_multicast_counts_partition_drops_per_destination():
    sched, net, procs = _net()
    net.topology.partition([(0, 1), (2, 3)])
    net.multicast(procs[0].pid, [p.pid for p in procs[1:]], "cut")
    sched.run()
    assert net.stats.sent == 3
    assert net.stats.dropped_partition == 2
    assert procs[1].inbox and not procs[2].inbox and not procs[3].inbox


def test_multicast_inflight_cut_drops_at_delivery_time():
    sched, net, procs = _net(latency=ConstantLatency(10.0))
    net.multicast(procs[0].pid, [p.pid for p in procs[1:]], "doomed")
    sched.at(5.0, net.topology.partition, [(0,), (1, 2, 3)])
    sched.run()
    assert net.stats.dropped_partition == 3
    assert all(not p.inbox for p in procs[1:])


def test_multicast_dropped_loss_is_deterministic():
    def drops():
        sched, net, procs = _net(loss_prob=0.5, seed=9)
        dsts = [p.pid for p in procs[1:]]
        for _ in range(50):
            net.multicast(procs[0].pid, dsts, "y")
        sched.run()
        return net.stats.dropped_loss, net.stats.delivered

    first, second = drops(), drops()
    assert first == second
    assert first[0] > 0 and first[1] > 0


def test_multicast_to_dead_incarnation_counts_dropped_dead():
    sched, net, procs = _net()
    net.multicast_sites(procs[0].pid, [1, 2, 99], "knock")
    sched.run()
    assert net.stats.dropped_dead == 1  # site 99 hosts nobody
    assert procs[1].inbox and procs[2].inbox


def test_multicast_fifo_links_preserve_per_link_order():
    sched, net, procs = _net(latency=UniformLatency(0.1, 5.0), fifo_links=True)
    dsts = [p.pid for p in procs[1:]]
    for i in range(20):
        net.multicast(procs[0].pid, dsts, i)
    sched.run()
    for p in procs[1:]:
        assert [payload for _, payload, _ in p.inbox] == list(range(20))


def test_multicast_non_fifo_links_may_reorder():
    sched, net, procs = _net(latency=UniformLatency(0.1, 5.0), fifo_links=False)
    dsts = [p.pid for p in procs[1:]]
    for i in range(20):
        net.multicast(procs[0].pid, dsts, i)
    sched.run()
    reordered = False
    for p in procs[1:]:
        payloads = [payload for _, payload, _ in p.inbox]
        assert sorted(payloads) == list(range(20))
        reordered = reordered or payloads != list(range(20))
    assert reordered


def test_link_clocks_pruned_after_topology_change():
    sched, net, procs = _net(latency=ConstantLatency(1.0))
    net.multicast(procs[0].pid, [p.pid for p in procs[1:]], "warm")
    sched.run()
    assert net._link_clock
    net.topology.partition([(0,), (1, 2, 3)])
    sched.at(sched.now + 50.0, lambda: None)
    sched.run()
    net.send(procs[1].pid, procs[2].pid, "after")  # triggers lazy prune
    assert all(clock + 1e-9 > 0 for clock in net._link_clock.values())
    assert (procs[0].pid, procs[1].pid) not in net._link_clock


def test_send_many_from_process():
    sched, net, procs = _net(latency=ConstantLatency(1.0))
    procs[0].send_many([p.pid for p in procs[1:]], "bulk")
    sched.run()
    assert all(p.inbox for p in procs[1:])


# ---------------------------------------------------------------------------
# Trace recorder: level filter and ring buffer
# ---------------------------------------------------------------------------


def _delivery(t):
    pid = ProcessId(0)
    vid = ViewId(1, pid)
    return DeliveryEvent(
        time=t, pid=pid, msg_id=MessageId(pid, vid, int(t)), view_id=vid,
        sender_eview_seq=0,
    )


def test_membership_level_filters_message_events():
    rec = TraceRecorder(level="membership")
    assert rec.wants(ViewInstallEvent)
    assert not rec.wants(DeliveryEvent)
    assert not rec.wants(MulticastEvent)
    rec.record(_delivery(1.0))
    assert len(rec) == 0
    assert rec.filtered == 1


def test_none_level_records_nothing():
    rec = TraceRecorder(level="none")
    rec.record(_delivery(1.0))
    assert len(rec) == 0
    assert not rec.wants(DeliveryEvent)


def test_unknown_level_rejected():
    with pytest.raises(SimulationError):
        TraceRecorder(level="verbose")


def test_only_overrides_level():
    rec = TraceRecorder(level="none", only=[DeliveryEvent])
    assert rec.wants(DeliveryEvent)
    rec.record(_delivery(1.0))
    assert len(rec) == 1


def test_ring_buffer_keeps_most_recent():
    rec = TraceRecorder(capacity=10)
    for i in range(25):
        rec.record(_delivery(float(i)))
    assert len(rec) == 10
    assert rec.dropped == 15
    assert [e.time for e in rec.events] == [float(i) for i in range(15, 25)]


def test_cluster_trace_level_none_records_nothing():
    cluster = Cluster(3, config=ClusterConfig(trace_level="none"))
    cluster.settle()
    cluster.run_for(50.0)
    assert len(cluster.recorder) == 0
    assert cluster.recorder.filtered > 0


# ---------------------------------------------------------------------------
# Stable storage: copy-on-write snapshots
# ---------------------------------------------------------------------------


def test_snapshot_shares_immutable_values():
    pid = ProcessId(3, 1)
    deep = (1, "x", frozenset({pid}), (ViewId(2, pid), None))
    assert snapshot(deep) is deep


def test_snapshot_copies_mutable_values():
    value = {"log": [1, 2]}
    copy_ = snapshot(value)
    assert copy_ == value and copy_ is not value
    copy_["log"].append(3)
    assert value["log"] == [1, 2]


def test_snapshot_copies_frozen_dataclass_with_mutable_field():
    from repro.types import Message

    msg = Message(MessageId(ProcessId(0), ViewId(1, ProcessId(0)), 1), ["mut"])
    assert snapshot(msg) is not msg


def test_storage_write_isolates_mutable_and_shares_immutable():
    store = SiteStorage(0)
    mutable = [1, 2]
    store.write("m", mutable)
    mutable.append(3)
    assert store.read("m") == [1, 2]
    pid = ProcessId(7)
    store.write("p", pid)
    assert store.read("p") is pid


# ---------------------------------------------------------------------------
# Heartbeat staggering
# ---------------------------------------------------------------------------


def test_phase_offsets_distinct_and_deterministic():
    cluster = Cluster(8)
    offsets = [
        cluster.stacks[site].fd._phase_offset()
        for site in sorted(cluster.stacks)
    ]
    assert len(set(offsets)) == len(offsets)
    assert all(0.0 <= off < cluster.stacks[0].fd.interval for off in offsets)
    again = [
        cluster.stacks[site].fd._phase_offset()
        for site in sorted(cluster.stacks)
    ]
    assert offsets == again


def test_recovered_incarnation_gets_new_phase():
    cluster = Cluster(3)
    cluster.settle()
    before = cluster.stacks[1].fd._phase_offset()
    cluster.crash(1)
    cluster.run_for(50.0)
    cluster.recover(1)
    after = cluster.stacks[1].fd._phase_offset()
    assert before != after


@pytest.mark.parametrize("fd_mode", ["heartbeat", "gossip"])
def test_sweep_cost_tracks_live_peers_not_universe(fd_mode):
    """The periodic expiry sweep must examine O(live peers) entries,
    not every site the detector ever heard: a mostly-dead universe of
    24 sites with 4 survivors sweeps 3 peers per tick, not 23."""
    from repro.vsync.stack import StackConfig

    config = ClusterConfig(
        fd_mode=fd_mode,
        gossip_fanout=4,
        # Gossip needs the epidemic-round timeout (docs/scaling.md);
        # harmless for the heartbeat flavour.
        stack=StackConfig(fd_timeout=45.0),
    )
    cluster = Cluster(24, config=config)
    assert cluster.settle()
    for site in range(4, 24):
        cluster.crash(site)
    cluster.run_for(100.0)  # let reachability converge on the survivors
    survivors = [cluster.stacks[site] for site in range(4)]
    assert all(len(s.fd.reachable()) == 4 for s in survivors)
    for stack in survivors:
        stack.fd.sweep_examined = 0
    window = 200.0
    cluster.run_for(window)
    for stack in survivors:
        sweeps = window / stack.fd.interval
        assert 0 < stack.fd.sweep_examined <= (sweeps + 2) * 3


def test_staggered_heartbeats_do_not_share_an_instant():
    cluster = Cluster(6, config=ClusterConfig(latency=ConstantLatency(1.0)))
    cluster.settle()
    sent_times: dict[int, list[float]] = {}
    for site, stack in cluster.stacks.items():
        original = stack.fd._beat
        def beat(s=site, orig=original):
            sent_times.setdefault(s, []).append(cluster.now)
            orig()
        stack.fd._beat = beat
    cluster.run_for(60.0)
    steady = {
        site: [t for t in times if t > cluster.now - 30.0]
        for site, times in sent_times.items()
    }
    all_times = [t for times in steady.values() for t in times]
    assert len(all_times) == len(set(all_times))  # no same-instant bursts
