"""Protocol edge cases: leaves during settlement, joins into
partitioned components, repartitions without heal, in-flight messages to
departed members."""

from __future__ import annotations

from repro.apps.replicated_file import ReplicatedFile
from repro.core.modes import Mode
from repro.runtime.cluster import Cluster, ClusterConfig

from tests.conftest import assert_all_properties, settled_cluster


def file_cluster(n: int = 5, seed: int = 0) -> Cluster:
    votes = {s: 1 for s in range(n)}
    cluster = Cluster(
        n,
        app_factory=lambda pid: ReplicatedFile(votes),
        config=ClusterConfig(seed=seed),
    )
    assert cluster.settle(timeout=500)
    cluster.run_for(150)
    return cluster


def test_leave_during_settlement():
    """A member leaves gracefully while the post-heal settlement runs;
    the remaining members must still reconcile."""
    cluster = file_cluster()
    cluster.partition([[0, 1, 2], [3, 4]])
    assert cluster.settle(timeout=500)
    cluster.run_for(120)
    cluster.heal()
    cluster.run_for(8)  # settlement in flight
    cluster.stack_at(4).leave()
    assert cluster.settle(timeout=900), cluster.views()
    cluster.run_for(300)
    for site in range(4):
        assert cluster.apps[site].mode is Mode.NORMAL, site
    assert_all_properties(cluster.recorder)


def test_join_lands_in_minority_component():
    """A brand-new site joins while the network is partitioned and it
    can only reach the minority; it must merge into the minority view,
    then into everyone at heal."""
    cluster = file_cluster()
    cluster.partition([[0, 1, 2], [3, 4]])
    assert cluster.settle(timeout=500)
    # The joiner can only talk to the minority side.
    cluster.topology.add_site(5)
    cluster.topology.partition([(0, 1, 2), (3, 4, 5)])
    cluster.start_site(5)
    assert cluster.settle(timeout=600), cluster.views()
    minority_members = {p.site for p in cluster.stack_at(3).view.members}
    assert minority_members == {3, 4, 5}
    assert cluster.apps[5].mode is Mode.REDUCED  # 3 of 6 votes: no quorum
    cluster.heal()
    assert cluster.settle(timeout=600)
    cluster.run_for(300)
    assert {p.site for p in cluster.stack_at(0).view.members} == set(range(6))
    assert_all_properties(cluster.recorder)


def test_repartition_without_heal():
    """The cut moves: {0,1,2}|{3,4} becomes {0,1}|{2,3,4} directly.
    Process 2 migrates between components without any full-connectivity
    interlude."""
    cluster = file_cluster()
    cluster.apps[0].write("f", "v1")
    cluster.run_for(30)
    cluster.partition([[0, 1, 2], [3, 4]])
    assert cluster.settle(timeout=500)
    cluster.run_for(120)
    cluster.apps[0].write("f", "v2")  # quorum side {0,1,2}
    cluster.run_for(30)
    cluster.partition([[0, 1], [2, 3, 4]])
    assert cluster.settle(timeout=600), cluster.views()
    cluster.run_for(300)
    # Now {2,3,4} is the quorum; 2 brings the freshest state with it.
    assert cluster.apps[2].mode is Mode.NORMAL
    assert cluster.apps[3].mode is Mode.NORMAL
    assert cluster.apps[3].read("f") == "v2"
    assert cluster.apps[0].mode is Mode.REDUCED
    cluster.heal()
    assert cluster.settle(timeout=600)
    cluster.run_for(300)
    assert all(cluster.apps[s].read("f") == "v2" for s in range(5))
    assert_all_properties(cluster.recorder)


def test_in_flight_messages_to_leaver_are_harmless():
    cluster = settled_cluster(3)
    target = cluster.stack_at(2)
    cluster.stack_at(0).multicast("wave-1")
    target.leave()  # in-flight copies to p2 now land on a dead process
    cluster.run_for(20)
    assert cluster.settle(timeout=500)
    cluster.stack_at(0).multicast("wave-2")
    cluster.run_for(20)
    assert_all_properties(cluster.recorder)


def test_three_way_partition_and_full_merge():
    cluster = file_cluster(n=6, seed=3)
    cluster.partition([[0, 1], [2, 3], [4, 5]])
    assert cluster.settle(timeout=600), cluster.views()
    views = {cluster.stack_at(s).current_view_id() for s in range(6)}
    assert len(views) == 3  # three concurrent views
    for site in range(6):
        assert cluster.apps[site].mode is Mode.REDUCED  # nobody has 4/6
    cluster.heal()
    assert cluster.settle(timeout=600)
    cluster.run_for(300)
    assert all(cluster.apps[s].mode is Mode.NORMAL for s in range(6))
    assert_all_properties(cluster.recorder)
