"""Tests for the Isis-style baseline: primary partition, one-at-a-time
growth, blocking state transfer, flat views."""

from __future__ import annotations

from repro.apps.replicated_file import ReplicatedFile
from repro.isis import isis_stack_config
from repro.runtime.cluster import Cluster, ClusterConfig
from repro.trace.checks import check_view_synchrony
from repro.trace.events import ViewInstallEvent


def isis_cluster(n: int, seed: int = 0, **kwargs) -> Cluster:
    config = ClusterConfig(seed=seed, stack=isis_stack_config(**kwargs))
    return Cluster(n, config=config)


def primary_views(cluster: Cluster) -> list[ViewInstallEvent]:
    """Views installed at the bootstrap site, in order."""
    pid0 = cluster.stack_at(0).pid
    return cluster.recorder.view_sequence(pid0)


def test_growth_is_one_member_per_view_change():
    cluster = isis_cluster(5)
    cluster.run_for(600)
    sizes = [len(ev.members) for ev in primary_views(cluster)]
    assert sizes == [1, 2, 3, 4, 5]


def test_absorbing_m_members_costs_m_view_changes():
    """The Section 5 merge-cost claim, baseline side."""
    for m in (2, 4):
        cluster = isis_cluster(1 + m)
        cluster.run_for(900)
        views = primary_views(cluster)
        growths = [
            later
            for earlier, later in zip(views, views[1:])
            if len(later.members) > len(earlier.members)
        ]
        assert len(growths) == m
        # ... and each growth admitted exactly one member.
        assert all(
            len(later.members) - len(earlier.members) == 1
            for earlier, later in zip(views, views[1:])
            if len(later.members) > len(earlier.members)
        )


def test_final_view_includes_everyone():
    cluster = isis_cluster(4)
    cluster.run_for(600)
    members = cluster.stack_at(0).view.members
    assert {p.site for p in members} == {0, 1, 2, 3}
    views = {s.current_view_id() for s in cluster.live_stacks()}
    assert len(views) == 1


def test_minority_blocks_on_partition():
    cluster = isis_cluster(5)
    cluster.run_for(600)
    view_before = cluster.stack_at(3).current_view_id()
    cluster.partition([[0, 1, 2], [3, 4]])
    cluster.run_for(400)
    # Majority moved on; minority is frozen in the old view.
    assert cluster.stack_at(0).current_view_id() != view_before
    assert cluster.stack_at(3).current_view_id() == view_before
    assert {p.site for p in cluster.stack_at(0).view.members} == {0, 1, 2}


def test_no_concurrent_primary_views():
    """Linear membership: the set of installed multi-member views is
    totally ordered by epoch with unique epochs."""
    cluster = isis_cluster(5, seed=2)
    cluster.run_for(600)
    cluster.partition([[0, 1, 2], [3, 4]])
    cluster.run_for(300)
    cluster.heal()
    cluster.run_for(600)
    epochs = [
        ev.view_id.epoch
        for ev in cluster.recorder.of_type(ViewInstallEvent)
        if len(ev.members) > 1
    ]
    installed = sorted(set(epochs))
    assert installed == sorted(installed)
    # Every multi-member view id appears with one membership only.
    views = {}
    for ev in cluster.recorder.of_type(ViewInstallEvent):
        if len(ev.members) > 1:
            views.setdefault(ev.view_id, ev.members)
            assert views[ev.view_id] == ev.members


def test_primary_halts_after_majority_loss():
    cluster = isis_cluster(5)
    cluster.run_for(600)
    for site in (0, 1, 2):
        cluster.crash(site)
    cluster.run_for(200)
    for site in (0, 1, 2):
        cluster.recover(site)
    cluster.run_for(600)
    # Survivors of the old primary are a minority; recovered processes
    # are not primary: nobody can install a multi-member view.
    assert len(cluster.stack_at(3).view.members) == 5  # frozen old view
    for site in (0, 1, 2):
        assert len(cluster.stack_at(site).view.members) == 1


def test_isis_views_are_flat():
    cluster = isis_cluster(4)
    cluster.run_for(600)
    for stack in cluster.live_stacks():
        structure = stack.eview.structure
        assert len(structure.subviews) == 1
        assert len(structure.svsets) == 1


def test_vs_properties_hold_on_isis_runs():
    cluster = isis_cluster(4, seed=1)
    cluster.run_for(600)
    cluster.partition([[0, 1, 2], [3]])
    cluster.run_for(300)
    cluster.heal()
    cluster.run_for(500)
    for report in check_view_synchrony(cluster.recorder):
        assert report.ok, (report.name, report.violations[:3])


def test_blocking_transfer_moves_state_before_install():
    votes = {s: 1 for s in range(3)}
    config = ClusterConfig(
        stack=isis_stack_config(blocking_transfer=True)
    )
    cluster = Cluster(
        3,
        app_factory=lambda pid: ReplicatedFile(votes),
        config=config,
    )
    cluster.run_for(700)
    # Everyone ended up in the full view with identical file state and
    # fresh flags (the tool installed state at each joiner pre-install).
    assert {p.site for p in cluster.stack_at(0).view.members} == {0, 1, 2}
    for site in range(3):
        assert cluster.apps[site].fresh


def test_blocking_transfer_counts_and_blocked_time():
    config = ClusterConfig(
        stack=isis_stack_config(blocking_transfer=True, size_of=lambda app: 10)
    )
    cluster = Cluster(3, config=config)
    cluster.run_for(900)
    agreement = cluster.stack_at(0).membership
    tool = agreement.transfer_tool
    assert tool is not None
    assert tool.transfers_completed >= 2
    assert tool.blocked_time > 0


def test_minority_reabsorbed_after_heal_with_blocking_transfer():
    """Regression: a minority coordinator's members must release their
    endorsement when its round is blocked (VcAbort), or they would
    ignore the primary's prepares forever after the repair; and a
    pending blocking transfer must freeze coordination without leaking
    stale unfreeze timers."""
    votes = {s: 1 for s in range(5)}
    config = ClusterConfig(
        stack=isis_stack_config(blocking_transfer=True, size_of=lambda app: 20)
    )
    cluster = Cluster(
        5, app_factory=lambda pid: ReplicatedFile(votes), config=config
    )
    cluster.run_for(900)
    assert len(cluster.stack_at(0).view.members) == 5
    tool = cluster.stack_at(0).membership.transfer_tool
    assert tool.transfers_completed == 4  # exactly one per admitted member
    cluster.apps[0].write("ledger", "v1")
    cluster.run_for(40)
    cluster.partition([[0, 1, 2], [3, 4]])
    cluster.run_for(300)
    handle = cluster.apps[0].write("ledger", "v2")
    cluster.run_for(40)
    assert handle.status == "committed"
    cluster.heal()
    cluster.run_for(900)
    for site in range(5):
        assert len(cluster.stack_at(site).view.members) == 5, site
        assert cluster.apps[site].read("ledger") == "v2", site


def test_repeated_partition_cycles_always_reabsorb():
    """Liveness regression for three endorsement-release bugs: a stale
    primary standing off against the fresher chain, epoch-vs-identifier
    deference, and one-at-a-time trims leaving excluded joiners pledged
    to a round that will never install them."""
    import random as _random

    for seed in (1, 3, 5):
        rng = _random.Random(seed)
        cluster = isis_cluster(5, seed=seed)
        cluster.run_for(700)
        for _ in range(3):
            cut = rng.randint(1, 4)
            cluster.partition([list(range(cut)), list(range(cut, 5))])
            cluster.run_for(rng.uniform(100, 300))
            cluster.heal()
            cluster.run_for(900)
        for site in range(5):
            assert len(cluster.stack_at(site).view.members) == 5, (seed, site)
        # Linear membership throughout: one multi-member view per epoch.
        by_epoch: dict = {}
        for ev in cluster.recorder.of_type(ViewInstallEvent):
            if len(ev.members) > 1:
                by_epoch.setdefault(ev.view_id.epoch, set()).add(ev.view_id)
        assert all(len(v) == 1 for v in by_epoch.values())
