"""Tests for the settlement engine: session kinds, continuation vs
restart (the E9 mechanism), retry robustness."""

from __future__ import annotations

from repro.core.group_object import GroupObject
from repro.core.mode_functions import AlwaysFullModeFunction, QuorumModeFunction
from repro.core.modes import Mode
from repro.runtime.cluster import Cluster, ClusterConfig


class Obj(GroupObject):
    def __init__(self, fn, enriched_continuation=True):
        super().__init__(fn, enriched_continuation=enriched_continuation)
        self.data = {}

    def snapshot_state(self):
        return dict(self.data)

    def adopt_state(self, state):
        self.data = dict(state)

    def apply_op(self, sender, op, msg_id):
        self.data[op[0]] = op[1]

    def merge_app_states(self, offers):
        merged = {}
        for offer in sorted(offers, key=lambda o: (o.version, o.sender)):
            merged.update(offer.state)
        return merged


def build(n, fn_factory, seed=0, continuation=True):
    cluster = Cluster(
        n,
        app_factory=lambda pid: Obj(fn_factory(), continuation),
        config=ClusterConfig(seed=seed),
    )
    assert cluster.settle(timeout=500)
    cluster.run_for(200)
    return cluster


def test_bootstrap_runs_creation_session():
    cluster = build(3, AlwaysFullModeFunction)
    leader = cluster.apps[0]
    assert leader.settlement.stats.sessions_started >= 1
    assert leader.settlement.stats.sessions_completed >= 1
    assert leader.mode is Mode.NORMAL


def test_transfer_session_after_heal_identifies_single_donor():
    cluster = build(5, lambda: QuorumModeFunction.uniform(range(5)))
    cluster.partition([[0, 1, 2], [3, 4]])
    assert cluster.settle(timeout=500)
    cluster.run_for(150)
    cluster.heal()
    assert cluster.settle(timeout=500)
    cluster.run_for(250)
    from repro.trace.events import AppEvent

    kinds = [
        e.data["kind"]
        for e in cluster.recorder.app_events("settle_start")
        if e.time > 300
    ]
    assert "transfer" in kinds
    assert all(a.mode is Mode.NORMAL for a in cluster.apps.values())


def test_merge_session_after_symmetric_partition():
    cluster = build(4, AlwaysFullModeFunction)
    cluster.partition([[0, 1], [2, 3]])
    assert cluster.settle(timeout=500)
    cluster.run_for(200)
    cluster.heal()
    assert cluster.settle(timeout=500)
    cluster.run_for(250)
    kinds = [
        e.data["kind"] for e in cluster.recorder.app_events("settle_decide")
    ]
    assert "merge" in kinds


def test_session_continues_when_join_arrives_mid_settlement():
    """Enriched continuation: a view change that only *adds* processes
    must not abandon the session (participants can only shrink under
    it, per Section 6.2)."""
    cluster = build(4, AlwaysFullModeFunction, seed=7)
    leader = cluster.apps[0]
    baseline_restarts = leader.settlement.stats.sessions_restarted
    cluster.partition([[0, 1], [2, 3]])
    assert cluster.settle(timeout=500)
    cluster.run_for(150)
    cluster.heal()
    # While the merge settles, a new site joins.
    cluster.run_for(12)
    cluster.join(4)
    assert cluster.settle(timeout=600)
    cluster.run_for(300)
    stats = leader.settlement.stats
    assert stats.sessions_completed >= 1
    assert all(a.mode is Mode.NORMAL for a in cluster.apps.values())
    assert stats.sessions_continued >= 0  # counter exists and is sane
    assert stats.sessions_restarted >= baseline_restarts


def test_flat_policy_restarts_on_every_view_change():
    """With enriched_continuation=False the engine must restart when a
    view change interrupts a session, never continue it."""
    cluster = build(4, AlwaysFullModeFunction, seed=7, continuation=False)
    cluster.partition([[0, 1], [2, 3]])
    assert cluster.settle(timeout=500)
    cluster.run_for(150)
    cluster.heal()
    cluster.run_for(12)
    cluster.join(4)
    assert cluster.settle(timeout=600)
    cluster.run_for(300)
    for app in cluster.apps.values():
        assert app.settlement.stats.sessions_continued == 0
        assert app.mode is Mode.NORMAL


def test_leader_crash_mid_settlement_recovers():
    cluster = build(5, lambda: QuorumModeFunction.uniform(range(5)), seed=3)
    cluster.partition([[0, 1, 2], [3, 4]])
    assert cluster.settle(timeout=500)
    cluster.run_for(150)
    cluster.heal()
    cluster.run_for(10)  # settlement under way at leader p0
    cluster.crash(0)
    assert cluster.settle(timeout=700)
    cluster.run_for(400)
    for site in (1, 2, 3, 4):
        assert cluster.apps[site].mode is Mode.NORMAL, site


def test_donor_keeps_fresh_flag_through_transfer():
    cluster = build(5, lambda: QuorumModeFunction.uniform(range(5)))
    cluster.partition([[0, 1, 2], [3, 4]])
    assert cluster.settle(timeout=500)
    cluster.run_for(150)
    assert cluster.apps[0].fresh  # majority member stayed N
    assert not cluster.apps[3].fresh  # minority dropped to R
    cluster.heal()
    assert cluster.settle(timeout=500)
    cluster.run_for(250)
    assert all(a.fresh for a in cluster.apps.values())


def test_offers_from_stale_sessions_are_ignored():
    from repro.core.settlement import StateOffer

    cluster = build(3, AlwaysFullModeFunction)
    leader = cluster.apps[0]
    stale = StateOffer(
        session=(cluster.stack_at(0).pid, 999),
        sender=cluster.stack_at(1).pid,
        snapshot=({}, frozenset(), 0),
        version=0,
        last_epoch=0,
    )
    leader.settlement.on_offer(cluster.stack_at(1).pid, stale)  # no crash
    assert leader.settlement.session is None or (
        cluster.stack_at(1).pid not in leader.settlement.session.offers
    )


def test_retry_timer_redrives_slow_settlements():
    """Drop the first state request (one-way cut) and verify the retry
    machinery still completes the settlement."""
    cluster = build(5, lambda: QuorumModeFunction.uniform(range(5)), seed=11)
    cluster.partition([[0, 1, 2], [3, 4]])
    assert cluster.settle(timeout=500)
    cluster.run_for(150)
    # The donor-side answers will be lost for a while.
    cluster.topology.cut_oneway(0, 3)
    cluster.topology.cut_oneway(0, 4)
    cluster.heal()  # heal() clears one-way cuts too, so re-install them
    cluster.topology.cut_oneway(0, 3)
    cluster.topology.cut_oneway(0, 4)
    cluster.run_for(60)
    cluster.topology.heal_oneway(0, 3)
    cluster.topology.heal_oneway(0, 4)
    assert cluster.settle(timeout=900)
    cluster.run_for(400)
    assert all(a.mode is Mode.NORMAL for a in cluster.apps.values())


def test_continuation_reissues_adopt_after_demoting_view_change():
    """Regression (found by an n=7 soak): a continued session whose
    adopt had already been multicast must re-issue it in the new view —
    the view change may have demoted the adopters' freshness, and the
    old adopt (tagged with the dead view) was discarded with it."""
    from repro.apps.replicated_file import ReplicatedFile
    from repro.bench.harness import run_with_schedule
    from repro.workload.generator import RandomFaultGenerator

    votes = {s: 1 for s in range(7)}
    gen = RandomFaultGenerator(n_sites=7, seed=521, duration=350)
    cluster = run_with_schedule(
        7,
        gen.generate(),
        app_factory=lambda pid: ReplicatedFile(votes),
        config=ClusterConfig(seed=21),
        tail=gen.settle_tail + 300,
        settle_timeout=900,
    )
    cluster.run_for(300)
    cluster.settle(timeout=600)
    live = [cluster.apps[s] for s in cluster.apps if cluster.stacks[s].alive]
    assert all(a.mode is Mode.NORMAL for a in live)
    assert all(a.fresh for a in live)
