"""Tests for the heartbeat failure detector (through whole clusters)."""

from __future__ import annotations

from repro.net.latency import SpikeLatency
from repro.runtime.cluster import Cluster, ClusterConfig
from repro.vsync.stack import StackConfig

from tests.conftest import settled_cluster


def test_all_sites_mutually_reachable_after_settle():
    cluster = settled_cluster(3)
    for stack in cluster.live_stacks():
        assert stack.fd.reachable() == cluster.live_pids()


def test_crash_is_eventually_suspected():
    cluster = settled_cluster(3)
    victim = cluster.stack_at(2).pid
    cluster.crash(2)
    cluster.run_for(60.0)
    for stack in cluster.live_stacks():
        assert victim not in stack.fd.reachable()


def test_partition_makes_far_side_unreachable():
    cluster = settled_cluster(4)
    cluster.partition([[0, 1], [2, 3]])
    cluster.run_for(60.0)
    near = cluster.stack_at(0).fd.reachable()
    assert {p.site for p in near} == {0, 1}


def test_recovery_replaces_incarnation_in_estimates():
    cluster = settled_cluster(3)
    cluster.crash(1)
    cluster.run_for(60.0)
    fresh = cluster.recover(1)
    cluster.run_for(60.0)
    reachable = cluster.stack_at(0).fd.reachable()
    assert fresh.pid in reachable
    assert all(p.incarnation == 0 for p in reachable if p.site != 1)


def test_reachability_always_includes_self():
    cluster = settled_cluster(2)
    cluster.isolate(0)
    cluster.run_for(100.0)
    stack = cluster.stack_at(0)
    assert stack.pid in stack.fd.reachable()
    assert stack.fd.reachable() == frozenset({stack.pid})


def test_force_down_expires_site_immediately():
    cluster = settled_cluster(3)
    stack = cluster.stack_at(0)
    other = cluster.stack_at(2).pid
    assert other in stack.fd.reachable()
    stack.fd.force_down(2)
    assert other not in stack.fd.reachable()


def test_false_suspicion_under_latency_spikes_heals_itself():
    """Long delay spikes cause suspicions with no crash; the membership
    reacts with view changes, but once the network calms the group must
    converge back to one full view (the Section 2 asynchrony story)."""
    config = ClusterConfig(
        seed=3,
        latency=SpikeLatency(base=1.0, spike=40.0, spike_prob=0.02),
        stack=StackConfig(fd_timeout=12.0),
    )
    cluster = Cluster(3, config=config)
    cluster.run_for(800.0)
    cluster.config.latency = None  # calm: swap in the default constant
    cluster.network.latency = __import__(
        "repro.net.latency", fromlist=["ConstantLatency"]
    ).ConstantLatency(1.0)
    assert cluster.settle(timeout=800.0), cluster.views()


def test_view_disagreement_detected():
    cluster = settled_cluster(3)
    stack = cluster.stack_at(0)
    cluster.run_for(30.0)  # let post-install heartbeats refresh
    assert not stack.fd.view_disagreement(
        since=stack.membership.last_install_time
    )
