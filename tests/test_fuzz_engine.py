"""Fuzzer machinery: signatures, corpus, mutation, shrinking, campaigns.

The slow tests (real clusters) run tiny budgets: one checked workload
run costs ~0.4s, so campaigns here stay under ten iterations.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.fuzz.corpus import Corpus, CorpusEntry, WorkloadSpec
from repro.fuzz.engine import FuzzConfig, FuzzEngine, quick_entry
from repro.fuzz.mutate import mutate, normalize_schedule
from repro.fuzz.shrink import shrink_schedule
from repro.fuzz.signature import (
    coverage_signature,
    signature_from_json,
    signature_to_json,
)
from repro.net.faults import (
    Crash,
    FaultSchedule,
    Heal,
    Partition,
    Recover,
)
from repro.trace.events import ModeChangeEvent, ViewInstallEvent
from repro.trace.recorder import TraceRecorder
from repro.types import ProcessId, ViewId

REPRODUCER = Path(__file__).resolve().parents[1] / "corpus" / "lost_settlement_min.json"

P0, P1, P2 = ProcessId(0), ProcessId(1), ProcessId(2)
V1, V2 = ViewId(1, P0), ViewId(2, P0)


# -- coverage signatures -----------------------------------------------------


def test_signature_captures_view_graph_and_modes():
    rec = TraceRecorder()
    rec.record(
        ViewInstallEvent(
            time=0, pid=P0, view_id=V1,
            members=frozenset({P0, P1, P2}), prev_view_id=None,
        )
    )
    rec.record(
        ViewInstallEvent(
            time=5, pid=P0, view_id=V2,
            members=frozenset({P0, P1}), prev_view_id=V1,
        )
    )
    rec.record(
        ModeChangeEvent(
            time=5, pid=P0, old_mode="N", new_mode="R",
            transition="Failure", view_id=V2,
        )
    )
    sig = coverage_signature(rec)
    assert ("vroot", 3) in sig
    assert ("vchg", 3, 2, "shrink") in sig
    assert ("mode", "N", "R", "Failure") in sig
    # Signatures survive the JSON trip feature-for-feature.
    assert signature_from_json(signature_to_json(sig)) == sig


def test_empty_trace_has_minimal_signature():
    sig = coverage_signature(TraceRecorder())
    assert sig == frozenset({("nviews", 0)})


# -- corpus ------------------------------------------------------------------


def _entry(**kwargs) -> CorpusEntry:
    schedule = FaultSchedule(
        [Crash(130.0, 2), Recover(180.0, 2), Partition(220.0, ((0, 1), (2, 3, 4))), Heal(300.0)]
    )
    defaults = dict(schedule=schedule, seed=42, planted_bug="lost_settlement")
    defaults.update(kwargs)
    return CorpusEntry(**defaults)


def test_corpus_entry_json_round_trip():
    entry = _entry(
        signature=frozenset({("vroot", 5), ("mode", "N", "R", "Failure")}),
        failing_checkers=("LostSettlement",),
        violations=("p2.0 stuck in S-mode",),
    )
    back = CorpusEntry.from_json(entry.to_json())
    assert back == entry
    assert back.entry_id == entry.entry_id


def test_entry_id_tracks_replay_fields_only():
    entry = _entry()
    # Verdicts are an outcome, not an identity: same id with them set.
    executed = _entry(failing_checkers=("LostSettlement",))
    assert entry.entry_id == executed.entry_id
    assert _entry(seed=43).entry_id != entry.entry_id
    # with_schedule resets the verdicts for the new candidate.
    candidate = executed.with_schedule(FaultSchedule([Heal(200.0)]))
    assert candidate.failing_checkers == ()


def test_corpus_directory_persists_and_reloads(tmp_path):
    corpus = Corpus(tmp_path)
    entry = _entry(signature=frozenset({("vroot", 5)}))
    fresh = corpus.add(entry)
    assert fresh == {("vroot", 5)}
    assert corpus.add(entry) == set()  # nothing novel the second time
    (tmp_path / "notes.json").write_text(json.dumps({"not": "an entry"}))
    reloaded = Corpus(tmp_path)
    assert set(reloaded.entries) == {entry.entry_id}
    assert reloaded.seen == {("vroot", 5)}
    assert reloaded.stats()["entries"] == 1


def test_workload_spec_rejects_unknown_client_kind():
    from repro.errors import ReproError

    with pytest.raises(ReproError):
        WorkloadSpec(clients=(("tcp", 10.0),))


def test_rarity_weight_counts_and_reload(tmp_path):
    corpus = Corpus(tmp_path)
    common = frozenset({("vroot", 1)})
    corpus.add(_entry(seed=1, signature=common))
    corpus.add(_entry(seed=2, signature=common))
    rare = _entry(
        seed=3, signature=frozenset({("vroot", 1), ("mode", "N", "S", "Failure")})
    )
    corpus.add(rare)
    # ("vroot", 1) is in all three entries, the mode edge only in one.
    assert corpus.feature_counts == {
        ("vroot", 1): 3,
        ("mode", "N", "S", "Failure"): 1,
    }
    assert corpus.rarity_weight(rare) == pytest.approx(1 + 1 / 3 + 1)
    # Counts rebuild from disk: a resumed campaign weighs identically.
    reloaded = Corpus(tmp_path)
    assert reloaded.feature_counts == corpus.feature_counts


def test_parent_selection_prefers_rare_features():
    from collections import Counter

    corpus = Corpus()
    crowd_sig = frozenset({("vroot", 1)})
    crowd = [_entry(seed=100 + i, signature=crowd_sig) for i in range(10)]
    rare = _entry(
        seed=3,
        signature=frozenset(
            {("vroot", 1), ("mode", "N", "S", "Failure"), ("part", 2)}
        ),
    )
    for entry in [*crowd, rare]:
        corpus.add(entry)

    def picks(seed: int) -> Counter:
        engine = FuzzEngine(
            FuzzConfig(seed=seed, fresh_prob=0.0), corpus=corpus
        )
        counts: Counter = Counter()
        for _ in range(300):
            counts[engine.next_entry().parent] += 1
        return counts

    counts = picks(7)
    # Weights: rare = 1 + 1/11 + 1 + 1 ~ 3.09, each crowd entry
    # 1 + 1/11 ~ 1.09 -> rare expects ~22% of picks vs ~9% uniform.
    assert counts[rare.entry_id] > 45
    assert sum(counts.values()) == 300
    # Same seed, same corpus -> the exact same pick sequence.
    assert picks(7) == counts
    assert picks(8) != counts


# -- mutation ----------------------------------------------------------------


def test_mutants_stay_valid_schedules():
    import random

    rng = random.Random(0)
    schedule = normalize_schedule(
        FaultSchedule([Crash(130.0, 1), Recover(200.0, 1), Partition(260.0, ((0, 1, 2), (3, 4)))]),
        5,
    )
    other = FaultSchedule([Crash(140.0, 3), Recover(210.0, 3)])
    current = schedule
    for _ in range(60):
        current = mutate(current, rng, 5, other)
        current.validate()  # raises on parity/shape violations
    # Mutation explores: after 60 steps we are somewhere else.
    assert current != schedule


def test_normalize_repairs_orphan_faults():
    broken = FaultSchedule(
        [Recover(150.0, 2), Crash(200.0, 1), Partition(250.0, ((0, 1),))]
    )
    fixed = normalize_schedule(broken, 5)
    fixed.validate()
    kinds = [type(a).__name__ for a in fixed.actions]
    assert "Heal" in kinds  # partitions do not outlive the schedule
    assert kinds.count("Recover") == kinds.count("Crash")
    # The orphan recover of an up site is gone, groups cover all sites.
    partition = next(a for a in fixed.actions if isinstance(a, Partition))
    assert sorted(s for g in partition.groups for s in g) == [0, 1, 2, 3, 4]


# -- shrinking (synthetic oracle: no cluster involved) -----------------------


def test_shrink_schedule_reaches_the_minimal_core():
    # The "bug" is triggered by any Partition; everything else is noise.
    def oracle(candidate: FaultSchedule) -> set[str]:
        if any(isinstance(a, Partition) for a in candidate.actions):
            return {"SyntheticChecker"}
        return set()

    noisy = normalize_schedule(
        FaultSchedule(
            [
                Crash(130.0, 1),
                Recover(190.0, 1),
                Crash(210.0, 3),
                Partition(240.0, ((0, 1, 2), (3, 4))),
                Recover(280.0, 3),
                Crash(320.0, 0),
                Recover(390.0, 0),
                Heal(420.0),
            ]
        ),
        5,
    )
    result = shrink_schedule(
        noisy, oracle, repair=lambda s: normalize_schedule(s, 5)
    )
    kinds = sorted(type(a).__name__ for a in result.schedule.actions)
    assert kinds == ["Heal", "Partition"]  # Heal re-added by the repair
    assert result.target == frozenset({"SyntheticChecker"})
    assert oracle(result.schedule) == {"SyntheticChecker"}
    # Cosmetic pass pulled the partition to the earliest slot.
    assert min(a.time for a in result.schedule.actions) == 120.0


def test_shrink_gives_up_cleanly_when_nothing_fails():
    result = shrink_schedule(
        FaultSchedule([Heal(200.0)]), lambda s: set()
    )
    assert result.target == frozenset()
    assert result.schedule.actions == [Heal(200.0)]


# -- campaigns against real clusters -----------------------------------------


def test_clean_campaign_collects_coverage_not_failures():
    engine = FuzzEngine(
        FuzzConfig(iterations=4, seed=1, fault_duration=300.0)
    )
    stats = engine.run()
    assert stats.iterations == 4
    assert stats.failures == 0
    assert stats.features > 0
    assert engine.corpus.entries  # novel runs were admitted
    snapshot = engine.metrics.snapshot(source="fuzz")
    names = {s.name for s in snapshot.samples}
    assert "fuzz_runs_total" in names


def test_planted_bug_is_found_shrunk_and_replayable(tmp_path):
    """The acceptance regression: a planted settlement bug is found
    within a bounded seed budget, ddmin gets the reproducer to <= 6
    fault events, and the shrunk entry replays deterministically."""
    corpus = Corpus(tmp_path)
    engine = FuzzEngine(
        FuzzConfig(
            iterations=6,
            seed=7,
            planted_bug="lost_settlement",
            fault_duration=300.0,
            shrink_budget=40,
        ),
        corpus=corpus,
    )
    stats = engine.run()
    assert stats.failures >= 1
    assert stats.first_failure is not None
    assert "LostSettlement" in stats.first_failure.failing_checkers
    assert stats.shrunk, "auto-shrink must produce a reproducer"
    shrunk = corpus.entries[stats.shrunk[0]]
    assert shrunk.kind == "shrunk"
    assert len(shrunk.schedule.actions) <= 6
    assert "LostSettlement" in shrunk.failing_checkers
    ok, replayed = engine.replay(shrunk)
    assert ok, f"shrunk entry did not reproduce: {replayed.failing_checkers}"
    # And it was persisted as plain JSON in the corpus directory.
    assert (tmp_path / f"{shrunk.entry_id}.json").exists()


def test_checked_in_reproducer_replays_on_sim():
    entry = CorpusEntry.load(REPRODUCER)
    assert entry.failing_checkers == ("LostSettlement",)
    engine = FuzzEngine(FuzzConfig(n_sites=entry.workload.n_sites))
    ok, executed = engine.replay(entry)
    assert ok, f"reproducer regressed: {executed.failing_checkers}"


def test_quick_entry_runs_clean_without_planted_bug():
    engine = FuzzEngine(FuzzConfig(seed=3))
    entry = quick_entry(
        [Partition(200.0, ((1, 2, 3, 4), (0,))), Heal(400.0)], seed=3
    )
    executed = engine.execute_entry(entry)
    # The exact schedule of the checked-in reproducer is clean once the
    # planted bug is disarmed: detectors do not fire on healthy runs.
    assert not executed.failed
    assert executed.signature
