"""Tests for the client service tier: router, sim port, open-loop load."""

from __future__ import annotations

import pytest

from repro.apps.factories import app_factory
from repro.apps.versioned_store import VersionedStore
from repro.client.protocol import ClientReply, ClientRequest
from repro.client.service import StoreService
from repro.client.sim import SimStoreClient
from repro.net.faults import FaultSchedule, Heal, Partition
from repro.runtime.cluster import Cluster, ClusterConfig
from repro.workload.openloop import (
    LoadSpec,
    LoadTarget,
    OpenLoopLoad,
    UniformKeys,
    ZipfianKeys,
    make_key_dist,
    slo_verdict,
)
from repro.workload.runner import run_client_load


def store_cluster(n: int = 4, seed: int = 0) -> Cluster:
    cluster = Cluster(
        n, app_factory=app_factory("store", n), config=ClusterConfig(seed=seed)
    )
    assert cluster.settle(timeout=500)
    cluster.run_for(100)
    return cluster


# ---------------------------------------------------------------------------
# StoreService router
# ---------------------------------------------------------------------------


def collect(service: StoreService, request: ClientRequest) -> list[ClientReply]:
    replies: list[ClientReply] = []
    service.handle_request(request, replies.append)
    return replies


def test_service_routes_ping_and_rejects_unknown_ops() -> None:
    service = StoreService(VersionedStore())
    (pong,) = collect(service, ClientRequest(1, "ping"))
    assert pong.status == "ok" and pong.req_id == 1
    (err,) = collect(service, ClientRequest(2, "drop_table"))
    assert err.status == "error" and "drop_table" in str(err.value)


def test_service_put_reply_is_deferred_until_commit() -> None:
    cluster = store_cluster()
    service = StoreService(cluster.app_at(0))
    replies: list[ClientReply] = []
    service.handle_request(
        ClientRequest(5, "put", key="k", value="v", client="c", client_seq=1),
        replies.append,
    )
    # No reply at dispatch: the put is pending its quorum.
    assert replies == []
    cluster.run_for(100)
    assert len(replies) == 1
    assert replies[0].status == "ok" and replies[0].prov is not None


def test_service_read_paths() -> None:
    cluster = store_cluster()
    service = StoreService(cluster.app_at(1))
    (missing,) = collect(service, ClientRequest(1, "get", key="nope"))
    assert missing.status == "missing"
    client = SimStoreClient(cluster, site=0, client_id="r")
    assert client.put("k", "v").ok
    (got,) = collect(service, ClientRequest(2, "get", key="k"))
    assert got.status == "ok" and got.value == "v"
    (hist,) = collect(service, ClientRequest(3, "history", key="k"))
    assert hist.status == "ok"
    assert [link[0] for link in hist.chain] == ["v"]
    # A read-your-writes token for a write this replica already has.
    (ryw,) = collect(service, ClientRequest(4, "get", key="k", ryw=got.prov))
    assert ryw.status == "ok"


def test_service_leader_mode_redirects_non_leader() -> None:
    cluster = store_cluster()
    service = StoreService(cluster.app_at(2))
    (redirect,) = collect(
        service, ClientRequest(1, "get", key="k", read_mode="leader")
    )
    assert redirect.status == "not_leader" and redirect.leader_site == 0
    leader_service = StoreService(cluster.app_at(0))
    (served,) = collect(
        leader_service, ClientRequest(2, "get", key="k", read_mode="leader")
    )
    assert served.status == "missing"  # served, not redirected


# ---------------------------------------------------------------------------
# Key distributions
# ---------------------------------------------------------------------------


def test_key_dists_are_deterministic_per_seed() -> None:
    a = [ZipfianKeys(1_000_000, seed=3).sample() for _ in range(50)]
    b = [ZipfianKeys(1_000_000, seed=3).sample() for _ in range(50)]
    assert a == b
    assert [UniformKeys(100, seed=1).sample() for _ in range(20)] == [
        UniformKeys(100, seed=1).sample() for _ in range(20)
    ]


def test_zipfian_is_skewed_uniform_is_not() -> None:
    zipf = ZipfianKeys(100_000, seed=0)
    counts: dict[str, int] = {}
    for _ in range(2000):
        k = zipf.sample()
        counts[k] = counts.get(k, 0) + 1
    # YCSB theta=0.99: the hottest key takes a meaningful share.
    assert max(counts.values()) > 50
    uni = UniformKeys(100_000, seed=0)
    ucounts: dict[str, int] = {}
    for _ in range(2000):
        k = uni.sample()
        ucounts[k] = ucounts.get(k, 0) + 1
    assert max(ucounts.values()) <= 5


def test_make_key_dist_names() -> None:
    assert isinstance(make_key_dist("uniform", 10), UniformKeys)
    assert isinstance(make_key_dist("zipfian", 10), ZipfianKeys)
    with pytest.raises(ValueError):
        make_key_dist("pareto", 10)
    with pytest.raises(ValueError):
        make_key_dist("uniform", 0)


def test_load_spec_validation() -> None:
    with pytest.raises(ValueError):
        LoadSpec(rate=0)
    with pytest.raises(ValueError):
        LoadSpec(read_fraction=0.8, history_fraction=0.3)
    assert LoadSpec(rate=10, duration=3).total_ops == 30


def test_load_target_requires_addresses() -> None:
    with pytest.raises(ValueError):
        LoadTarget({})


# ---------------------------------------------------------------------------
# Open-loop load on the simulator
# ---------------------------------------------------------------------------


def test_openloop_sim_run_counts_and_histograms() -> None:
    cluster = store_cluster()
    spec = LoadSpec(
        rate=0.5, duration=400.0, clients=4, n_keys=64, read_fraction=0.7, seed=1
    )
    report = OpenLoopLoad(cluster, spec).run()
    assert report.offered == 200
    assert report.completed == report.offered
    assert report.ok == report.completed  # fault-free: nothing retries out
    verdict = slo_verdict(cluster, target_p99=100.0)
    assert verdict.count == report.completed
    assert verdict.met and verdict.p99 <= 100.0
    assert set(verdict.per_op) <= {"get", "put", "history"}
    snap = cluster.metrics_snapshot()
    assert snap.total("client_ops_total") == report.completed


def test_run_client_load_with_partition_keeps_acked_writes() -> None:
    cluster = store_cluster(n=5, seed=2)
    schedule = FaultSchedule()
    schedule.add(Partition(100.0, ((0, 1, 2), (3, 4))))
    schedule.add(Heal(400.0))
    spec = LoadSpec(
        rate=0.4, duration=600.0, clients=4, n_keys=32, read_fraction=0.6, seed=2
    )
    result = run_client_load(cluster, spec, schedule, slo_p99=200.0)
    assert result.load.completed == spec.total_ops
    assert result.workload.settled
    assert not result.workload.violations, result.workload.violations
    names = {r.name for r in result.workload.reports}
    assert "AckedWriteLoss" in names
    assert result.ok


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


def test_cli_parsers_for_client_tier() -> None:
    from repro.cli import build_parser

    parser = build_parser()
    run = parser.parse_args(
        ["run", "--client-rate", "2", "--no-faults", "--client-read-mode", "leader"]
    )
    assert run.client_rate == 2.0 and run.no_faults
    assert run.client_read_mode == "leader"
    serve = parser.parse_args(["serve", "--sites", "5", "--codec", "json"])
    assert serve.sites == 5 and serve.codec == "json"
    load = parser.parse_args(
        ["load", "--book", "0:h:1,1:h:2", "--rate", "50", "--dist", "uniform"]
    )
    assert load.rate == 50.0 and load.dist == "uniform"
    assert load.book == "0:h:1,1:h:2"


def test_cli_run_rejects_client_rate_with_other_app() -> None:
    from repro.cli import main

    with pytest.raises(SystemExit):
        main(["run", "--client-rate", "1", "--app", "file"])


def test_cli_run_sim_client_load_smoke(capsys) -> None:
    from repro.cli import main

    rc = main(
        [
            "run",
            "--sites",
            "3",
            "--duration",
            "120",
            "--client-rate",
            "0.2",
            "--client-keys",
            "16",
            "--no-faults",
            "--seed",
            "5",
        ]
    )
    out = capsys.readouterr().out
    assert rc == 0, out
    assert "open-loop client load" in out
    assert "SLO" in out
