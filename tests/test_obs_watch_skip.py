"""Watch poll loops skip down nodes instead of aborting.

Regression coverage for the ``repro obs watch`` crash: a node dying
mid-read surfaces as :class:`asyncio.IncompleteReadError`, which is an
``EOFError`` — *not* an ``OSError`` — so the old per-node error net
let it abort the whole poll round.  These tests drive the poll helpers
with every skip-class failure and check the loop survives, yields
``None`` for the dead node, and counts skips in the
``watch_nodes_skipped_total`` gauge.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import CodecError
from repro.obs import watch as watch_mod
from repro.obs.registry import MetricsRegistry
from repro.obs.snapshot import MetricsSnapshot


def _snapshot(source: str) -> MetricsSnapshot:
    return MetricsSnapshot(source=source, runtime="realnet", time=1.0, samples=())


_FAILURES = [
    asyncio.IncompleteReadError(partial=b"\x00", expected=4),  # died mid-read
    ConnectionRefusedError("refused"),  # socket down
    ConnectionResetError("reset"),
    OSError("no route"),
    CodecError("garbled reply"),
    asyncio.TimeoutError(),  # no answer inside the window
]


@pytest.mark.parametrize(
    "failure", _FAILURES, ids=lambda exc: type(exc).__name__
)
def test_one_dead_node_never_aborts_the_round(monkeypatch, failure):
    async def fake_fetch(host, port, *, codec="bin", timeout=5.0):
        if port == 2:
            raise failure
        return _snapshot(f"site{port}")

    monkeypatch.setattr(watch_mod, "fetch_snapshot", fake_fetch)
    skips = []
    snapshots = asyncio.run(
        watch_mod.fetch_snapshots(
            [("h", 1), ("h", 2), ("h", 3)], on_skip=lambda: skips.append(1)
        )
    )
    assert [s is None for s in snapshots] == [False, True, False]
    assert len(skips) == 1


def test_fetch_traces_skips_dead_nodes_too(monkeypatch):
    async def fake_fetch(host, port, *, codec="bin", timeout=5.0):
        raise asyncio.IncompleteReadError(partial=b"x", expected=4)

    monkeypatch.setattr(watch_mod, "fetch_trace", fake_fetch)
    dumps = asyncio.run(watch_mod.fetch_traces([("h", 1), ("h", 2)]))
    assert dumps == [None, None]


def test_watch_loop_counts_skips_in_the_gauge(monkeypatch):
    calls = {"n": 0}

    async def fake_fetch(host, port, *, codec="bin", timeout=5.0):
        calls["n"] += 1
        if port == 2:  # one persistently down node
            raise asyncio.IncompleteReadError(partial=b"", expected=4)
        return _snapshot(f"site{port}")

    monkeypatch.setattr(watch_mod, "fetch_snapshot", fake_fetch)
    registry = MetricsRegistry(clock=lambda: 0.0, runtime="watch")
    frames: list[str] = []
    code = watch_mod.watch(
        [("h", 1), ("h", 2)],
        interval=0.0,
        count=3,
        out=frames.append,
        registry=registry,
    )
    assert code == 0  # the live node kept the watch alive
    assert calls["n"] == 6  # skipped node is retried every round
    snap = registry.snapshot("watch")
    gauge = [s for s in snap.samples if s.name == "watch_nodes_skipped_total"]
    assert gauge and gauge[0].value == 3.0
    assert any("skipped node polls so far: 3" in frame for frame in frames)
    assert any("unreachable" in frame for frame in frames)


def test_watch_returns_nonzero_when_every_node_is_down(monkeypatch):
    async def fake_fetch(host, port, *, codec="bin", timeout=5.0):
        raise ConnectionRefusedError

    monkeypatch.setattr(watch_mod, "fetch_snapshot", fake_fetch)
    registry = MetricsRegistry(clock=lambda: 0.0, runtime="watch")
    code = watch_mod.watch(
        [("h", 1)], interval=0.0, count=1, out=lambda _line: None,
        registry=registry,
    )
    assert code == 1
