"""Tests for subview-scoped multicast and Skeen-safe state creation."""

from __future__ import annotations

from repro.core.group_object import GroupObject
from repro.core.mode_functions import QuorumModeFunction
from repro.core.modes import Mode
from repro.runtime.cluster import Cluster, ClusterConfig
from repro.vsync.events import GroupApplication

from tests.conftest import assert_all_properties, settled_cluster


class Collector(GroupApplication):
    def __init__(self) -> None:
        super().__init__()
        self.got: list = []

    def on_message(self, sender, payload, msg_id) -> None:
        self.got.append(payload)


# ---------------------------------------------------------------------------
# Subview-scoped multicast
# ---------------------------------------------------------------------------


def scoped_cluster() -> Cluster:
    cluster = Cluster(4, app_factory=lambda pid: Collector())
    assert cluster.settle(timeout=500)
    return cluster


def test_scoped_multicast_reaches_only_subview_members():
    cluster = scoped_cluster()
    lead = cluster.stack_at(0)
    # Build a two-member subview {p0, p1}.
    structure = lead.eview.structure
    lead.sv_set_merge([structure.svset_of(cluster.stack_at(s).pid).ssid for s in (0, 1)])
    cluster.run_for(15)
    structure = lead.eview.structure
    lead.subview_merge(
        [structure.subview_of(cluster.stack_at(s).pid).sid for s in (0, 1)]
    )
    cluster.run_for(15)
    lead.multicast_subview("subview-only")
    cluster.run_for(15)
    assert "subview-only" in cluster.apps[0].got
    assert "subview-only" in cluster.apps[1].got
    assert "subview-only" not in cluster.apps[2].got
    assert "subview-only" not in cluster.apps[3].got


def test_scoped_multicast_on_singleton_subview_is_local():
    cluster = scoped_cluster()
    cluster.stack_at(2).multicast_subview("me-only")
    cluster.run_for(15)
    assert cluster.apps[2].got == ["me-only"]
    assert cluster.apps[0].got == []


def test_scoped_multicast_keeps_vs_properties():
    """Scoping is an application-level filter: at the VS level the
    message is a normal view multicast and all properties still hold."""
    cluster = scoped_cluster()
    cluster.stack_at(1).multicast_subview("scoped")
    cluster.stack_at(0).multicast("plain")
    cluster.run_for(15)
    cluster.crash(3)
    assert cluster.settle(timeout=500)
    assert_all_properties(cluster.recorder)


def test_scoped_multicast_before_view_returns_none():
    cluster = Cluster(2, app_factory=lambda pid: Collector(), auto_start=False)
    stack = cluster.start_site(0)
    # The singleton bootstrap view exists immediately, so scoping works,
    # delivering locally.
    assert stack.multicast_subview("early") is not None


# ---------------------------------------------------------------------------
# Skeen-safe creation (creation_requires_all_sites)
# ---------------------------------------------------------------------------


class PersistentKv(GroupObject):
    def __init__(self, require_all: bool) -> None:
        super().__init__(
            QuorumModeFunction.uniform(range(5)),
            creation_requires_all_sites=require_all,
        )
        self.data: dict = {}

    def bind(self, stack) -> None:
        super().bind(stack)
        stored = stack.storage.read("kv")
        if stored is not None:
            self.data = stored

    def snapshot_state(self):
        return dict(self.data)

    def adopt_state(self, state):
        self.data = dict(state)
        self.stack.storage.write("kv", self.data)

    def apply_op(self, sender, op, msg_id):
        self.data[op[0]] = op[1]
        self.stack.storage.write("kv", self.data)

    def merge_app_states(self, offers):
        merged: dict = {}
        for offer in sorted(offers, key=lambda o: (o.version, o.sender)):
            merged.update(offer.state)
        return merged


def total_failure_partial_recovery(require_all: bool) -> Cluster:
    cluster = Cluster(
        5,
        app_factory=lambda pid: PersistentKv(require_all),
        config=ClusterConfig(seed=1),
    )
    assert cluster.settle(timeout=500)
    cluster.run_for(200)
    # Site 4 is the last to fail and holds the freshest state.
    cluster.apps[0].submit_op(("k", "old"))
    cluster.run_for(30)
    for site in (0, 1, 2, 3):
        cluster.crash(site)
    cluster.run_for(30)
    cluster.apps[4].data["k"] = "newest"  # local update persisted below
    cluster.apps[4].stack.storage.write("kv", cluster.apps[4].data)
    cluster.crash(4)
    cluster.run_for(50)
    # Only a quorum recovers at first; site 4 (last to fail) stays down.
    for site in (0, 1, 2):
        cluster.recover(site)
    assert cluster.settle(timeout=600)
    cluster.run_for(300)
    return cluster


def test_unsafe_creation_proceeds_with_quorum_and_loses_newest_state():
    cluster = total_failure_partial_recovery(require_all=False)
    assert cluster.apps[0].mode is Mode.NORMAL
    assert cluster.apps[0].data.get("k") == "old"  # site 4's update lost


def test_skeen_safe_creation_waits_for_last_process_to_fail():
    cluster = total_failure_partial_recovery(require_all=True)
    # Without every site present, creation is deferred: nobody is N.
    assert all(
        cluster.apps[s].mode is not Mode.NORMAL for s in (0, 1, 2)
    )
    waits = cluster.recorder.app_events("settle_wait_all_sites")
    assert waits
    # Now the last process to fail recovers; creation proceeds and its
    # state (the freshest persisted one) wins.
    cluster.recover(3)
    cluster.recover(4)
    assert cluster.settle(timeout=700)
    cluster.run_for(400)
    for site in range(5):
        assert cluster.apps[site].mode is Mode.NORMAL, site
        assert cluster.apps[site].data.get("k") == "newest"
