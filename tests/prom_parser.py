"""Minimal Prometheus text-exposition parser (test helper, no deps).

Just enough of the text format 0.0.4 to *validate* what
:func:`repro.obs.export.to_prometheus` writes: ``# HELP`` / ``# TYPE``
comment lines, sample lines with optional ``{label="value"}`` sets
(with ``\\``, ``\"`` and ``\n`` escapes), and the special values
``+Inf`` / ``-Inf`` / ``NaN``.  Raises :class:`ValueError` on anything
malformed, so the CI obs-smoke step fails loudly if the exposition
ever stops parsing.

Used by ``tests/test_obs_export.py`` and by the CI obs-smoke steps,
which run a checked workload with ``--metrics out.prom`` and parse the
result with this module.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field

_NAME = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
_KINDS = ("counter", "gauge", "histogram", "summary", "untyped")
_ESCAPES = {"\\": "\\", '"': '"', "n": "\n"}


@dataclass
class Exposition:
    """Parsed exposition: family types/helps plus every sample line."""

    types: dict[str, str] = field(default_factory=dict)
    helps: dict[str, str] = field(default_factory=dict)
    #: ``(name, labels, value)`` per sample line, in file order.
    samples: list[tuple[str, dict[str, str], float]] = field(default_factory=list)

    def value(self, name: str, **labels: str) -> float:
        """The unique sample matching ``name`` and a label subset."""
        matches = [
            v
            for n, l, v in self.samples
            if n == name and all(l.get(k) == want for k, want in labels.items())
        ]
        if len(matches) != 1:
            raise KeyError(f"{name}{labels}: {len(matches)} matches")
        return matches[0]

    def names(self) -> set[str]:
        return {name for name, _labels, _value in self.samples}


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    return float(text)  # raises ValueError on junk


def _parse_labels(text: str) -> dict[str, str]:
    labels: dict[str, str] = {}
    i = 0
    while i < len(text):
        match = _NAME.match(text, i)
        if match is None:
            raise ValueError(f"bad label name at {text[i:]!r}")
        key = match.group(0)
        i = match.end()
        if text[i : i + 2] != '="':
            raise ValueError(f"expected '=\"' after label {key!r}")
        i += 2
        chars: list[str] = []
        while True:
            if i >= len(text):
                raise ValueError(f"unterminated label value for {key!r}")
            ch = text[i]
            if ch == "\\":
                esc = text[i + 1 : i + 2]
                if esc not in _ESCAPES:
                    raise ValueError(f"bad escape \\{esc} in label {key!r}")
                chars.append(_ESCAPES[esc])
                i += 2
            elif ch == '"':
                i += 1
                break
            else:
                chars.append(ch)
                i += 1
        labels[key] = "".join(chars)
        if i < len(text):
            if text[i] != ",":
                raise ValueError(f"expected ',' between labels at {text[i:]!r}")
            i += 1
    return labels


def parse(text: str) -> Exposition:
    """Parse exposition ``text``; raise :class:`ValueError` if malformed."""
    out = Exposition()
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ", 3)
            if len(parts) != 4 or parts[3] not in _KINDS:
                raise ValueError(f"bad TYPE line: {line!r}")
            out.types[parts[2]] = parts[3]
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4:
                raise ValueError(f"bad HELP line: {line!r}")
            out.helps[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue  # other comments are legal and ignored
        match = _NAME.match(line)
        if match is None:
            raise ValueError(f"bad sample line: {line!r}")
        name = match.group(0)
        rest = line[match.end() :]
        labels: dict[str, str] = {}
        if rest.startswith("{"):
            end = rest.rindex("}")
            labels = _parse_labels(rest[1:end])
            rest = rest[end + 1 :]
        fields = rest.split()
        if not fields:
            raise ValueError(f"sample line without a value: {line!r}")
        out.samples.append((name, labels, _parse_value(fields[0])))
    return out


def validate(exposition: Exposition) -> None:
    """Structural invariants of a well-formed exposition.

    Every sample belongs to a typed family, and each histogram series
    has cumulative non-decreasing buckets whose ``+Inf`` bucket equals
    its ``_count``.
    """
    hist = {n for n, kind in exposition.types.items() if kind == "histogram"}

    def family(name: str) -> str:
        for base in hist:
            if name in (f"{base}_bucket", f"{base}_sum", f"{base}_count"):
                return base
        return name

    for name, _labels, _value in exposition.samples:
        if family(name) not in exposition.types:
            raise ValueError(f"sample {name!r} has no TYPE line")

    for base in hist:
        series: dict[tuple, list[tuple[float, float]]] = {}
        counts: dict[tuple, float] = {}
        for name, labels, value in exposition.samples:
            key = tuple(
                sorted((k, v) for k, v in labels.items() if k != "le")
            )
            if name == f"{base}_bucket":
                series.setdefault(key, []).append(
                    (_parse_value(labels["le"]), value)
                )
            elif name == f"{base}_count":
                counts[key] = value
        for key, buckets in series.items():
            buckets.sort()
            cum = [c for _le, c in buckets]
            if cum != sorted(cum):
                raise ValueError(f"{base}{key}: buckets not cumulative")
            if not math.isinf(buckets[-1][0]):
                raise ValueError(f"{base}{key}: missing +Inf bucket")
            if key in counts and buckets[-1][1] != counts[key]:
                raise ValueError(f"{base}{key}: +Inf bucket != _count")
