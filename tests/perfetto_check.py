"""Dependency-free validator for Chrome/Perfetto trace-event JSON.

Used by the obs-tracing tests and the CI obs-trace smoke step to check
that ``repro obs trace --perfetto`` emits a file the Perfetto UI will
load: a JSON object with a ``traceEvents`` array whose entries carry
the phase-appropriate required keys.  Only the standard library is
used, so the check runs anywhere CI does.

Runnable directly: ``python tests/perfetto_check.py FILE`` exits
non-zero with a message on the first malformed event.
"""

from __future__ import annotations

import json
import sys

#: Keys every event must carry, by phase ("M" metadata, "X" complete,
#: "i" instant).  https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
_REQUIRED = {
    "M": {"name", "pid", "tid", "args"},
    "X": {"name", "cat", "pid", "tid", "ts", "dur"},
    "i": {"name", "cat", "pid", "tid", "ts", "s"},
}


def validate_perfetto(payload) -> dict:
    """Validate a parsed trace-event payload; raises ValueError.

    Returns summary stats: counts per phase and the set of span names.
    """
    if not isinstance(payload, dict):
        raise ValueError("top level must be a JSON object")
    events = payload.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise ValueError("traceEvents must be a non-empty array")
    stats = {"metadata": 0, "complete": 0, "instant": 0, "names": set()}
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"event {index}: not an object")
        phase = event.get("ph")
        required = _REQUIRED.get(phase)
        if required is None:
            raise ValueError(f"event {index}: unsupported phase {phase!r}")
        missing = required - set(event)
        if missing:
            raise ValueError(f"event {index}: missing keys {sorted(missing)}")
        if phase == "M":
            stats["metadata"] += 1
            continue
        if not isinstance(event["ts"], (int, float)) or event["ts"] < 0:
            raise ValueError(f"event {index}: bad ts {event['ts']!r}")
        if phase == "X":
            if not isinstance(event["dur"], (int, float)) or event["dur"] < 0:
                raise ValueError(f"event {index}: bad dur {event['dur']!r}")
            stats["complete"] += 1
        else:
            stats["instant"] += 1
        stats["names"].add(event["name"])
    if not stats["complete"] + stats["instant"]:
        raise ValueError("no span events (only metadata)")
    return stats


def validate_perfetto_file(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        return validate_perfetto(json.load(fh))


if __name__ == "__main__":
    if len(sys.argv) != 2:
        sys.exit(f"usage: {sys.argv[0]} TRACE_JSON")
    try:
        result = validate_perfetto_file(sys.argv[1])
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        sys.exit(f"perfetto check FAILED: {exc}")
    print(
        f"perfetto check ok: {result['complete']} complete + "
        f"{result['instant']} instant events, "
        f"{len(result['names'])} span names"
    )
