"""Systematic fault-injection sweeps.

Rather than hoping a random schedule hits the bad instant, these tests
crash a chosen process at *every* offset in a window around a protocol
event (a heal-triggered settlement; a view change), asserting that the
system always converges afterwards and never violates safety.  This is
the deterministic-simulator payoff: the sweep is exhaustive over the
offsets, and each point is replayable.
"""

from __future__ import annotations

import pytest

from repro.apps.replicated_file import ReplicatedFile
from repro.core.modes import Mode
from repro.runtime.cluster import Cluster, ClusterConfig

from tests.conftest import assert_all_properties


def file_cluster(seed: int = 0) -> Cluster:
    votes = {s: 1 for s in range(5)}
    cluster = Cluster(
        5,
        app_factory=lambda pid: ReplicatedFile(votes),
        config=ClusterConfig(seed=seed),
    )
    assert cluster.settle(timeout=500)
    cluster.run_for(150)
    return cluster


@pytest.mark.parametrize("offset", [0, 3, 6, 9, 12, 15, 20, 30])
def test_leader_crash_at_every_settlement_phase(offset):
    """Partition, write, heal — then kill the settlement leader exactly
    ``offset`` units into the repair.  Whatever phase dies (sv-set merge,
    state request, offers, adopt, subview merge), the survivors must
    reconverge to NORMAL with the quorum's data intact."""
    cluster = file_cluster(seed=offset)
    cluster.apps[0].write("doc", "v1")
    cluster.run_for(30)
    cluster.partition([[0, 1, 2], [3, 4]])
    assert cluster.settle(timeout=500)
    cluster.run_for(120)
    cluster.apps[1].write("doc", "v2")
    cluster.run_for(30)
    cluster.heal()
    cluster.run_for(offset)
    cluster.crash(0)  # the settlement leader (least member)
    assert cluster.settle(timeout=900), cluster.views()
    cluster.run_for(400)
    cluster.settle(timeout=400)
    live = [s for s in range(1, 5) if cluster.stacks[s].alive]
    for site in live:
        assert cluster.apps[site].mode is Mode.NORMAL, (offset, site)
        assert cluster.apps[site].read("doc") == "v2", (offset, site)
    assert_all_properties(cluster.recorder)


@pytest.mark.parametrize("offset", [0, 2, 4, 6, 8, 10])
def test_joiner_crash_at_every_transfer_phase(offset):
    """A fresh joiner dies mid-absorption; the group must not wedge."""
    cluster = file_cluster(seed=100 + offset)
    cluster.apps[0].write("doc", "stable")
    cluster.run_for(30)
    cluster.join(5)
    cluster.run_for(offset)
    cluster.crash(5)
    assert cluster.settle(timeout=900), cluster.views()
    cluster.run_for(300)
    for site in range(5):
        assert cluster.apps[site].mode is Mode.NORMAL, (offset, site)
    assert_all_properties(cluster.recorder)


@pytest.mark.parametrize("offset", [1, 5, 9, 13])
def test_double_fault_during_view_change(offset):
    """A second crash while the first one's view change is running."""
    cluster = file_cluster(seed=200 + offset)
    cluster.crash(4)
    cluster.run_for(offset)
    cluster.crash(3)
    assert cluster.settle(timeout=900), cluster.views()
    cluster.run_for(300)
    members = {p.site for p in cluster.stack_at(0).view.members}
    assert members == {0, 1, 2}
    for site in (0, 1, 2):
        assert cluster.apps[site].mode is Mode.NORMAL
    assert_all_properties(cluster.recorder)
