"""Tests for the causal and total ordering layers."""

from __future__ import annotations

from typing import Any

from repro.runtime.cluster import Cluster, ClusterConfig
from repro.types import ProcessId
from repro.vsync.events import GroupApplication
from repro.vsync.ordering import CausalOrderApp, TotalOrderApp


class Log(GroupApplication):
    def __init__(self) -> None:
        super().__init__()
        self.delivered: list[tuple[ProcessId, Any]] = []

    def on_message(self, sender, payload, msg_id) -> None:
        self.delivered.append((sender, payload))


def causal_cluster(n: int = 3, seed: int = 0) -> Cluster:
    cluster = Cluster(
        n,
        app_factory=lambda pid: CausalOrderApp(Log()),
        config=ClusterConfig(seed=seed),
    )
    assert cluster.settle(timeout=500)
    return cluster


def total_cluster(n: int = 3, seed: int = 0) -> Cluster:
    cluster = Cluster(
        n,
        app_factory=lambda pid: TotalOrderApp(Log()),
        config=ClusterConfig(seed=seed),
    )
    assert cluster.settle(timeout=500)
    return cluster


def test_causal_delivery_basic():
    cluster = causal_cluster()
    cluster.apps[0].cbcast("hello")
    cluster.run_for(20)
    for site in range(3):
        inner = cluster.apps[site].inner
        assert [p for _, p in inner.delivered] == ["hello"]


def test_causal_chain_respected():
    """B's reply, causally after A's question, is never delivered before
    it at any process."""
    cluster = causal_cluster()

    replied = []

    class Replier(CausalOrderApp):
        pass

    # Drive causality by hand: 0 sends, after delivery 1 replies.
    app1 = cluster.apps[1]
    original = app1.inner.on_message

    def reply_once(sender, payload, msg_id):
        original(sender, payload, msg_id)
        if payload == "question" and not replied:
            replied.append(True)
            app1.cbcast("answer")

    app1.inner.on_message = reply_once
    cluster.apps[0].cbcast("question")
    cluster.run_for(40)
    for site in range(3):
        payloads = [p for _, p in cluster.apps[site].inner.delivered]
        assert payloads.index("question") < payloads.index("answer")


def test_causal_sender_fifo():
    cluster = causal_cluster()
    for i in range(8):
        cluster.apps[2].cbcast(i)
    cluster.run_for(40)
    for site in range(3):
        payloads = [p for _, p in cluster.apps[site].inner.delivered]
        assert payloads == list(range(8))


def test_causal_clock_resets_on_view_change():
    cluster = causal_cluster()
    cluster.apps[0].cbcast("pre")
    cluster.run_for(20)
    cluster.crash(2)
    assert cluster.settle(timeout=500)
    cluster.apps[0].cbcast("post")
    cluster.run_for(20)
    payloads = [p for _, p in cluster.apps[1].inner.delivered]
    assert payloads == ["pre", "post"]


def test_total_order_identical_sequences():
    cluster = total_cluster(4, seed=3)
    for i in range(5):
        cluster.apps[i % 4].tobcast(("m", i))
    cluster.run_for(60)
    sequences = [
        [p for _, p in cluster.apps[s].inner.delivered] for s in range(4)
    ]
    assert all(seq == sequences[0] for seq in sequences)
    assert len(sequences[0]) == 5


def test_total_order_preserves_origin():
    cluster = total_cluster()
    cluster.apps[2].tobcast("from-two")
    cluster.run_for(30)
    sender, payload = cluster.apps[0].inner.delivered[0]
    assert sender == cluster.stack_at(2).pid
    assert payload == "from-two"


def test_total_order_resubmits_after_view_change():
    """A submission in flight when the sequencer dies is re-sent to the
    new coordinator (at-least-once; dedup is the app's business)."""
    cluster = total_cluster(3, seed=1)
    cluster.crash(0)  # kill the coordinator
    cluster.apps[1].tobcast("survivor")
    assert cluster.settle(timeout=500)
    cluster.run_for(60)
    payloads = [p for _, p in cluster.apps[2].inner.delivered]
    assert "survivor" in payloads


def test_ordering_layers_forward_views_to_inner():
    cluster = total_cluster()
    inner = cluster.apps[0].inner
    assert inner.stack is cluster.stack_at(0)
