"""Zero-copy wire path units: packer table, in-place framing, offset decode.

Tier-1 (socket-free) coverage for the PR-6 data-path rework of
:mod:`repro.realnet.codec_bin` and the transport batch packing built on
it:

* the precomputed class-id -> packer table covers every registered
  payload class and refreshes when the registry grows;
* ``frame_msg_into`` produces byte-identical frames to ``frame_msg``
  (the wire layout is unchanged), rolls back cleanly on a cap
  violation, and packs multi-frame batches that the offset-walking
  ``parse_msg_at`` decodes without per-frame body copies;
* truncated frames, lying lengths and cross-frame overruns all surface
  as :class:`CodecError` — never a wrong value, never a raw
  ``IndexError``/``struct.error`` out of the decoder;
* buffer compaction after synchronous dispatch (the receive-loop
  pattern) never corrupts already-decoded payloads;
* the supervised-node control frames (:mod:`repro.realnet.procnode`)
  round-trip under both codecs.

The sample list is imported from ``test_realnet_codec_bin`` so its
"covers every registered class" assertion keeps this file honest too.
"""

from __future__ import annotations

import random
import struct

import pytest

from repro.errors import CodecError
from repro.realnet.codec import MAX_FRAME_BYTES, _LEN, registered_payloads
from repro.realnet.codec_bin import (
    BIN_FORMAT,
    JSON_FORMAT,
    BinWireFormat,
    decode_value_bin,
    encode_value_bin,
    packer_table,
)
from repro.realnet.procnode import (
    ctl_reply_frame,
    ctl_request_frame,
    parse_ctl_reply,
    parse_ctl_request,
)
from tests.test_realnet_codec_bin import _samples

FORMATS = (JSON_FORMAT, BIN_FORMAT)


# ---------------------------------------------------------------------------
# Packer table
# ---------------------------------------------------------------------------


def test_packer_table_covers_every_registered_class():
    table = packer_table()
    names = {cls.__name__ for cls in table if hasattr(cls, "__dataclass_fields__")}
    assert names == set(registered_payloads())


def test_packer_table_refreshes_when_the_registry_grows(monkeypatch):
    import dataclasses

    from repro.realnet import codec

    @dataclasses.dataclass(frozen=True)
    class _ZcProbe:
        x: int

    before = packer_table()
    assert _ZcProbe not in before
    monkeypatch.setitem(codec._REGISTRY, "_ZcProbe", _ZcProbe)
    try:
        after = packer_table()
        assert _ZcProbe in after
        assert decode_value_bin(encode_value_bin(_ZcProbe(7))) == _ZcProbe(7)
    finally:
        # monkeypatch restores _REGISTRY; drop the stale packer table too
        # so later tests rebuild it against the clean registry.
        codec._REGISTRY.pop("_ZcProbe", None)
        packer_table()


@pytest.mark.parametrize("payload", _samples(), ids=lambda p: type(p).__name__)
def test_packer_output_roundtrips_for_every_class(payload):
    assert decode_value_bin(encode_value_bin(payload)) == payload


def test_encoder_still_rejects_unregistered_types():
    class _Alien:
        pass

    with pytest.raises(CodecError):
        encode_value_bin(_Alien())


def test_bool_and_int_subclasses_take_the_fallback_path():
    class _MyInt(int):
        pass

    assert decode_value_bin(encode_value_bin(_MyInt(41))) == 41
    assert decode_value_bin(encode_value_bin(True)) is True


# ---------------------------------------------------------------------------
# frame_msg_into == frame_msg, on both formats
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("fmt", FORMATS, ids=lambda f: f.name)
@pytest.mark.parametrize("dst_inc", [None, 0, 3])
def test_frame_msg_into_matches_frame_msg(fmt, dst_inc):
    payload = fmt.encode_payload(("client", 3, {"k": [1, 2.5]}))
    whole = fmt.frame_msg((2, 1), 5, dst_inc, payload)
    out = bytearray(b"prefix")
    fmt.frame_msg_into(out, (2, 1), 5, dst_inc, payload)
    assert bytes(out[len(b"prefix"):]) == whole
    (length,) = _LEN.unpack_from(whole, 0)
    assert length == len(whole) - 4


def test_bin_header_cache_is_layout_transparent():
    fmt = BinWireFormat()  # fresh instance: empty header cache
    payload = fmt.encode_payload("x")
    first = fmt.frame_msg((1, 0), 2, 7, payload)
    again = fmt.frame_msg((1, 0), 2, 7, payload)  # cached header path
    other = fmt.frame_msg((1, 1), 2, 7, payload)  # different src
    assert first == again
    assert first != other
    parsed = fmt.parse_msg(other[4:])
    assert (parsed.src_site, parsed.src_inc) == (1, 1)


def test_frame_msg_into_rolls_back_on_cap_violation():
    out = bytearray(b"keep")
    huge = b"\x05" + b"x" * MAX_FRAME_BYTES  # raw oversized pseudo-payload
    with pytest.raises(CodecError, match="exceeds cap"):
        BIN_FORMAT.frame_msg_into(out, (0, 0), 1, 0, huge)
    assert out == b"keep"  # no partial frame left behind


# ---------------------------------------------------------------------------
# parse_msg_at: offset walking over shared buffers
# ---------------------------------------------------------------------------


def _pack_batch(fmt, messages):
    """Pack [(src, dst_site, dst_inc, payload), ...] like the send path."""
    batch = bytearray()
    extents = []
    for src, dst_site, dst_inc, payload in messages:
        base = len(batch)
        fmt.frame_msg_into(batch, src, dst_site, dst_inc, fmt.encode_payload(payload))
        extents.append((base + 4, len(batch)))
    return batch, extents


@pytest.mark.parametrize("fmt", FORMATS, ids=lambda f: f.name)
def test_parse_msg_at_walks_a_multi_frame_batch(fmt):
    messages = [
        ((0, 0), 1, 0, ("client", 0, 1)),
        ((0, 0), 1, None, {"op": "put", "k": (1, 2.5)}),
        ((2, 3), 1, 0, "x" * 200),
    ]
    batch, extents = _pack_batch(fmt, messages)
    for (start, end), (src, dst_site, dst_inc, payload) in zip(extents, messages):
        parsed = fmt.parse_msg_at(batch, start, end)
        assert (parsed.src_site, parsed.src_inc) == src
        assert (parsed.dst_site, parsed.dst_inc) == (dst_site, dst_inc)
        assert parsed.payload() == payload


def test_parse_msg_at_every_registered_payload_at_offsets():
    """Every wire dataclass decodes from mid-buffer extents in one batch."""
    samples = _samples()
    batch, extents = _pack_batch(
        BIN_FORMAT, [((0, 0), 1, 0, payload) for payload in samples]
    )
    for (start, end), payload in zip(extents, samples):
        assert BIN_FORMAT.parse_msg_at(batch, start, end).payload() == payload


def test_parse_msg_at_empty_extent_is_truncated():
    with pytest.raises(CodecError, match="truncated"):
        BIN_FORMAT.parse_msg_at(bytearray(b"anything"), 3, 3)


def test_parse_msg_at_short_extent_never_reads_the_next_frame():
    """An ``end`` that lies short must raise, not decode the neighbour."""
    messages = [((0, 0), 1, 0, (1, 2, 3)), ((0, 0), 1, 0, "neighbour")]
    batch, extents = _pack_batch(BIN_FORMAT, messages)
    start, end = extents[0]
    for short_end in range(start, end):
        try:
            parsed = BIN_FORMAT.parse_msg_at(batch, start, short_end)
            parsed.payload()
        except CodecError:
            continue
        pytest.fail(f"extent [{start}:{short_end}] decoded without error")


def test_parse_msg_at_long_extent_reports_trailing_bytes():
    batch, extents = _pack_batch(BIN_FORMAT, [((0, 0), 1, 0, (1, 2))])
    start, end = extents[0]
    batch += b"\x00\x00"
    with pytest.raises(CodecError, match="trailing bytes"):
        BIN_FORMAT.parse_msg_at(batch, start, end + 2).payload()


def test_parse_msg_at_fuzzed_truncations_all_raise_codec_error():
    """Seeded sweep: any truncation point raises CodecError, never a raw
    IndexError/struct.error and never a silently wrong value."""
    rng = random.Random(7)
    samples = _samples()
    for _ in range(200):
        payload = rng.choice(samples)
        body = BIN_FORMAT.frame_msg((1, 0), 2, 0, BIN_FORMAT.encode_payload(payload))[4:]
        cut = rng.randrange(0, len(body))
        buf = bytearray(body[:cut])
        try:
            parsed = BIN_FORMAT.parse_msg_at(buf, 0, len(buf))
            if parsed is not None:
                parsed.payload()
        except CodecError:
            continue
        except (IndexError, struct.error) as exc:  # pragma: no cover
            pytest.fail(f"raw {type(exc).__name__} leaked at cut={cut}")
        # A cut that still parses must have hit a prefix that is itself
        # a complete frame; for a tagged positional codec that can only
        # be the full body.
        assert cut == len(body)


def test_future_frame_kinds_are_ignored_not_fatal():
    body = bytearray([0x7F]) + b"whatever"
    assert BIN_FORMAT.parse_msg_at(body, 0, len(body)) is None


def test_compaction_after_dispatch_keeps_decoded_payloads():
    """The receive-loop contract: payload() before compaction; values
    survive the buffer being compacted and refilled afterwards."""
    messages = [((0, 0), 1, 0, ["a", 1]), ((0, 0), 1, 0, {"b": (2.5, "c")})]
    batch, extents = _pack_batch(BIN_FORMAT, messages)
    decoded = [
        BIN_FORMAT.parse_msg_at(batch, start, end).payload()
        for start, end in extents
    ]
    del batch[:]  # compact
    batch += b"\xff" * 64  # recycle with garbage
    assert decoded == [["a", 1], {"b": (2.5, "c")}]


# ---------------------------------------------------------------------------
# Control frames (supervised nodes)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("fmt", FORMATS, ids=lambda f: f.name)
def test_ctl_request_roundtrips(fmt):
    frame = ctl_request_frame(fmt, "mcast_many", (32, ("client", 0, 1)))
    (length,) = _LEN.unpack(frame[:4])
    body = frame[4:]
    assert length == len(body)
    assert parse_ctl_request(fmt, body) == ("mcast_many", (32, ("client", 0, 1)))
    # a ctl body is not a msg frame and must be ignored by the msg parser
    assert fmt.parse_msg_at(bytearray(body), 0, len(body)) is None


@pytest.mark.parametrize("fmt", FORMATS, ids=lambda f: f.name)
def test_ctl_reply_roundtrips(fmt):
    frame = ctl_reply_frame(fmt, True, {"site": 3, "alive": True})
    ok, result = parse_ctl_reply(fmt, frame[4:])
    assert ok is True
    assert result == {"site": 3, "alive": True}
    frame = ctl_reply_frame(fmt, False, "SimulationError: nope")
    assert parse_ctl_reply(fmt, frame[4:]) == (False, "SimulationError: nope")


@pytest.mark.parametrize("fmt", FORMATS, ids=lambda f: f.name)
def test_ctl_parsers_ignore_other_frame_kinds(fmt):
    msg = fmt.frame_msg((0, 0), 1, 0, fmt.encode_payload("x"))[4:]
    assert parse_ctl_request(fmt, msg) is None
    assert parse_ctl_reply(fmt, msg) is None
