"""Tests for the reachability-aware mode function of the Isis baseline
and the periodic mode re-evaluation hook that drives it."""

from __future__ import annotations

from repro.core.group_object import GroupObject
from repro.core.mode_functions import Capability, DynamicPrimaryModeFunction
from repro.core.modes import Mode
from repro.isis import isis_stack_config
from repro.runtime.cluster import Cluster, ClusterConfig


class Obj(GroupObject):
    def __init__(self):
        super().__init__(DynamicPrimaryModeFunction(range(5)))
        self.data = {}

    def snapshot_state(self):
        return dict(self.data)

    def adopt_state(self, state):
        self.data = dict(state)

    def apply_op(self, sender, op, msg_id):
        self.data[op[0]] = op[1]


def isis_cluster() -> Cluster:
    config = ClusterConfig(seed=0, stack=isis_stack_config())
    cluster = Cluster(5, app_factory=lambda pid: Obj(), config=config)
    cluster.run_for(600)
    return cluster


def test_primary_members_reach_normal():
    cluster = isis_cluster()
    for site in range(5):
        assert cluster.apps[site].mode is Mode.NORMAL, site


def test_stranded_member_demotes_itself_without_a_view():
    """A process frozen in a stale majority view (linear membership
    gives it no further views) must still drop out of N-mode once its
    detector shows it cannot assemble a majority."""
    cluster = isis_cluster()
    cluster.partition([[0, 1, 2], [3, 4]])
    cluster.run_for(100)
    # Sites 3,4 never install a new view (minority blocks) ...
    assert len(cluster.stack_at(3).view.members) == 5
    # ... yet their apps noticed and dropped to REDUCED.
    assert cluster.apps[3].mode is Mode.REDUCED
    assert cluster.apps[4].mode is Mode.REDUCED
    assert not cluster.apps[3].can_submit(("k", 1))
    # The majority side keeps serving.
    assert cluster.apps[0].mode is Mode.NORMAL


def test_stranded_member_recovers_capability_after_heal():
    cluster = isis_cluster()
    cluster.partition([[0, 1, 2], [3, 4]])
    cluster.run_for(150)
    cluster.heal()
    cluster.run_for(600)
    for site in range(5):
        assert cluster.apps[site].mode is Mode.NORMAL, site


def test_capability_without_stack_falls_back_to_view_majority():
    from repro.evs.eview import EView, EViewStructure
    from repro.gms.view import View
    from repro.types import ProcessId, ViewId

    fn = DynamicPrimaryModeFunction(range(5))
    members = frozenset(ProcessId(s) for s in range(3))
    eview = EView(
        View(ViewId(1, ProcessId(0)), members),
        EViewStructure.singletons(1, members),
    )
    assert fn.capability(eview) is Capability.FULL  # no stack bound yet
    minority = frozenset(ProcessId(s) for s in range(2))
    eview2 = EView(
        View(ViewId(1, ProcessId(0)), minority),
        EViewStructure.singletons(1, minority),
    )
    assert fn.capability(eview2) is Capability.REDUCED
