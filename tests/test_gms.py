"""Tests for view agreement: bootstrap, merges, partitions, recovery."""

from __future__ import annotations

import pytest

from repro.runtime.cluster import Cluster, ClusterConfig
from repro.trace.events import ViewInstallEvent
from repro.types import ProcessId, ViewId

from tests.conftest import assert_all_properties, settled_cluster


def test_bootstrap_singleton_view_first():
    cluster = Cluster(3, auto_start=True)
    for site in range(3):
        view = cluster.stack_at(site).view
        assert view is not None
        assert view.members == frozenset({cluster.stack_at(site).pid})


def test_group_converges_to_single_full_view():
    cluster = settled_cluster(4)
    views = {s.current_view_id() for s in cluster.live_stacks()}
    assert len(views) == 1
    assert cluster.stack_at(0).view.members == cluster.live_pids()


def test_merge_happens_in_one_view_change_per_side():
    """The partitionable model's selling point (Section 5): a merger of
    many singletons needs one install per process, not one per joiner."""
    cluster = settled_cluster(6)
    installs = cluster.recorder.view_sequence(cluster.stack_at(0).pid)
    # Bootstrap singleton + (a small constant number of) merge installs;
    # crucially NOT one install per absorbed member.
    assert len(installs) <= 3
    assert installs[-1].members == cluster.live_pids()


def test_concurrent_views_in_concurrent_partitions():
    cluster = settled_cluster(5)
    cluster.partition([[0, 1, 2], [3, 4]])
    assert cluster.settle(timeout=500)
    left = cluster.stack_at(0).view
    right = cluster.stack_at(3).view
    assert left.view_id != right.view_id
    assert {p.site for p in left.members} == {0, 1, 2}
    assert {p.site for p in right.members} == {3, 4}


def test_heal_merges_concurrent_views():
    cluster = settled_cluster(5)
    cluster.partition([[0, 1, 2], [3, 4]])
    assert cluster.settle(timeout=500)
    cluster.heal()
    assert cluster.settle(timeout=500)
    views = {s.current_view_id() for s in cluster.live_stacks()}
    assert len(views) == 1
    assert_all_properties(cluster.recorder)


def test_crash_shrinks_view():
    cluster = settled_cluster(4)
    cluster.crash(3)
    assert cluster.settle(timeout=500)
    assert {p.site for p in cluster.stack_at(0).view.members} == {0, 1, 2}


def test_recovered_process_rejoins_with_new_incarnation():
    cluster = settled_cluster(3)
    cluster.crash(1)
    assert cluster.settle(timeout=500)
    cluster.recover(1)
    assert cluster.settle(timeout=500)
    members = cluster.stack_at(0).view.members
    assert ProcessId(1, 1) in members
    assert ProcessId(1, 0) not in members


def test_coordinator_crash_during_view_change_recovers():
    """Crash the (min-pid) coordinator exactly when a change starts; the
    remaining processes must still converge under a new coordinator."""
    cluster = settled_cluster(4)
    cluster.crash(3)  # trigger a view change round ...
    cluster.run_for(8.0)
    cluster.crash(0)  # ... and kill the coordinator mid-round
    assert cluster.settle(timeout=600)
    members = {p.site for p in cluster.stack_at(1).view.members}
    assert members == {1, 2}
    assert cluster.stack_at(1).view.coordinator.site == 1


def test_view_epochs_strictly_increase_per_process():
    cluster = settled_cluster(4)
    cluster.partition([[0, 1], [2, 3]])
    cluster.settle(timeout=500)
    cluster.heal()
    cluster.settle(timeout=500)
    for stack in cluster.live_stacks():
        seq = cluster.recorder.view_sequence(stack.pid)
        epochs = [ev.view_id.epoch for ev in seq]
        assert epochs == sorted(epochs)
        assert len(set(epochs)) == len(epochs)


def test_max_epoch_persisted_across_recovery():
    cluster = settled_cluster(3)
    epoch_before = cluster.stack_at(1).view.epoch
    cluster.crash(1)
    cluster.settle(timeout=500)
    stack = cluster.recover(1)
    # The fresh incarnation's bootstrap view must not reuse old epochs.
    assert stack.view.epoch > epoch_before


def test_leave_triggers_prompt_view_change():
    cluster = settled_cluster(4)
    leaver = cluster.stack_at(2)
    leaver.leave()
    assert not leaver.alive
    assert cluster.settle(timeout=500)
    assert {p.site for p in cluster.stack_at(0).view.members} == {0, 1, 3}


def test_total_failure_and_full_recovery():
    cluster = settled_cluster(3)
    for site in range(3):
        cluster.crash(site)
    cluster.run_for(50.0)
    for site in range(3):
        cluster.recover(site)
    assert cluster.settle(timeout=600)
    members = cluster.stack_at(0).view.members
    assert members == {ProcessId(s, 1) for s in range(3)}
    assert_all_properties(cluster.recorder)


def test_join_of_new_site_absorbed():
    cluster = settled_cluster(3)
    cluster.join(3)
    assert cluster.settle(timeout=500)
    assert {p.site for p in cluster.stack_at(0).view.members} == {0, 1, 2, 3}


def test_message_loss_does_not_block_agreement():
    config = ClusterConfig(seed=11, loss_prob=0.05)
    cluster = Cluster(4, config=config)
    assert cluster.settle(timeout=900), cluster.views()
    cluster.partition([[0, 1], [2, 3]])
    assert cluster.settle(timeout=900)
    cluster.heal()
    assert cluster.settle(timeout=900)
    assert_all_properties(cluster.recorder)


def test_view_coordinator_is_least_member():
    cluster = settled_cluster(5)
    view = cluster.stack_at(0).view
    assert view.coordinator == min(view.members)


def test_installers_subset_of_membership():
    cluster = settled_cluster(5)
    cluster.partition([[0, 1, 2], [3, 4]])
    cluster.settle(timeout=500)
    cluster.heal()
    cluster.settle(timeout=500)
    for view_id, members in cluster.recorder.installed_views().items():
        installers = cluster.recorder.installers_of(view_id)
        assert installers <= {p for p in members}


def test_view_id_ordering():
    a = ViewId(1, ProcessId(0))
    b = ViewId(2, ProcessId(0))
    c = ViewId(2, ProcessId(1))
    assert a < b < c
    assert str(a) == "v1@p0.0"


def test_settle_reports_failure_on_impossible_deadline():
    cluster = Cluster(5)
    assert cluster.settle(timeout=0.0) in (False, True)  # just no crash


def test_run_until_quiescence_returns_time():
    cluster = settled_cluster(2)
    now = cluster.now
    assert cluster.run_for(10.0) == pytest.approx(now + 10.0)
