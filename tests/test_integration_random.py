"""Randomized end-to-end integration: the six paper properties must hold
on every seeded adversarial run, for both the bare stack and a real
group object, and the system must converge once faults stop."""

from __future__ import annotations

import pytest

from repro.apps.replicated_file import ReplicatedFile
from repro.bench.harness import run_with_schedule
from repro.core.modes import Mode
from repro.runtime.cluster import ClusterConfig
from repro.workload.generator import RandomFaultGenerator

from tests.conftest import assert_all_properties

SEEDS = [0, 1, 2, 3, 5, 7, 9, 13]


@pytest.mark.parametrize("seed", SEEDS)
def test_bare_stack_properties_under_random_faults(seed):
    gen = RandomFaultGenerator(n_sites=5, seed=seed, duration=350)
    schedule = gen.generate()
    cluster = run_with_schedule(
        5, schedule, config=ClusterConfig(seed=seed), tail=gen.settle_tail
    )
    assert cluster.is_settled(), cluster.views()
    assert_all_properties(cluster.recorder)


@pytest.mark.parametrize("seed", [0, 3, 9])
def test_file_object_properties_and_convergence_under_random_faults(seed):
    gen = RandomFaultGenerator(n_sites=5, seed=seed, duration=300)
    schedule = gen.generate()
    votes = {s: 1 for s in range(5)}
    cluster = run_with_schedule(
        5,
        schedule,
        app_factory=lambda pid: ReplicatedFile(votes),
        config=ClusterConfig(seed=seed),
        tail=gen.settle_tail + 200,
    )
    cluster.run_for(250)
    assert cluster.is_settled(), cluster.views()
    assert_all_properties(cluster.recorder)
    # Once settled, everyone is NORMAL with identical contents.
    listings = [cluster.apps[s].listing() for s in cluster.apps
                if cluster.stacks[s].alive]
    modes = [app.mode for s, app in cluster.apps.items()
             if cluster.stacks[s].alive]
    assert all(m is Mode.NORMAL for m in modes), modes
    assert all(listing == listings[0] for listing in listings)


@pytest.mark.parametrize("seed", [1, 4])
def test_properties_hold_with_message_loss_and_jitter(seed):
    from repro.net.latency import UniformLatency

    gen = RandomFaultGenerator(n_sites=4, seed=seed, duration=250)
    schedule = gen.generate()
    config = ClusterConfig(
        seed=seed, loss_prob=0.03, latency=UniformLatency(0.5, 3.0)
    )
    cluster = run_with_schedule(
        4, schedule, config=config, tail=gen.settle_tail + 300,
        settle_timeout=900,
    )
    assert_all_properties(cluster.recorder)
